//! Persistent checkpoint storage: snapshot files and the failure marker.
//!
//! Layout of a checkpoint directory:
//!
//! ```text
//! <dir>/
//!   RUNNING                     # exists while a run is in flight (the pcr
//!                               # module's failure detector: marker +
//!                               # snapshot => replay)
//!   ckpt_master.bin             # master-collected snapshot (restartable in
//!                               # ANY mode); the *base* in incremental mode
//!   ckpt_master_delta_<s>.bin   # delta chain over the base (incremental
//!                               # mode, s = 1, 2, ...; see crate::delta)
//!   ckpt_rank_<r>.bin           # per-element shards (local-snapshot
//!                               # strategy)
//!   ckpt_rank_<r>_delta_<s>.bin # per-element delta chains
//! ```
//!
//! Snapshot files are written atomically (temp file + rename) and carry a
//! trailing CRC-32 over the entire content, so a crash *during* checkpointing
//! can never produce a snapshot that is both present and corrupt: either the
//! old snapshot survives or the new one is complete.
//!
//! File format (all integers little-endian):
//!
//! ```text
//! magic    8B  "PPARCKP1"
//! mode     len-prefixed UTF-8 tag (e.g. "seq", "smp8", "dist32")
//! count    u64   safe points executed when the snapshot was taken
//! rank     u32   owning element, 0xFFFF_FFFF for a master snapshot
//! nranks   u32   aggregate size at snapshot time
//! nfields  u32
//! fields   nfields × { name: len-prefixed UTF-8, payload: len-prefixed bytes }
//! crc      u32   CRC-32 of every preceding byte
//! ```
//!
//! Length prefixes are `u64` for strings and payloads.
//!
//! ## Streaming write path
//!
//! Snapshots are persisted by [`SnapshotWriter`]: header, fields and
//! trailing CRC are streamed through a [`std::io::BufWriter`] with a
//! *running* slice-by-8 CRC-32 — at no point does a whole-snapshot buffer
//! exist. Field payloads come from a [`FieldSource`]:
//!
//! * [`FieldSource::Cell`] streams a live [`StateCell`] through
//!   [`StateCell::write_state`]; containers with contiguous little-endian
//!   layouts (e.g. `SharedVec<f64>`) hand their backing bytes straight to
//!   the sink without per-element serialization;
//! * [`FieldSource::Bytes`] wraps pre-extracted bytes (partition shards,
//!   gathered aggregates).
//!
//! Cells that cannot report their encoded length up front
//! ([`StateCell::known_byte_len`] `== None`, e.g. serde-backed state) are
//! buffered through a caller-provided scratch `Vec` that is reused across
//! snapshots, keeping steady-state checkpointing allocation-free.
//!
//! The streamed output is byte-identical to the legacy materialized encoder
//! ([`Snapshot::encode`], kept as the golden reference), so snapshots
//! written by either path load through the same reader and old snapshot
//! files stay valid.

use std::fs;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

use ppar_core::error::{PparError, Result};
use ppar_core::state::StateCell;

use crate::crc::{crc32, Crc32};

const MAGIC: &[u8; 8] = b"PPARCKP1";
pub(crate) const MASTER_RANK: u32 = 0xFFFF_FFFF;

/// An in-memory snapshot: header plus named field payloads.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Execution-mode tag at snapshot time (`ExecMode::tag()`); informative
    /// only — master snapshots restart in any mode.
    pub mode_tag: String,
    /// Safe points executed when the snapshot was taken.
    pub count: u64,
    /// Owning element for shard snapshots; `None` for master snapshots.
    pub rank: Option<u32>,
    /// Aggregate size at snapshot time (1 for non-distributed runs).
    pub nranks: u32,
    /// Field name → payload bytes, in `SafeData` declaration order.
    pub fields: Vec<(String, Vec<u8>)>,
}

impl Snapshot {
    /// Payload bytes of field `name`.
    pub fn field(&self, name: &str) -> Option<&[u8]> {
        self.fields
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, b)| b.as_slice())
    }

    /// Total payload size (the paper's "checkpoint data" volume).
    pub fn payload_bytes(&self) -> usize {
        self.fields.iter().map(|(_, b)| b.len()).sum()
    }

    /// Header-only view of this snapshot (for the streaming writer).
    pub fn meta(&self) -> SnapshotMeta {
        SnapshotMeta {
            mode_tag: self.mode_tag.clone(),
            count: self.count,
            rank: self.rank,
            nranks: self.nranks,
        }
    }

    /// The legacy materialized encoder: builds the whole snapshot in one
    /// buffer, then checksums it. Kept as the golden byte-for-byte reference
    /// the streaming [`SnapshotWriter`] is tested against (and as the
    /// baseline for the fig4 save-cost comparison benches); the persistence
    /// paths all stream instead.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.payload_bytes());
        out.extend_from_slice(MAGIC);
        put_str(&mut out, &self.mode_tag);
        out.extend_from_slice(&self.count.to_le_bytes());
        out.extend_from_slice(&self.rank.unwrap_or(MASTER_RANK).to_le_bytes());
        out.extend_from_slice(&self.nranks.to_le_bytes());
        out.extend_from_slice(&(self.fields.len() as u32).to_le_bytes());
        for (name, payload) in &self.fields {
            put_str(&mut out, name);
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(payload);
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decode and integrity-check one full snapshot record (the trailing
    /// CRC-32 is verified). Public because records now also arrive over
    /// the network fabric: the root's checkpoint service and the
    /// rank-side restart path both decode wire records with exactly the
    /// file reader.
    pub fn decode(bytes: &[u8]) -> Result<Snapshot> {
        if bytes.len() < MAGIC.len() + 4 {
            return Err(PparError::CorruptCheckpoint("file too short".into()));
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let stored_crc = u32::from_le_bytes(crc_bytes.try_into().unwrap());
        if crc32(body) != stored_crc {
            return Err(PparError::CorruptCheckpoint(format!(
                "CRC mismatch: stored {stored_crc:#010x}, computed {:#010x}",
                crc32(body)
            )));
        }
        Snapshot::decode_body(body)
    }

    /// Decode a record whose integrity has *already* been established:
    /// structural validation only, the trailing CRC is stripped but not
    /// re-verified. Two callers qualify — the in-memory transport (bytes
    /// never left this process; integrity checking guards the durable
    /// medium, not a buffer handed across a reshape within one address
    /// space) and the streaming network restore path, which verifies the
    /// record's running CRC as the chunks arrive and must not pay a
    /// second full pass. Anything read from disk or an unverified source
    /// goes through [`Snapshot::decode`] instead.
    pub fn decode_trusted(bytes: &[u8]) -> Result<Snapshot> {
        if bytes.len() < MAGIC.len() + 4 {
            return Err(PparError::CorruptCheckpoint("record too short".into()));
        }
        Snapshot::decode_body(&bytes[..bytes.len() - 4])
    }

    fn decode_body(body: &[u8]) -> Result<Snapshot> {
        let view = SnapshotView::decode_body(body)?;
        Ok(Snapshot {
            mode_tag: view.mode_tag,
            count: view.count,
            rank: view.rank,
            nranks: view.nranks,
            fields: view
                .fields
                .into_iter()
                .map(|(n, b)| (n, b.to_vec()))
                .collect(),
        })
    }
}

/// Borrowed view of a decoded snapshot record: the zero-copy read side of
/// the in-memory transport. Field payloads reference the record bytes
/// directly, so installing a multi-MiB hand-off costs one copy (record →
/// cell) instead of two (record → materialized snapshot → cell).
pub struct SnapshotView<'a> {
    /// Execution-mode tag at snapshot time.
    pub mode_tag: String,
    /// Safe points executed when the snapshot was taken.
    pub count: u64,
    /// Owning element for shard snapshots; `None` for master snapshots.
    pub rank: Option<u32>,
    /// Aggregate size at snapshot time.
    pub nranks: u32,
    /// Field name → borrowed payload bytes, in declaration order.
    pub fields: Vec<(String, &'a [u8])>,
}

impl<'a> SnapshotView<'a> {
    /// Payload bytes of field `name`.
    pub fn field(&self, name: &str) -> Option<&'a [u8]> {
        self.fields.iter().find(|(n, _)| n == name).map(|(_, b)| *b)
    }

    /// Borrowed view over a full snapshot (fields reference the owned
    /// payload buffers).
    pub fn of(snap: &'a Snapshot) -> SnapshotView<'a> {
        SnapshotView {
            mode_tag: snap.mode_tag.clone(),
            count: snap.count,
            rank: snap.rank,
            nranks: snap.nranks,
            fields: snap
                .fields
                .iter()
                .map(|(n, b)| (n.clone(), b.as_slice()))
                .collect(),
        }
    }

    /// Structural decode of an in-process record (no CRC re-verification;
    /// see [`Snapshot::decode_trusted`]).
    pub(crate) fn decode_trusted(bytes: &'a [u8]) -> Result<SnapshotView<'a>> {
        if bytes.len() < MAGIC.len() + 4 {
            return Err(PparError::CorruptCheckpoint("record too short".into()));
        }
        SnapshotView::decode_body(&bytes[..bytes.len() - 4])
    }

    fn decode_body(body: &'a [u8]) -> Result<SnapshotView<'a>> {
        let mut r = Reader { buf: body, pos: 0 };
        let magic = r.take(8)?;
        if magic != MAGIC {
            return Err(PparError::FormatMismatch {
                expected: String::from_utf8_lossy(MAGIC).into_owned(),
                found: String::from_utf8_lossy(magic).into_owned(),
            });
        }
        let mode_tag = r.take_str()?;
        let count = r.take_u64()?;
        let rank_raw = r.take_u32()?;
        let nranks = r.take_u32()?;
        let nfields = r.take_u32()?;
        let mut fields = Vec::with_capacity(nfields as usize);
        for _ in 0..nfields {
            let name = r.take_str()?;
            let len = r.take_u64()? as usize;
            fields.push((name, r.take(len)?));
        }
        if r.pos != body.len() {
            return Err(PparError::CorruptCheckpoint(format!(
                "{} unconsumed bytes before CRC",
                body.len() - r.pos
            )));
        }
        Ok(SnapshotView {
            mode_tag,
            count,
            rank: (rank_raw != MASTER_RANK).then_some(rank_raw),
            nranks,
            fields,
        })
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u64).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

// ---------------------------------------------------------------------------
// streaming writer
// ---------------------------------------------------------------------------

/// Snapshot header for the streaming write path (everything in
/// [`Snapshot`] except the field payloads).
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotMeta {
    /// Execution-mode tag at snapshot time.
    pub mode_tag: String,
    /// Safe points executed when the snapshot was taken.
    pub count: u64,
    /// Owning element for shard snapshots; `None` for master snapshots.
    pub rank: Option<u32>,
    /// Aggregate size at snapshot time.
    pub nranks: u32,
}

/// Where a streamed field's payload bytes come from.
pub enum FieldSource<'a> {
    /// Stream a live cell through [`StateCell::write_state`] (zero-copy for
    /// contiguous little-endian containers).
    Cell(&'a dyn StateCell),
    /// Pre-extracted bytes (partition shards, gathered aggregate data).
    Bytes(&'a [u8]),
}

/// Where one field of a *delta* snapshot comes from.
pub enum DeltaSource<'a> {
    /// The whole field, as in a full snapshot (cells without write
    /// tracking).
    Full(FieldSource<'a>),
    /// Only the cell's dirty byte ranges, streamed straight from the cell
    /// through [`StateCell::write_dirty_state`] (zero-copy for LE
    /// containers). Offsets are relative to the cell's full encoding.
    DirtyCell {
        /// The live cell.
        cell: &'a dyn StateCell,
        /// Sorted, non-overlapping dirty byte ranges of the encoding.
        ranges: &'a [std::ops::Range<usize>],
    },
    /// Pre-extracted dirty bytes (the shard path: offsets are relative to
    /// the extracted owned-block payload, `payload` is the ranges'
    /// concatenated bytes in order).
    DirtyBytes {
        /// Total length of the (merged) field payload.
        full_len: u64,
        /// Sorted, non-overlapping ranges into that payload.
        ranges: &'a [std::ops::Range<usize>],
        /// Concatenation of the ranges' bytes.
        payload: &'a [u8],
    },
}

/// Adapter that forwards writes to the sink while folding every byte into
/// the running CRC (when checksumming is on). Handed to
/// [`StateCell::write_state`] so even cell-driven writes stay on the
/// single-pass path.
struct CrcTee<'a, W: Write> {
    sink: &'a mut W,
    crc: Option<&'a mut Crc32>,
    written: &'a mut u64,
}

/// Block size for interleaving the CRC pass with the copy on large
/// payloads: each block is checksummed while still cache-hot from the
/// write (or vice versa), saving a second trip to RAM per multi-MiB
/// field.
const CRC_COPY_BLOCK: usize = 256 << 10;

impl<W: Write> Write for CrcTee<'_, W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        // Cap each write at one cache block; callers' `write_all` loops
        // re-enter, giving the interleaved CRC+copy pattern for free.
        let buf = &buf[..buf.len().min(CRC_COPY_BLOCK)];
        let n = self.sink.write(buf)?;
        if let Some(crc) = self.crc.as_deref_mut() {
            crc.update(&buf[..n]);
        }
        *self.written += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.sink.flush()
    }
}

/// Single-pass snapshot encoder: header, fields and the trailing CRC-32 are
/// streamed straight into the sink (typically a [`BufWriter`] over the temp
/// file) while the checksum runs alongside. Produces bytes identical to
/// [`Snapshot::encode`] for the same content.
///
/// Records destined for process memory (the live-reshape hand-off) may be
/// written *unchecksummed*: the byte layout is identical but the 4-byte
/// trailer is zero, saving a full pass over multi-MiB payloads. The
/// in-memory transport's trusted decode ignores the trailer; writing such a
/// record to a disk file would fail CRC verification on load — by design,
/// loudly.
pub struct SnapshotWriter<W: Write> {
    sink: W,
    crc: Crc32,
    /// Fold bytes into the running CRC (off for in-memory hand-offs).
    checksum: bool,
    written: u64,
    fields_remaining: u32,
}

impl<W: Write> SnapshotWriter<W> {
    /// Start a snapshot: writes the header for `meta` announcing `nfields`
    /// upcoming fields.
    pub fn new(sink: W, meta: &SnapshotMeta, nfields: u32) -> Result<SnapshotWriter<W>> {
        SnapshotWriter::full_writer(sink, meta, nfields, true)
    }

    /// [`SnapshotWriter::new`] without the checksum pass (in-memory
    /// records; see the type docs).
    pub fn new_unchecksummed(
        sink: W,
        meta: &SnapshotMeta,
        nfields: u32,
    ) -> Result<SnapshotWriter<W>> {
        SnapshotWriter::full_writer(sink, meta, nfields, false)
    }

    fn full_writer(
        sink: W,
        meta: &SnapshotMeta,
        nfields: u32,
        checksum: bool,
    ) -> Result<SnapshotWriter<W>> {
        let mut w = SnapshotWriter {
            sink,
            crc: Crc32::new(),
            checksum,
            written: 0,
            fields_remaining: nfields,
        };
        w.put(MAGIC)?;
        w.put_str(&meta.mode_tag)?;
        w.put(&meta.count.to_le_bytes())?;
        w.put(&meta.rank.unwrap_or(MASTER_RANK).to_le_bytes())?;
        w.put(&meta.nranks.to_le_bytes())?;
        w.put(&nfields.to_le_bytes())?;
        Ok(w)
    }

    fn put(&mut self, bytes: &[u8]) -> Result<()> {
        if self.checksum && bytes.len() > CRC_COPY_BLOCK {
            // Interleave CRC and copy in cache-sized blocks (see
            // [`CRC_COPY_BLOCK`]) instead of two full passes over a
            // multi-MiB payload.
            for block in bytes.chunks(CRC_COPY_BLOCK) {
                self.crc.update(block);
                self.sink.write_all(block)?;
            }
        } else {
            if self.checksum {
                self.crc.update(bytes);
            }
            self.sink.write_all(bytes)?;
        }
        self.written += bytes.len() as u64;
        Ok(())
    }

    fn put_str(&mut self, s: &str) -> Result<()> {
        self.put(&(s.len() as u64).to_le_bytes())?;
        self.put(s.as_bytes())
    }

    fn begin_field(&mut self, name: &str, payload_len: u64) -> Result<()> {
        if self.fields_remaining == 0 {
            return Err(PparError::InvalidPlan(
                "SnapshotWriter: more fields written than announced".into(),
            ));
        }
        self.fields_remaining -= 1;
        self.put_str(name)?;
        self.put(&payload_len.to_le_bytes())
    }

    /// Write one field from pre-extracted bytes.
    pub fn field_bytes(&mut self, name: &str, payload: &[u8]) -> Result<()> {
        self.begin_field(name, payload.len() as u64)?;
        self.put(payload)
    }

    /// Write one field by streaming `cell`. Cells that know their encoded
    /// length stream directly (zero-copy for LE containers); others are
    /// buffered once through `scratch`, whose capacity is reused across
    /// snapshots.
    pub fn field_cell(
        &mut self,
        name: &str,
        cell: &dyn StateCell,
        scratch: &mut Vec<u8>,
    ) -> Result<()> {
        match cell.known_byte_len() {
            Some(len) => {
                self.begin_field(name, len as u64)?;
                self.stream_cell_checked(name, cell, len as u64)
            }
            None => {
                scratch.clear();
                cell.save_into(scratch);
                self.field_bytes(name, scratch)
            }
        }
    }

    /// Write one field from a [`FieldSource`].
    pub fn field(
        &mut self,
        name: &str,
        source: &FieldSource<'_>,
        scratch: &mut Vec<u8>,
    ) -> Result<()> {
        match source {
            FieldSource::Cell(cell) => self.field_cell(name, *cell, scratch),
            FieldSource::Bytes(bytes) => self.field_bytes(name, bytes),
        }
    }

    // ---- delta records (see crate::delta for the format) ----

    /// Start a delta record: writes the versioned delta header for `meta`
    /// announcing `nfields` upcoming fields. Shares the running-CRC
    /// machinery (and [`SnapshotWriter::finish`]) with full snapshots.
    pub fn new_delta(
        sink: W,
        meta: &crate::delta::DeltaMeta,
        nfields: u32,
    ) -> Result<SnapshotWriter<W>> {
        SnapshotWriter::delta_writer(sink, meta, nfields, true)
    }

    /// [`SnapshotWriter::new_delta`] without the checksum pass (in-memory
    /// records; see the type docs).
    pub fn new_delta_unchecksummed(
        sink: W,
        meta: &crate::delta::DeltaMeta,
        nfields: u32,
    ) -> Result<SnapshotWriter<W>> {
        SnapshotWriter::delta_writer(sink, meta, nfields, false)
    }

    fn delta_writer(
        sink: W,
        meta: &crate::delta::DeltaMeta,
        nfields: u32,
        checksum: bool,
    ) -> Result<SnapshotWriter<W>> {
        let mut w = SnapshotWriter {
            sink,
            crc: Crc32::new(),
            checksum,
            written: 0,
            fields_remaining: nfields,
        };
        w.put(crate::delta::DELTA_MAGIC)?;
        w.put(&crate::delta::DELTA_VERSION.to_le_bytes())?;
        w.put_str(&meta.mode_tag)?;
        w.put(&meta.count.to_le_bytes())?;
        w.put(&meta.base_count.to_le_bytes())?;
        w.put(&meta.seq.to_le_bytes())?;
        w.put(&meta.rank.unwrap_or(MASTER_RANK).to_le_bytes())?;
        w.put(&meta.nranks.to_le_bytes())?;
        w.put(&nfields.to_le_bytes())?;
        Ok(w)
    }

    fn begin_delta_field(&mut self, name: &str, kind: u8) -> Result<()> {
        if self.fields_remaining == 0 {
            return Err(PparError::InvalidPlan(
                "SnapshotWriter: more delta fields written than announced".into(),
            ));
        }
        self.fields_remaining -= 1;
        self.put_str(name)?;
        self.put(&[kind])
    }

    fn stream_cell_checked(&mut self, name: &str, cell: &dyn StateCell, expect: u64) -> Result<()> {
        let streamed = {
            let mut tee = CrcTee {
                sink: &mut self.sink,
                crc: self.checksum.then_some(&mut self.crc),
                written: &mut self.written,
            };
            cell.write_state(&mut tee)?
        };
        if streamed != expect {
            return Err(PparError::CorruptCheckpoint(format!(
                "field {name:?}: cell announced {expect} bytes but streamed {streamed}"
            )));
        }
        Ok(())
    }

    /// Write one whole-field delta entry (kind 0) from pre-extracted bytes.
    pub fn delta_field_full_bytes(&mut self, name: &str, payload: &[u8]) -> Result<()> {
        self.begin_delta_field(name, 0)?;
        self.put(&(payload.len() as u64).to_le_bytes())?;
        self.put(payload)
    }

    /// Write one whole-field delta entry (kind 0) by streaming `cell`
    /// (same length/scratch discipline as [`SnapshotWriter::field_cell`]).
    pub fn delta_field_full_cell(
        &mut self,
        name: &str,
        cell: &dyn StateCell,
        scratch: &mut Vec<u8>,
    ) -> Result<()> {
        match cell.known_byte_len() {
            Some(len) => {
                self.begin_delta_field(name, 0)?;
                self.put(&(len as u64).to_le_bytes())?;
                self.stream_cell_checked(name, cell, len as u64)
            }
            None => {
                scratch.clear();
                cell.save_into(scratch);
                self.delta_field_full_bytes(name, scratch)
            }
        }
    }

    fn put_sparse_map(&mut self, full_len: u64, ranges: &[std::ops::Range<usize>]) -> Result<u64> {
        self.put(&full_len.to_le_bytes())?;
        self.put(&(ranges.len() as u32).to_le_bytes())?;
        let mut total = 0u64;
        for r in ranges {
            let len = (r.end - r.start) as u64;
            self.put(&(r.start as u64).to_le_bytes())?;
            self.put(&len.to_le_bytes())?;
            total += len;
        }
        Ok(total)
    }

    /// Write one sparse delta entry (kind 1) by streaming the cell's dirty
    /// ranges through [`StateCell::write_dirty_state`] — the zero-copy path
    /// for LE containers; only touched chunks leave the cell.
    pub fn delta_field_sparse_cell(
        &mut self,
        name: &str,
        cell: &dyn StateCell,
        ranges: &[std::ops::Range<usize>],
    ) -> Result<()> {
        self.begin_delta_field(name, 1)?;
        let total = self.put_sparse_map(cell.byte_len() as u64, ranges)?;
        let streamed = {
            let mut tee = CrcTee {
                sink: &mut self.sink,
                crc: self.checksum.then_some(&mut self.crc),
                written: &mut self.written,
            };
            cell.write_dirty_state(ranges, &mut tee)?
        };
        if streamed != total {
            return Err(PparError::CorruptCheckpoint(format!(
                "field {name:?}: dirty map announced {total} bytes but cell \
                 streamed {streamed}"
            )));
        }
        Ok(())
    }

    /// Write one sparse delta entry (kind 1) from pre-extracted range bytes
    /// (`payload` = concatenation of the ranges' bytes, in order).
    pub fn delta_field_sparse_bytes(
        &mut self,
        name: &str,
        full_len: u64,
        ranges: &[std::ops::Range<usize>],
        payload: &[u8],
    ) -> Result<()> {
        self.begin_delta_field(name, 1)?;
        let total = self.put_sparse_map(full_len, ranges)?;
        if total != payload.len() as u64 {
            return Err(PparError::CorruptCheckpoint(format!(
                "field {name:?}: dirty map announces {total} bytes, payload has {}",
                payload.len()
            )));
        }
        self.put(payload)
    }

    /// Write one delta field from a [`DeltaSource`].
    pub fn delta_field(
        &mut self,
        name: &str,
        source: &DeltaSource<'_>,
        scratch: &mut Vec<u8>,
    ) -> Result<()> {
        match source {
            DeltaSource::Full(FieldSource::Cell(cell)) => {
                self.delta_field_full_cell(name, *cell, scratch)
            }
            DeltaSource::Full(FieldSource::Bytes(bytes)) => {
                self.delta_field_full_bytes(name, bytes)
            }
            DeltaSource::DirtyCell { cell, ranges } => {
                self.delta_field_sparse_cell(name, *cell, ranges)
            }
            DeltaSource::DirtyBytes {
                full_len,
                ranges,
                payload,
            } => self.delta_field_sparse_bytes(name, *full_len, ranges, payload),
        }
    }

    /// Seal the snapshot: append the running CRC, flush the sink and return
    /// `(total bytes written, sink)`.
    pub fn finish(mut self) -> Result<(u64, W)> {
        if self.fields_remaining != 0 {
            return Err(PparError::InvalidPlan(format!(
                "SnapshotWriter: {} announced fields never written",
                self.fields_remaining
            )));
        }
        let crc = if self.checksum { self.crc.finish() } else { 0 };
        self.sink.write_all(&crc.to_le_bytes())?;
        self.written += 4;
        self.sink.flush()?;
        Ok((self.written, self.sink))
    }
}

/// The file-backed store is one [`crate::transport::CkptTransport`]
/// implementation (the durable one); the `put_*` sinks are exactly the
/// inherent `stream_*` methods, so the on-disk format stays byte-identical
/// to every earlier release (golden-bytes tested above).
impl crate::transport::CkptTransport for CheckpointStore {
    fn describe(&self) -> &'static str {
        "file"
    }

    fn put_master(
        &self,
        meta: &SnapshotMeta,
        fields: &[(&str, FieldSource<'_>)],
        scratch: &mut Vec<u8>,
    ) -> Result<u64> {
        self.stream_master(meta, fields, scratch)
    }

    fn put_shard(
        &self,
        meta: &SnapshotMeta,
        fields: &[(&str, FieldSource<'_>)],
        scratch: &mut Vec<u8>,
    ) -> Result<u64> {
        self.stream_shard(meta, fields, scratch)
    }

    fn put_master_delta(
        &self,
        meta: &crate::delta::DeltaMeta,
        fields: &[(&str, DeltaSource<'_>)],
        scratch: &mut Vec<u8>,
    ) -> Result<u64> {
        self.stream_master_delta(meta, fields, scratch)
    }

    fn put_shard_delta(
        &self,
        meta: &crate::delta::DeltaMeta,
        fields: &[(&str, DeltaSource<'_>)],
        scratch: &mut Vec<u8>,
    ) -> Result<u64> {
        self.stream_shard_delta(meta, fields, scratch)
    }

    fn read_merged_master(&self) -> Result<Option<Snapshot>> {
        CheckpointStore::read_merged_master(self)
    }

    fn read_merged_shard(&self, rank: u32) -> Result<Option<Snapshot>> {
        CheckpointStore::read_merged_shard(self, rank)
    }

    fn read_shard_at(&self, rank: u32, count: u64) -> Result<Option<Snapshot>> {
        CheckpointStore::read_shard_at(self, rank, count)
    }

    fn restart_count(&self) -> Result<Option<u64>> {
        CheckpointStore::restart_count(self)
    }

    fn commit_group(&self, count: u64) -> Result<()> {
        CheckpointStore::commit_group(self, count)
    }

    fn clear_deltas(&self, rank: Option<u32>) -> Result<()> {
        CheckpointStore::clear_deltas(self, rank)
    }

    fn clear_all_deltas(&self) -> Result<()> {
        CheckpointStore::clear_all_deltas(self)
    }

    fn begin_raw<'a>(
        &'a self,
        kind: crate::transport::RawRecordKind,
        _len_hint: u64,
    ) -> Result<Box<dyn crate::transport::RawRecordSink + 'a>> {
        use crate::transport::RawRecordKind;
        let dst = match kind {
            RawRecordKind::Master => self.master_path(),
            RawRecordKind::Shard(rank) => self.shard_path(rank),
            RawRecordKind::MasterDelta { seq } => self.delta_path(None, seq),
            RawRecordKind::ShardDelta { rank, seq } => self.delta_path(Some(rank), seq),
        };
        let rotate = match kind {
            RawRecordKind::Shard(rank) => Some(rank),
            _ => None,
        };
        if let Some(cas) = &self.cas {
            return Ok(Box::new(CasRawSink {
                store: self,
                txn: Some(cas.begin()?),
                name: CheckpointStore::rec_name(&dst).to_string(),
                rotate,
            }));
        }
        // Unique temp name per in-flight install: parallel per-rank
        // pipelines may stream into the same directory concurrently.
        static TMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = TMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let tmp = dst.with_extension(format!("tmp{n}"));
        let file = fs::File::create(&tmp)?;
        Ok(Box::new(FileRawSink {
            tmp,
            dst,
            w: Some(BufWriter::new(file)),
            rotate: rotate.map(|rank| (self, rank)),
        }))
    }

    fn take_put_stats(&self) -> crate::cas::PutStats {
        match &self.cas {
            Some(cas) => cas.take_put_stats(),
            None => crate::cas::PutStats::default(),
        }
    }

    fn begin_raw_dedup<'a>(
        &'a self,
        kind: crate::transport::RawRecordKind,
        chunks: &[crate::cas::ChunkRef],
        total_len: u64,
    ) -> Result<Option<Box<dyn crate::transport::DedupRecordSink + 'a>>> {
        use crate::transport::RawRecordKind;
        let Some(cas) = &self.cas else {
            return Ok(None);
        };
        let dst = match kind {
            RawRecordKind::Master => self.master_path(),
            RawRecordKind::Shard(rank) => self.shard_path(rank),
            RawRecordKind::MasterDelta { seq } => self.delta_path(None, seq),
            RawRecordKind::ShardDelta { rank, seq } => self.delta_path(Some(rank), seq),
        };
        let rotate = match kind {
            RawRecordKind::Shard(rank) => Some(rank),
            _ => None,
        };
        Ok(Some(Box::new(CasDedupSink {
            store: self,
            txn: Some(cas.begin_dedup(chunks, total_len)?),
            name: CheckpointStore::rec_name(&dst).to_string(),
            rotate,
        })))
    }

    fn write_merged_record_at(
        &self,
        rank: Option<u32>,
        count: u64,
        out: &mut dyn Write,
    ) -> Result<Option<u64>> {
        match rank {
            // Master records are single-writer and atomic: the merged tip
            // is always group-consistent.
            None => self.write_merged_record(None, out),
            Some(r) => CheckpointStore::write_merged_shard_at(self, r, count, out),
        }
    }

    fn write_merged_record(&self, rank: Option<u32>, out: &mut dyn Write) -> Result<Option<u64>> {
        // Fast path: no delta chain pending — the base record *is* the
        // checksummed merged record, so copy it straight through without
        // decoding (the receiving end verifies the trailing CRC).
        if !self.record_exists(&self.delta_path(rank, 1)) {
            let path = match rank {
                None => self.master_path(),
                Some(r) => self.shard_path(r),
            };
            return self.record_copy_to(&path, out);
        }
        crate::transport::write_merged_fallback(self, rank, out)
    }
}

/// Raw streamed install into a content-addressed transaction: chunks
/// dedup as they arrive, commit is the same rotate-then-promote sequence
/// as [`FileRawSink`], abort (or drop) rolls the journal back.
struct CasRawSink<'a> {
    store: &'a CheckpointStore,
    txn: Option<crate::cas::CasTxn>,
    name: String,
    rotate: Option<u32>,
}

impl crate::transport::RawRecordSink for CasRawSink<'_> {
    fn write_chunk(&mut self, chunk: &[u8]) -> Result<()> {
        self.txn
            .as_mut()
            .expect("sink used after finish")
            .append(chunk)
    }

    fn commit(mut self: Box<Self>) -> Result<u64> {
        let txn = self.txn.take().expect("sink used after finish");
        // Stage (seal + fsync the journal manifest) *before* rotating the
        // previous generation aside: if staging fails, the directory is
        // untouched.
        let staged = txn.stage(&self.name)?;
        if let Some(rank) = self.rotate {
            self.store.rotate_shard_generation(rank)?;
        }
        let written = staged.promote()?;
        self.store.remove_superseded_flat(&self.name);
        Ok(written)
    }

    fn abort(self: Box<Self>) {
        // Dropping the transaction rolls back its journal.
    }
}

/// Digest-negotiated install: the transport already knows the record's
/// chunk list; only the chunks the store lacks are supplied.
struct CasDedupSink<'a> {
    store: &'a CheckpointStore,
    txn: Option<crate::cas::DedupTxn>,
    name: String,
    rotate: Option<u32>,
}

impl crate::transport::DedupRecordSink for CasDedupSink<'_> {
    fn missing(&self) -> &[u32] {
        self.txn.as_ref().expect("sink used after commit").missing()
    }

    fn supply_chunk(&mut self, bytes: &[u8]) -> Result<()> {
        self.txn
            .as_mut()
            .expect("sink used after commit")
            .supply_chunk(bytes)
    }

    fn commit(mut self: Box<Self>) -> Result<u64> {
        let txn = self.txn.take().expect("sink used after commit");
        if let Some(rank) = self.rotate {
            self.store.rotate_shard_generation(rank)?;
        }
        let written = txn.commit(&self.name)?;
        self.store.remove_superseded_flat(&self.name);
        Ok(written)
    }

    fn abort(self: Box<Self>) {
        // Dropping the transaction rolls back its journal.
    }
}

/// Raw streamed install straight to a temp file, finalized with the same
/// atomic-rename discipline as every other snapshot write: a crash (or an
/// abort) mid-stream never leaves a partial record under the final name.
struct FileRawSink<'a> {
    tmp: PathBuf,
    dst: PathBuf,
    w: Option<BufWriter<fs::File>>,
    /// Shard installs rotate the committed previous generation aside
    /// before the rename lands (see
    /// [`CheckpointStore::rotate_shard_generation`]).
    rotate: Option<(&'a CheckpointStore, u32)>,
}

impl crate::transport::RawRecordSink for FileRawSink<'_> {
    fn write_chunk(&mut self, chunk: &[u8]) -> Result<()> {
        self.w
            .as_mut()
            .expect("sink used after finish")
            .write_all(chunk)?;
        Ok(())
    }

    fn commit(mut self: Box<Self>) -> Result<u64> {
        let mut w = self.w.take().expect("sink used after finish");
        w.flush()?;
        let written = w.get_ref().metadata()?.len();
        drop(w);
        if let Some((store, rank)) = self.rotate {
            store.rotate_shard_generation(rank)?;
        }
        fs::rename(&self.tmp, &self.dst)?;
        Ok(written)
    }

    fn abort(self: Box<Self>) {
        // Drop cleans up the temp file.
    }
}

impl Drop for FileRawSink<'_> {
    fn drop(&mut self) {
        // Reached with the writer still live only on abort or a panicked
        // install: discard the partial temp file (commit already took the
        // writer and renamed).
        if self.w.take().is_some() {
            let _ = fs::remove_file(&self.tmp);
        }
    }
}

pub(crate) struct Reader<'a> {
    pub(crate) buf: &'a [u8],
    pub(crate) pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(PparError::CorruptCheckpoint(format!(
                "truncated: wanted {n} bytes at offset {}",
                self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn take_u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn take_u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn take_str(&mut self) -> Result<String> {
        let len = self.take_u64()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| PparError::CorruptCheckpoint(format!("invalid utf-8: {e}")))
    }
}

/// A checkpoint directory.
///
/// Two persistence layouts share one directory format:
///
/// * **flat** (the default, byte-compatible with every earlier release) —
///   each record is one file, rewritten whole on every save;
/// * **content-addressed** ([`crate::cas`]) — records are manifests over
///   deduplicated chunk objects, so a steady-state snapshot whose pages
///   mostly didn't change costs ~metadata instead of ~data.
///
/// Selection: `PPAR_STORE_LAYOUT=cas` (or [`CheckpointStore::new_cas`])
/// opts a new directory into the content-addressed layout; a directory
/// that already holds one is detected and reopened as such regardless of
/// the environment. Either way the records read back bitwise-identical —
/// both layouts store the same golden record encoding — and a
/// content-addressed store still *reads* legacy flat files, so old run
/// directories restore unchanged.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
    /// `Some` when this directory uses the content-addressed layout.
    cas: Option<crate::cas::CasStore>,
}

impl CheckpointStore {
    /// Open (creating if needed) a checkpoint directory. The layout comes
    /// from `PPAR_STORE_LAYOUT` (`cas` selects the content-addressed
    /// store) or from auto-detection when the directory already holds a
    /// content-addressed store.
    pub fn new(dir: impl AsRef<Path>) -> Result<CheckpointStore> {
        let want_cas = std::env::var("PPAR_STORE_LAYOUT").is_ok_and(|v| v == "cas")
            || crate::cas::CasStore::detect(dir.as_ref());
        if want_cas {
            CheckpointStore::new_cas(dir)
        } else {
            CheckpointStore::new_flat(dir)
        }
    }

    /// Open a checkpoint directory in the legacy flat layout regardless of
    /// the environment.
    pub fn new_flat(dir: impl AsRef<Path>) -> Result<CheckpointStore> {
        fs::create_dir_all(dir.as_ref())?;
        Ok(CheckpointStore {
            dir: dir.as_ref().to_path_buf(),
            cas: None,
        })
    }

    /// Open a checkpoint directory in the content-addressed layout with
    /// configuration from the environment (see [`crate::cas::CasConfig`]).
    pub fn new_cas(dir: impl AsRef<Path>) -> Result<CheckpointStore> {
        CheckpointStore::new_cas_with(dir, crate::cas::CasConfig::from_env())
    }

    /// [`CheckpointStore::new_cas`] with an explicit configuration.
    pub fn new_cas_with(
        dir: impl AsRef<Path>,
        cfg: crate::cas::CasConfig,
    ) -> Result<CheckpointStore> {
        fs::create_dir_all(dir.as_ref())?;
        Ok(CheckpointStore {
            dir: dir.as_ref().to_path_buf(),
            cas: Some(crate::cas::CasStore::open_with(dir.as_ref(), cfg)?),
        })
    }

    /// The content-addressed store backing this directory, when the CAS
    /// layout is active (GC and dedup-stat access for benches and tools).
    pub fn cas(&self) -> Option<&crate::cas::CasStore> {
        self.cas.as_ref()
    }

    /// The directory path.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    // ---- record seam: every read/rename/peek goes record-level so the
    // content-addressed layout (manifest first, flat file fallback for
    // legacy directories) and the flat layout share one code path ----

    fn rec_name(path: &Path) -> &str {
        path.file_name()
            .map(|n| n.to_str().expect("record names are ASCII"))
            .expect("record paths always carry a file name")
    }

    /// The record's full encoded bytes, or `None` when absent under both
    /// layouts.
    fn record_bytes(&self, path: &Path) -> Result<Option<Vec<u8>>> {
        if let Some(cas) = &self.cas {
            if let Some(bytes) = cas.read_record(CheckpointStore::rec_name(path))? {
                return Ok(Some(bytes));
            }
        }
        match fs::read(path) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    fn record_exists(&self, path: &Path) -> bool {
        if let Some(cas) = &self.cas {
            if cas.manifest_exists(CheckpointStore::rec_name(path)) {
                return true;
            }
        }
        path.exists()
    }

    /// Rename a record (manifest-level in the content-addressed layout;
    /// legacy flat files rename as files).
    fn record_rename(&self, from: &Path, to: &Path) -> Result<()> {
        if let Some(cas) = &self.cas {
            let from_name = CheckpointStore::rec_name(from);
            if cas.manifest_exists(from_name) {
                cas.rename_manifest(from_name, CheckpointStore::rec_name(to))?;
                // Stale flat files under either name are superseded by the
                // manifest that just moved (reads prefer manifests, but the
                // source name no longer has one to shadow its leftover).
                CheckpointStore::remove_if_present(to.to_path_buf())?;
                CheckpointStore::remove_if_present(from.to_path_buf())?;
                return Ok(());
            }
        }
        fs::rename(from, to)?;
        Ok(())
    }

    /// Copy a record's encoded bytes straight into `out` (the raw
    /// streaming restore path); `None` when absent.
    fn record_copy_to(&self, path: &Path, out: &mut dyn Write) -> Result<Option<u64>> {
        if let Some(cas) = &self.cas {
            if let Some(written) = cas.write_record_to(CheckpointStore::rec_name(path), out)? {
                return Ok(Some(written));
            }
        }
        let mut file = match fs::File::open(path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        Ok(Some(std::io::copy(&mut file, out)?))
    }

    /// A freshly committed content-addressed record supersedes any legacy
    /// flat file of the same name left from before the layout switch.
    fn remove_superseded_flat(&self, name: &str) {
        let _ = fs::remove_file(self.dir.join(name));
    }

    fn master_path(&self) -> PathBuf {
        self.dir.join("ckpt_master.bin")
    }

    fn shard_path(&self, rank: u32) -> PathBuf {
        self.dir.join(format!("ckpt_rank_{rank}.bin"))
    }

    /// The retained previous generation of a shard. Shard writes rotate the
    /// committed generation here instead of overwriting it, so a save torn
    /// by a rank death (some shards already advanced, the dying rank's did
    /// not) can still restore the whole group at the last *commit* point.
    fn prev_shard_path(&self, rank: u32) -> PathBuf {
        self.dir.join(format!("ckpt_rank_{rank}_prev.bin"))
    }

    fn commit_path(&self) -> PathBuf {
        self.dir.join("ckpt_commit")
    }

    fn marker_path(&self) -> PathBuf {
        self.dir.join("RUNNING")
    }

    fn delta_path(&self, rank: Option<u32>, seq: u32) -> PathBuf {
        match rank {
            None => self.dir.join(format!("ckpt_master_delta_{seq}.bin")),
            Some(r) => self.dir.join(format!("ckpt_rank_{r}_delta_{seq}.bin")),
        }
    }

    fn delta_prefix(rank: Option<u32>) -> String {
        match rank {
            None => "ckpt_master_delta_".to_string(),
            Some(r) => format!("ckpt_rank_{r}_delta_"),
        }
    }

    /// Stream one snapshot atomically: temp file → [`SnapshotWriter`] over a
    /// [`BufWriter`] → flush → rename. No whole-snapshot buffer exists at
    /// any point. `rotate_rank` (shard writes) preserves the committed
    /// previous generation before the rename lands.
    fn stream_atomic(
        &self,
        path: &Path,
        meta: &SnapshotMeta,
        fields: &[(&str, FieldSource<'_>)],
        scratch: &mut Vec<u8>,
        rotate_rank: Option<u32>,
    ) -> Result<u64> {
        if let Some(cas) = &self.cas {
            // Content-addressed path: the record streams chunk by chunk
            // into a staged transaction; only novel chunks hit the object
            // tree, and promote is the same single-rename commit as the
            // flat layout's temp-file rename.
            let mut w = SnapshotWriter::new(cas.begin()?, meta, fields.len() as u32)?;
            for (name, source) in fields {
                w.field(name, source, scratch)?;
            }
            let (written, txn) = w.finish()?;
            if let Some(rank) = rotate_rank {
                self.rotate_shard_generation(rank)?;
            }
            let name = CheckpointStore::rec_name(path);
            txn.commit(name)?;
            self.remove_superseded_flat(name);
            return Ok(written);
        }
        let tmp = path.with_extension("tmp");
        let file = fs::File::create(&tmp)?;
        let mut w = SnapshotWriter::new(BufWriter::new(file), meta, fields.len() as u32)?;
        for (name, source) in fields {
            w.field(name, source, scratch)?;
        }
        let (written, sink) = w.finish()?;
        drop(sink);
        if let Some(rank) = rotate_rank {
            self.rotate_shard_generation(rank)?;
        }
        fs::rename(&tmp, path)?;
        Ok(written)
    }

    /// Peek the safe-point count in a record's header without materializing
    /// the payload. `None` when the file is missing or its header does not
    /// parse (a peek never hard-fails: the caller falls back to the full,
    /// CRC-checked read path).
    fn peek_record_count(path: &Path) -> Option<u64> {
        use std::io::Read;
        // MAGIC(8) + mode-tag length(8) + tag bytes + count(8): mode tags
        // are short strings, so the count lives comfortably inside 4 KiB.
        let mut head = [0u8; 4096];
        let mut file = fs::File::open(path).ok()?;
        let mut got = 0;
        while got < head.len() {
            match file.read(&mut head[got..]) {
                Ok(0) => break,
                Ok(n) => got += n,
                Err(_) => return None,
            }
        }
        let mut r = Reader {
            buf: &head[..got],
            pos: 0,
        };
        CheckpointStore::peek_count_in(&mut r)
    }

    fn peek_count_in(r: &mut Reader<'_>) -> Option<u64> {
        if r.take(8).ok()? != MAGIC {
            return None;
        }
        r.take_str().ok()?;
        r.take_u64().ok()
    }

    /// [`CheckpointStore::peek_record_count`] through the record seam:
    /// manifest head first in the content-addressed layout, flat file
    /// otherwise.
    fn peek_count(&self, path: &Path) -> Option<u64> {
        if let Some(cas) = &self.cas {
            if let Ok(Some(head)) = cas.read_head(CheckpointStore::rec_name(path), 4096) {
                let mut r = Reader { buf: &head, pos: 0 };
                return CheckpointStore::peek_count_in(&mut r);
            }
        }
        CheckpointStore::peek_record_count(path)
    }

    /// Preserve the committed generation of shard `rank` before a new base
    /// record replaces it: rotate `dst → prev` unless `dst` has already
    /// diverged from the commit point (then `prev` still holds the committed
    /// generation and must survive — a torn save retried after recovery must
    /// not evict the only restorable record).
    fn rotate_shard_generation(&self, rank: u32) -> Result<()> {
        let dst = self.shard_path(rank);
        if !self.record_exists(&dst) {
            return Ok(());
        }
        let keep = match self.committed_count()? {
            Some(c) => self.peek_count(&dst) == Some(c),
            // No commit point yet: one generation of history is still
            // better than none.
            None => true,
        };
        if keep {
            self.record_rename(&dst, &self.prev_shard_path(rank))?;
        }
        Ok(())
    }

    /// The group-commit point: the newest safe point at which *every* shard
    /// of the group is durable. `None` before the first commit.
    pub fn committed_count(&self) -> Result<Option<u64>> {
        match fs::read(self.commit_path()) {
            Ok(bytes) => {
                let arr: [u8; 8] = bytes.as_slice().try_into().map_err(|_| {
                    PparError::CorruptCheckpoint(format!(
                        "group-commit record holds {} bytes, expected 8",
                        bytes.len()
                    ))
                })?;
                Ok(Some(u64::from_le_bytes(arr)))
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    /// Advance the group-commit point (atomically) to safe point `count`.
    pub fn commit_group(&self, count: u64) -> Result<()> {
        let tmp = self.commit_path().with_extension("tmp");
        fs::write(&tmp, count.to_le_bytes())?;
        fs::rename(&tmp, self.commit_path())?;
        Ok(())
    }

    /// Stream a master snapshot from live field sources; returns bytes
    /// written. `scratch` buffers length-unknown cells and is reused across
    /// calls (pass the module's persistent buffer).
    pub fn stream_master(
        &self,
        meta: &SnapshotMeta,
        fields: &[(&str, FieldSource<'_>)],
        scratch: &mut Vec<u8>,
    ) -> Result<u64> {
        debug_assert!(meta.rank.is_none(), "master snapshot must have rank None");
        self.stream_atomic(&self.master_path(), meta, fields, scratch, None)
    }

    /// Stream one element's shard from live field sources; returns bytes
    /// written.
    pub fn stream_shard(
        &self,
        meta: &SnapshotMeta,
        fields: &[(&str, FieldSource<'_>)],
        scratch: &mut Vec<u8>,
    ) -> Result<u64> {
        let rank = meta
            .rank
            .ok_or_else(|| PparError::InvalidPlan("shard snapshot needs a rank".into()))?;
        self.stream_atomic(&self.shard_path(rank), meta, fields, scratch, Some(rank))
    }

    /// Persist a materialized master snapshot; returns bytes written.
    /// (Streams `snap`'s payloads — convenience wrapper over
    /// [`CheckpointStore::stream_master`] for callers that already hold a
    /// [`Snapshot`].)
    pub fn write_master(&self, snap: &Snapshot) -> Result<u64> {
        debug_assert!(snap.rank.is_none(), "master snapshot must have rank None");
        let fields: Vec<(&str, FieldSource<'_>)> = snap
            .fields
            .iter()
            .map(|(name, bytes)| (name.as_str(), FieldSource::Bytes(bytes)))
            .collect();
        self.stream_master(&snap.meta(), &fields, &mut Vec::new())
    }

    /// Persist a materialized shard snapshot; returns bytes written.
    pub fn write_shard(&self, snap: &Snapshot) -> Result<u64> {
        if snap.rank.is_none() {
            return Err(PparError::InvalidPlan("shard snapshot needs a rank".into()));
        }
        let fields: Vec<(&str, FieldSource<'_>)> = snap
            .fields
            .iter()
            .map(|(name, bytes)| (name.as_str(), FieldSource::Bytes(bytes)))
            .collect();
        self.stream_shard(&snap.meta(), &fields, &mut Vec::new())
    }

    /// Stream one delta record atomically (same temp-file + rename
    /// discipline as full snapshots: a crash mid-write never leaves a
    /// half-written delta under the final name).
    fn stream_delta_atomic(
        &self,
        path: &Path,
        meta: &crate::delta::DeltaMeta,
        fields: &[(&str, DeltaSource<'_>)],
        scratch: &mut Vec<u8>,
    ) -> Result<u64> {
        if let Some(cas) = &self.cas {
            let mut w = SnapshotWriter::new_delta(cas.begin()?, meta, fields.len() as u32)?;
            for (name, source) in fields {
                w.delta_field(name, source, scratch)?;
            }
            let (written, txn) = w.finish()?;
            let name = CheckpointStore::rec_name(path);
            txn.commit(name)?;
            self.remove_superseded_flat(name);
            return Ok(written);
        }
        let tmp = path.with_extension("tmp");
        let file = fs::File::create(&tmp)?;
        let mut w = SnapshotWriter::new_delta(BufWriter::new(file), meta, fields.len() as u32)?;
        for (name, source) in fields {
            w.delta_field(name, source, scratch)?;
        }
        let (written, sink) = w.finish()?;
        drop(sink);
        fs::rename(&tmp, path)?;
        Ok(written)
    }

    /// Stream a master delta record; returns bytes written.
    pub fn stream_master_delta(
        &self,
        meta: &crate::delta::DeltaMeta,
        fields: &[(&str, DeltaSource<'_>)],
        scratch: &mut Vec<u8>,
    ) -> Result<u64> {
        debug_assert!(meta.rank.is_none(), "master delta must have rank None");
        self.stream_delta_atomic(&self.delta_path(None, meta.seq), meta, fields, scratch)
    }

    /// Stream one element's shard delta record; returns bytes written.
    pub fn stream_shard_delta(
        &self,
        meta: &crate::delta::DeltaMeta,
        fields: &[(&str, DeltaSource<'_>)],
        scratch: &mut Vec<u8>,
    ) -> Result<u64> {
        let rank = meta
            .rank
            .ok_or_else(|| PparError::InvalidPlan("shard delta needs a rank".into()))?;
        self.stream_delta_atomic(
            &self.delta_path(Some(rank), meta.seq),
            meta,
            fields,
            scratch,
        )
    }

    fn read(&self, path: &Path) -> Result<Option<Snapshot>> {
        match self.record_bytes(path)? {
            Some(bytes) => Snapshot::decode(&bytes).map(Some),
            None => Ok(None),
        }
    }

    fn read_delta(
        &self,
        rank: Option<u32>,
        seq: u32,
    ) -> Result<Option<crate::delta::DeltaSnapshot>> {
        match self.record_bytes(&self.delta_path(rank, seq))? {
            Some(bytes) => crate::delta::DeltaSnapshot::decode(&bytes).map(Some),
            None => Ok(None),
        }
    }

    /// Load delta `seq` of the master chain, if present.
    pub fn read_master_delta(&self, seq: u32) -> Result<Option<crate::delta::DeltaSnapshot>> {
        self.read_delta(None, seq)
    }

    /// Load delta `seq` of rank `rank`'s chain, if present.
    pub fn read_shard_delta(
        &self,
        rank: u32,
        seq: u32,
    ) -> Result<Option<crate::delta::DeltaSnapshot>> {
        self.read_delta(Some(rank), seq)
    }

    /// Fold the on-disk delta chain onto `snap` (the base full snapshot).
    /// The chain is walked from seq 1 until the first missing file; a delta
    /// whose `base_count` does not match the base is *stale* (left over from
    /// a crash between base promotion and delta GC) and terminates the walk
    /// harmlessly. Corrupt or out-of-order deltas are hard errors. (Chain
    /// rules are shared with every other transport through
    /// [`crate::transport::merge_chain_with`].)
    fn merge_chain(&self, snap: Snapshot) -> Result<Snapshot> {
        crate::transport::merge_chain_with(snap, |rank, seq| self.read_delta(rank, seq))
    }

    /// Load the master snapshot with its delta chain folded in: the result
    /// is byte-identical (per field) to a full snapshot of the same state.
    pub fn read_merged_master(&self) -> Result<Option<Snapshot>> {
        match self.read_master()? {
            None => Ok(None),
            Some(snap) => self.merge_chain(snap).map(Some),
        }
    }

    /// Load rank `rank`'s shard with its delta chain folded in.
    pub fn read_merged_shard(&self, rank: u32) -> Result<Option<Snapshot>> {
        match self.read_shard(rank)? {
            None => Ok(None),
            Some(snap) => self.merge_chain(snap).map(Some),
        }
    }

    /// Load rank `rank`'s shard *at exactly* safe point `count`: serve the
    /// current generation when its (count-bounded) merge lands on `count`,
    /// else fall back to the retained previous generation. This is how a
    /// restore survives a torn group save — shards that already advanced
    /// past the commit point roll back to their preserved older record.
    pub fn read_shard_at(&self, rank: u32, count: u64) -> Result<Option<Snapshot>> {
        let mut seen = Vec::new();
        for path in [self.shard_path(rank), self.prev_shard_path(rank)] {
            let Some(base) = self.read(&path)? else {
                continue;
            };
            if base.count > count {
                seen.push(base.count);
                continue;
            }
            let merged =
                crate::transport::merge_chain_to(base, count, |r, s| self.read_delta(r, s))?;
            if merged.count == count {
                return Ok(Some(merged));
            }
            seen.push(merged.count);
        }
        if seen.is_empty() {
            Ok(None)
        } else {
            Err(PparError::CorruptCheckpoint(format!(
                "no generation of shard {rank} can serve safe point {count} \
                 (available: {seen:?})"
            )))
        }
    }

    /// Stream the merged record of shard `rank` at exactly safe point
    /// `count` into `out`. Raw copy-through when a retained base generation
    /// is the record verbatim; otherwise materialize via
    /// [`CheckpointStore::read_shard_at`] and re-encode.
    pub fn write_merged_shard_at(
        &self,
        rank: u32,
        count: u64,
        out: &mut dyn Write,
    ) -> Result<Option<u64>> {
        for path in [self.shard_path(rank), self.prev_shard_path(rank)] {
            if self.peek_count(&path) == Some(count) {
                match self.record_copy_to(&path, out)? {
                    Some(written) => return Ok(Some(written)),
                    None => continue,
                }
            }
        }
        match self.read_shard_at(rank, count)? {
            Some(snap) => crate::transport::write_snapshot_record(&snap, out).map(Some),
            None => Ok(None),
        }
    }

    // Tolerate a concurrent remover (several modules of one group purging
    // at start-up): losing the race to delete is success.
    fn remove_if_present(path: PathBuf) -> Result<()> {
        match fs::remove_file(path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    /// Delete every delta of one chain (promotion GC: called after a new
    /// base full snapshot has been persisted). Sweeps any extension, so an
    /// orphaned `.tmp` from a crash mid-delta-write is collected too
    /// instead of accumulating across restart cycles.
    pub fn clear_deltas(&self, rank: Option<u32>) -> Result<()> {
        let prefix = CheckpointStore::delta_prefix(rank);
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.starts_with(&prefix) {
                CheckpointStore::remove_if_present(entry.path())?;
            }
        }
        if let Some(cas) = &self.cas {
            for name in cas.list_manifests()? {
                if name.starts_with(&prefix) {
                    cas.remove_manifest(&name)?;
                }
            }
        }
        Ok(())
    }

    /// Delete every delta file of *every* chain (master and all ranks).
    /// Fresh-run hygiene: a previous generation's leftover chain could
    /// carry a `base_count` that collides with the counts this run will
    /// produce, so the checkpoint module purges before its first snapshot
    /// whenever it is not replaying.
    pub fn clear_all_deltas(&self) -> Result<()> {
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.starts_with("ckpt_") && name.contains("_delta_") {
                CheckpointStore::remove_if_present(entry.path())?;
            }
        }
        if let Some(cas) = &self.cas {
            for name in cas.list_manifests()? {
                if name.starts_with("ckpt_") && name.contains("_delta_") {
                    cas.remove_manifest(&name)?;
                }
            }
        }
        Ok(())
    }

    /// Load the master snapshot, if present.
    pub fn read_master(&self) -> Result<Option<Snapshot>> {
        self.read(&self.master_path())
    }

    /// Load element `rank`'s shard, if present.
    pub fn read_shard(&self, rank: u32) -> Result<Option<Snapshot>> {
        self.read(&self.shard_path(rank))
    }

    /// The safe-point count at the tip of a base's delta chain, walking
    /// delta *headers* only (CRC-checked, but no payload is materialized —
    /// the full merge happens once, at load time).
    fn chain_tip_count(&self, base_count: u64, rank: Option<u32>) -> Result<u64> {
        crate::transport::chain_tip_with(base_count, rank, |rank, seq| {
            match self.record_bytes(&self.delta_path(rank, seq))? {
                Some(bytes) => crate::delta::DeltaMeta::decode(&bytes).map(Some),
                None => Ok(None),
            }
        })
    }

    /// The safe-point count a restart should replay to: prefers the master
    /// snapshot, falls back to shard 0 (local-snapshot strategy). `None`
    /// when no usable snapshot exists. Delta chains count: a restart
    /// replays to the *last delta's* safe point, not the base's.
    pub fn restart_count(&self) -> Result<Option<u64>> {
        // A group-commit point is authoritative when present (sharded
        // strategies write one after every post-save barrier): individual
        // shard tips may have outrun it if a save was torn by a rank death.
        if let Some(c) = self.committed_count()? {
            return Ok(Some(c));
        }
        if let Some(s) = self.read_master()? {
            return Ok(Some(self.chain_tip_count(s.count, None)?));
        }
        if let Some(s) = self.read_shard(0)? {
            return Ok(Some(self.chain_tip_count(s.count, Some(0))?));
        }
        Ok(None)
    }

    /// Mark a run as in flight. Idempotent (all aggregate elements call it).
    pub fn set_marker(&self) -> Result<()> {
        fs::write(self.marker_path(), b"running")?;
        Ok(())
    }

    /// Is a run marked as in flight?
    pub fn marker_exists(&self) -> bool {
        self.marker_path().exists()
    }

    /// Clear the in-flight marker (normal completion).
    pub fn clear_marker(&self) -> Result<()> {
        match fs::remove_file(self.marker_path()) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    /// Remove all snapshots and the marker (fresh directory for a new
    /// experiment).
    pub fn clear_all(&self) -> Result<()> {
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name == "RUNNING" || name.starts_with("ckpt_") {
                fs::remove_file(entry.path())?;
            }
        }
        if let Some(cas) = &self.cas {
            for name in cas.list_manifests()? {
                if name.starts_with("ckpt_") {
                    cas.remove_manifest(&name)?;
                }
            }
            // Orphaned chunk objects are reclaimed eagerly: a cleared
            // directory should not keep paying for dead generations.
            cas.gc()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ppar_store_test_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn sample(rank: Option<u32>) -> Snapshot {
        Snapshot {
            mode_tag: "smp4".to_string(),
            count: 123,
            rank,
            nranks: 8,
            fields: vec![
                ("G".to_string(), vec![1, 2, 3, 4]),
                ("energy".to_string(), 42.0f64.to_le_bytes().to_vec()),
            ],
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        for rank in [None, Some(0), Some(31)] {
            let s = sample(rank);
            let decoded = Snapshot::decode(&s.encode()).unwrap();
            assert_eq!(decoded, s);
        }
    }

    #[test]
    fn field_lookup_and_payload_size() {
        let s = sample(None);
        assert_eq!(s.field("G"), Some(&[1u8, 2, 3, 4][..]));
        assert!(s.field("missing").is_none());
        assert_eq!(s.payload_bytes(), 12);
    }

    #[test]
    fn corruption_detected() {
        let s = sample(None);
        let mut bytes = s.encode();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        match Snapshot::decode(&bytes) {
            Err(PparError::CorruptCheckpoint(msg)) => assert!(msg.contains("CRC")),
            other => panic!("expected CRC error, got {other:?}"),
        }
    }

    #[test]
    fn truncation_detected() {
        let s = sample(None);
        let bytes = s.encode();
        assert!(Snapshot::decode(&bytes[..bytes.len() - 9]).is_err());
        assert!(Snapshot::decode(&bytes[..3]).is_err());
    }

    #[test]
    fn bad_magic_reports_format_mismatch() {
        let s = sample(None);
        let mut bytes = s.encode();
        bytes[0] = b'X';
        // fix up CRC so we reach the magic check
        let n = bytes.len();
        let crc = crc32(&bytes[..n - 4]);
        bytes[n - 4..].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            Snapshot::decode(&bytes),
            Err(PparError::FormatMismatch { .. })
        ));
    }

    #[test]
    fn store_write_read_master_and_shards() {
        let dir = tmpdir("rw");
        let store = CheckpointStore::new(&dir).unwrap();
        assert!(store.read_master().unwrap().is_none());

        let master = sample(None);
        let written = store.write_master(&master).unwrap();
        assert!(written > 0);
        assert_eq!(store.read_master().unwrap().unwrap(), master);

        let shard = sample(Some(3));
        store.write_shard(&shard).unwrap();
        assert_eq!(store.read_shard(3).unwrap().unwrap(), shard);
        assert!(store.read_shard(4).unwrap().is_none());

        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn restart_count_prefers_master() {
        let dir = tmpdir("count");
        let store = CheckpointStore::new(&dir).unwrap();
        assert_eq!(store.restart_count().unwrap(), None);

        let mut shard = sample(Some(0));
        shard.count = 50;
        store.write_shard(&shard).unwrap();
        assert_eq!(store.restart_count().unwrap(), Some(50));

        let mut master = sample(None);
        master.count = 80;
        store.write_master(&master).unwrap();
        assert_eq!(store.restart_count().unwrap(), Some(80));

        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn marker_lifecycle() {
        let dir = tmpdir("marker");
        let store = CheckpointStore::new(&dir).unwrap();
        assert!(!store.marker_exists());
        store.set_marker().unwrap();
        store.set_marker().unwrap(); // idempotent
        assert!(store.marker_exists());
        store.clear_marker().unwrap();
        store.clear_marker().unwrap(); // idempotent
        assert!(!store.marker_exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn clear_all_removes_artifacts() {
        let dir = tmpdir("clear");
        let store = CheckpointStore::new(&dir).unwrap();
        store.set_marker().unwrap();
        store.write_master(&sample(None)).unwrap();
        store.write_shard(&sample(Some(1))).unwrap();
        store.clear_all().unwrap();
        assert!(!store.marker_exists());
        assert!(store.read_master().unwrap().is_none());
        assert!(store.read_shard(1).unwrap().is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    // ---- streaming writer ----

    use ppar_core::shared::SharedVec;
    use ppar_core::state::StateCell;

    fn bytes_fields(snap: &Snapshot) -> Vec<(&str, FieldSource<'_>)> {
        snap.fields
            .iter()
            .map(|(n, b)| (n.as_str(), FieldSource::Bytes(b)))
            .collect()
    }

    /// The golden-bytes guarantee: for identical content, the streaming
    /// writer's file is byte-for-byte the legacy materialized encoding.
    #[test]
    fn golden_bytes_streaming_equals_legacy_encode() {
        let dir = tmpdir("golden");
        let store = CheckpointStore::new(&dir).unwrap();
        let cases = vec![
            sample(None),
            sample(Some(3)),
            // Edge: snapshot with no fields at all.
            Snapshot {
                mode_tag: "seq".into(),
                count: 0,
                rank: None,
                nranks: 1,
                fields: vec![],
            },
            // Edge: empty payload and empty name.
            Snapshot {
                mode_tag: String::new(),
                count: u64::MAX,
                rank: Some(0),
                nranks: 1,
                fields: vec![("empty".into(), vec![]), (String::new(), vec![7])],
            },
        ];
        for snap in cases {
            let golden = snap.encode();
            let written = if snap.rank.is_none() {
                store
                    .stream_master(&snap.meta(), &bytes_fields(&snap), &mut Vec::new())
                    .unwrap()
            } else {
                store
                    .stream_shard(&snap.meta(), &bytes_fields(&snap), &mut Vec::new())
                    .unwrap()
            };
            let path = match snap.rank {
                None => store.master_path(),
                Some(r) => store.shard_path(r),
            };
            let streamed = fs::read(&path).unwrap();
            assert_eq!(streamed, golden, "streamed bytes differ for {snap:?}");
            assert_eq!(written, golden.len() as u64);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    /// `FieldSource::Cell` (the zero-copy path) must produce the same bytes
    /// as materializing the cell through `save_bytes`.
    #[test]
    fn golden_bytes_cell_source_matches_materialized() {
        let dir = tmpdir("golden_cell");
        let store = CheckpointStore::new(&dir).unwrap();
        let grid: Vec<f64> = (0..512).map(|i| i as f64 * 0.5 - 17.0).collect();
        let vec_cell = SharedVec::from_vec(grid);
        let empty_cell = SharedVec::new(0, 0.0f64);

        let materialized = Snapshot {
            mode_tag: "smp4".into(),
            count: 9,
            rank: None,
            nranks: 1,
            fields: vec![
                ("G".into(), vec_cell.save_bytes()),
                ("Z".into(), empty_cell.save_bytes()),
            ],
        };
        let golden = materialized.encode();

        let fields: Vec<(&str, FieldSource<'_>)> = vec![
            ("G", FieldSource::Cell(&vec_cell)),
            ("Z", FieldSource::Cell(&empty_cell)),
        ];
        let mut scratch = Vec::new();
        store
            .stream_master(&materialized.meta(), &fields, &mut scratch)
            .unwrap();
        let streamed = fs::read(store.master_path()).unwrap();
        assert_eq!(streamed, golden);
        assert!(
            scratch.is_empty(),
            "known-length cells must not touch the scratch buffer"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    /// Files written by the legacy encoder load through the reader, and
    /// files written by the streaming writer decode to the same snapshot:
    /// both directions of the format-compatibility acceptance criterion.
    #[test]
    fn legacy_and_streamed_files_are_interchangeable() {
        let dir = tmpdir("interop");
        let store = CheckpointStore::new(&dir).unwrap();
        let snap = sample(None);

        // Legacy writer -> new reader.
        fs::write(store.master_path(), snap.encode()).unwrap();
        assert_eq!(store.read_master().unwrap().unwrap(), snap);

        // Streaming writer -> reader.
        store
            .stream_master(&snap.meta(), &bytes_fields(&snap), &mut Vec::new())
            .unwrap();
        assert_eq!(store.read_master().unwrap().unwrap(), snap);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn streamed_file_corruption_and_truncation_detected() {
        let dir = tmpdir("stream_corrupt");
        let store = CheckpointStore::new(&dir).unwrap();
        let snap = sample(None);
        store
            .stream_master(&snap.meta(), &bytes_fields(&snap), &mut Vec::new())
            .unwrap();
        let good = fs::read(store.master_path()).unwrap();

        // Bit flip anywhere must fail the CRC.
        for pos in [0, good.len() / 2, good.len() - 1] {
            let mut bad = good.clone();
            bad[pos] ^= 0x01;
            fs::write(store.master_path(), &bad).unwrap();
            assert!(
                matches!(
                    store.read_master(),
                    Err(PparError::CorruptCheckpoint(_)) | Err(PparError::FormatMismatch { .. })
                ),
                "bit flip at {pos} undetected"
            );
        }

        // Truncation at any boundary must fail.
        for cut in [1, 4, good.len() / 2, good.len() - 1] {
            fs::write(store.master_path(), &good[..cut]).unwrap();
            assert!(
                store.read_master().is_err(),
                "truncation to {cut} undetected"
            );
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    /// Full save -> load round trip of a `SharedVec<f64>` through the
    /// `write_state` fast path (no per-element serialization on save).
    #[test]
    fn shared_vec_f64_roundtrips_through_streaming_path() {
        let dir = tmpdir("vec_roundtrip");
        let store = CheckpointStore::new(&dir).unwrap();
        let values: Vec<f64> = (0..1000)
            .map(|i| (i as f64).sin() * 1e9 + f64::EPSILON * i as f64)
            .collect();
        let cell = SharedVec::from_vec(values.clone());
        let meta = SnapshotMeta {
            mode_tag: "seq".into(),
            count: 42,
            rank: None,
            nranks: 1,
        };
        let fields: Vec<(&str, FieldSource<'_>)> = vec![("G", FieldSource::Cell(&cell))];
        store
            .stream_master(&meta, &fields, &mut Vec::new())
            .unwrap();

        let back = store.read_master().unwrap().unwrap();
        assert_eq!(back.count, 42);
        let restored = SharedVec::new(1000, 0.0f64);
        restored.load_bytes(back.field("G").unwrap()).unwrap();
        assert_eq!(restored.to_vec(), values);
        fs::remove_dir_all(&dir).unwrap();
    }

    /// Length-unknown cells (serde-backed) stream through the reusable
    /// scratch buffer and still hit the golden encoding.
    #[test]
    fn unknown_length_cells_buffer_through_scratch() {
        struct OpaqueCell(Vec<u8>);
        impl StateCell for OpaqueCell {
            fn save_bytes(&self) -> Vec<u8> {
                self.0.clone()
            }
            fn load_bytes(&self, _bytes: &[u8]) -> ppar_core::error::Result<()> {
                Ok(())
            }
            fn byte_len(&self) -> usize {
                self.0.len()
            }
            fn known_byte_len(&self) -> Option<usize> {
                None
            }
        }
        let dir = tmpdir("scratch");
        let store = CheckpointStore::new(&dir).unwrap();
        let cell = OpaqueCell(vec![1, 2, 3, 4, 5]);
        let meta = SnapshotMeta {
            mode_tag: "seq".into(),
            count: 1,
            rank: None,
            nranks: 1,
        };
        let fields: Vec<(&str, FieldSource<'_>)> = vec![("pop", FieldSource::Cell(&cell))];
        let mut scratch = Vec::new();
        store.stream_master(&meta, &fields, &mut scratch).unwrap();
        assert_eq!(scratch, vec![1, 2, 3, 4, 5], "field buffered via scratch");

        let golden = Snapshot {
            mode_tag: "seq".into(),
            count: 1,
            rank: None,
            nranks: 1,
            fields: vec![("pop".into(), vec![1, 2, 3, 4, 5])],
        }
        .encode();
        assert_eq!(fs::read(store.master_path()).unwrap(), golden);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_writer_enforces_announced_field_count() {
        let meta = SnapshotMeta {
            mode_tag: "seq".into(),
            count: 0,
            rank: None,
            nranks: 1,
        };
        // Fewer fields than announced: finish() must refuse.
        let w = SnapshotWriter::new(Vec::new(), &meta, 2).unwrap();
        assert!(w.finish().is_err());
        // More fields than announced: the extra field must refuse.
        let mut w = SnapshotWriter::new(Vec::new(), &meta, 1).unwrap();
        w.field_bytes("a", &[1]).unwrap();
        assert!(w.field_bytes("b", &[2]).is_err());
        // Exact count round-trips.
        let mut w = SnapshotWriter::new(Vec::new(), &meta, 1).unwrap();
        w.field_bytes("a", &[1, 2, 3]).unwrap();
        let (written, bytes) = w.finish().unwrap();
        assert_eq!(written as usize, bytes.len());
        let decoded = Snapshot::decode(&bytes).unwrap();
        assert_eq!(decoded.field("a"), Some(&[1u8, 2, 3][..]));
    }

    // ---- delta records and merge-on-load ----

    use crate::delta::DeltaMeta;

    fn delta_meta(count: u64, base_count: u64, seq: u32, rank: Option<u32>) -> DeltaMeta {
        DeltaMeta {
            mode_tag: "seq".into(),
            count,
            base_count,
            seq,
            rank,
            nranks: 1,
        }
    }

    /// Persist `cell` as the base, then express subsequent writes as a
    /// delta chain and check the merged restore equals a fresh full save.
    #[test]
    fn base_plus_delta_chain_restores_byte_identical() {
        let dir = tmpdir("delta_chain");
        let store = CheckpointStore::new(&dir).unwrap();
        // 40k f64 = 40 dirty chunks, so touching a couple of chunks keeps
        // deltas far below the base size.
        let v = SharedVec::from_vec((0..40_000).map(|i| i as f64).collect());
        let meta = SnapshotMeta {
            mode_tag: "seq".into(),
            count: 10,
            rank: None,
            nranks: 1,
        };
        store
            .stream_master(&meta, &[("G", FieldSource::Cell(&v))], &mut Vec::new())
            .unwrap();
        v.clear_dirty();

        // Delta 1 touches the front, delta 2 overlaps it (last writer wins).
        v.set(0, -1.0);
        v.set(1100, -2.0);
        let ranges = v.dirty_byte_ranges();
        let dm = delta_meta(20, 10, 1, None);
        store
            .stream_master_delta(
                &dm,
                &[(
                    "G",
                    DeltaSource::DirtyCell {
                        cell: &v,
                        ranges: &ranges,
                    },
                )],
                &mut Vec::new(),
            )
            .unwrap();
        v.clear_dirty();

        v.set(0, 99.0); // overlaps delta 1's chunk
        v.set(39_999, 5.5);
        let ranges = v.dirty_byte_ranges();
        let dm = delta_meta(30, 10, 2, None);
        store
            .stream_master_delta(
                &dm,
                &[(
                    "G",
                    DeltaSource::DirtyCell {
                        cell: &v,
                        ranges: &ranges,
                    },
                )],
                &mut Vec::new(),
            )
            .unwrap();

        let merged = store.read_merged_master().unwrap().unwrap();
        assert_eq!(merged.count, 30, "restart replays to the last delta");
        assert_eq!(merged.field("G").unwrap(), v.save_bytes().as_slice());
        assert_eq!(store.restart_count().unwrap(), Some(30));

        // Delta files are much smaller than the base (the whole point).
        let base_len = fs::metadata(store.master_path()).unwrap().len();
        let d1_len = fs::metadata(store.delta_path(None, 1)).unwrap().len();
        assert!(
            d1_len * 2 < base_len,
            "delta ({d1_len}B) should be far smaller than base ({base_len}B)"
        );

        // Promotion GC.
        store.clear_deltas(None).unwrap();
        assert!(store.read_master_delta(1).unwrap().is_none());
        assert!(store.read_master_delta(2).unwrap().is_none());
        assert_eq!(store.read_merged_master().unwrap().unwrap().count, 10);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_delta_is_a_noop_that_advances_the_count() {
        let dir = tmpdir("delta_empty");
        let store = CheckpointStore::new(&dir).unwrap();
        let v = SharedVec::from_vec(vec![1.0f64; 100]);
        let meta = SnapshotMeta {
            mode_tag: "seq".into(),
            count: 1,
            rank: None,
            nranks: 1,
        };
        store
            .stream_master(&meta, &[("G", FieldSource::Cell(&v))], &mut Vec::new())
            .unwrap();
        v.clear_dirty();

        let dm = delta_meta(2, 1, 1, None);
        store
            .stream_master_delta(
                &dm,
                &[(
                    "G",
                    DeltaSource::DirtyCell {
                        cell: &v,
                        ranges: &[],
                    },
                )],
                &mut Vec::new(),
            )
            .unwrap();
        let merged = store.read_merged_master().unwrap().unwrap();
        assert_eq!(merged.count, 2);
        assert_eq!(merged.field("G").unwrap(), v.save_bytes().as_slice());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_or_truncated_delta_is_detected() {
        let dir = tmpdir("delta_corrupt");
        let store = CheckpointStore::new(&dir).unwrap();
        let v = SharedVec::from_vec(vec![2.0f64; 1500]);
        let meta = SnapshotMeta {
            mode_tag: "seq".into(),
            count: 1,
            rank: None,
            nranks: 1,
        };
        store
            .stream_master(&meta, &[("G", FieldSource::Cell(&v))], &mut Vec::new())
            .unwrap();
        v.clear_dirty();
        v.set(7, 3.0);
        let ranges = v.dirty_byte_ranges();
        store
            .stream_master_delta(
                &delta_meta(2, 1, 1, None),
                &[(
                    "G",
                    DeltaSource::DirtyCell {
                        cell: &v,
                        ranges: &ranges,
                    },
                )],
                &mut Vec::new(),
            )
            .unwrap();
        let path = store.delta_path(None, 1);
        let good = fs::read(&path).unwrap();

        // Bit flips anywhere fail the CRC (or the magic/version check).
        for pos in [0, 8, good.len() / 2, good.len() - 1] {
            let mut bad = good.clone();
            bad[pos] ^= 0x10;
            fs::write(&path, &bad).unwrap();
            assert!(
                store.read_merged_master().is_err(),
                "bit flip at {pos} undetected"
            );
        }
        // Truncations fail.
        for cut in [3, 16, good.len() / 2, good.len() - 1] {
            fs::write(&path, &good[..cut]).unwrap();
            assert!(
                store.read_merged_master().is_err(),
                "truncation to {cut} undetected"
            );
        }
        // An unsupported format version is rejected up front.
        let mut v2 = good.clone();
        v2[8..12].copy_from_slice(&2u32.to_le_bytes());
        let n = v2.len();
        let crc = crc32(&v2[..n - 4]);
        v2[n - 4..].copy_from_slice(&crc.to_le_bytes());
        fs::write(&path, &v2).unwrap();
        match store.read_merged_master() {
            Err(PparError::FormatMismatch { expected, .. }) => {
                assert!(expected.contains("delta format"))
            }
            other => panic!("expected version mismatch, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_chain_from_old_base_is_ignored() {
        let dir = tmpdir("delta_stale");
        let store = CheckpointStore::new(&dir).unwrap();
        let v = SharedVec::from_vec(vec![0.0f64; 64]);
        let snap = |count| SnapshotMeta {
            mode_tag: "seq".into(),
            count,
            rank: None,
            nranks: 1,
        };
        store
            .stream_master(&snap(1), &[("G", FieldSource::Cell(&v))], &mut Vec::new())
            .unwrap();
        v.clear_dirty();
        v.set(0, 1.0);
        let ranges = v.dirty_byte_ranges();
        store
            .stream_master_delta(
                &delta_meta(2, 1, 1, None),
                &[(
                    "G",
                    DeltaSource::DirtyCell {
                        cell: &v,
                        ranges: &ranges,
                    },
                )],
                &mut Vec::new(),
            )
            .unwrap();

        // Promote a new base (count 3) but "crash" before delta GC: the
        // leftover delta's base_count (1) no longer matches and must be
        // skipped, not applied and not fatal.
        v.set(0, 42.0);
        store
            .stream_master(&snap(3), &[("G", FieldSource::Cell(&v))], &mut Vec::new())
            .unwrap();
        let merged = store.read_merged_master().unwrap().unwrap();
        assert_eq!(merged.count, 3);
        assert_eq!(merged.field("G").unwrap(), v.save_bytes().as_slice());

        // An in-chain sequence-number mismatch, by contrast, is corruption.
        store
            .stream_master_delta(
                &delta_meta(4, 3, 2, None),
                &[("G", DeltaSource::Full(FieldSource::Cell(&v)))],
                &mut Vec::new(),
            )
            .unwrap();
        fs::rename(store.delta_path(None, 2), store.delta_path(None, 1)).unwrap();
        assert!(store.read_merged_master().is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    #[allow(clippy::single_range_in_vec_init)] // ranges here are span data
    fn shard_delta_chain_merges_relative_to_shard_payload() {
        let dir = tmpdir("delta_shard");
        let store = CheckpointStore::new(&dir).unwrap();
        // Shard payloads are owned-block extractions; offsets in shard
        // deltas are relative to that payload, not the full field.
        let shard_bytes: Vec<u8> = (0..64u8).collect();
        let meta = SnapshotMeta {
            mode_tag: "dist4".into(),
            count: 5,
            rank: Some(2),
            nranks: 4,
        };
        store
            .stream_shard(
                &meta,
                &[("G", FieldSource::Bytes(&shard_bytes))],
                &mut Vec::new(),
            )
            .unwrap();

        let patch = [9u8; 8];
        let mut dm = delta_meta(6, 5, 1, Some(2));
        dm.nranks = 4;
        store
            .stream_shard_delta(
                &dm,
                &[(
                    "G",
                    DeltaSource::DirtyBytes {
                        full_len: 64,
                        ranges: &[16..24],
                        payload: &patch,
                    },
                )],
                &mut Vec::new(),
            )
            .unwrap();
        let merged = store.read_merged_shard(2).unwrap().unwrap();
        assert_eq!(merged.count, 6);
        let mut expect = shard_bytes.clone();
        expect[16..24].copy_from_slice(&patch);
        assert_eq!(merged.field("G").unwrap(), expect.as_slice());
        // Master chain is untouched by shard deltas.
        assert!(store.read_merged_master().unwrap().is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn delta_roundtrips_through_decode() {
        let dir = tmpdir("delta_decode");
        let store = CheckpointStore::new(&dir).unwrap();
        let v = SharedVec::from_vec((0..2000).map(|i| (i as f64).sqrt()).collect());
        v.clear_dirty();
        v.set(1500, -8.0);
        let ranges = v.dirty_byte_ranges();
        let opaque = vec![1u8, 2, 3];
        store
            .stream_master_delta(
                &delta_meta(7, 3, 2, None),
                &[
                    (
                        "G",
                        DeltaSource::DirtyCell {
                            cell: &v,
                            ranges: &ranges,
                        },
                    ),
                    ("pop", DeltaSource::Full(FieldSource::Bytes(&opaque))),
                ],
                &mut Vec::new(),
            )
            .unwrap();
        let d = store.read_master_delta(2).unwrap().unwrap();
        assert_eq!(d.meta, delta_meta(7, 3, 2, None));
        assert_eq!(d.fields.len(), 2);
        match &d.fields[0].1 {
            crate::delta::DeltaPayload::Sparse {
                full_len,
                ranges: rs,
            } => {
                assert_eq!(*full_len, 2000 * 8);
                assert_eq!(rs.len(), 1);
                assert_eq!(rs[0].0 as usize, ranges[0].start);
                assert_eq!(rs[0].1.len(), ranges[0].len());
            }
            other => panic!("expected sparse payload, got {other:?}"),
        }
        assert_eq!(d.fields[1].1, crate::delta::DeltaPayload::Full(opaque));
        fs::remove_dir_all(&dir).unwrap();
    }

    proptest::proptest! {
        /// The acceptance-criterion property: for arbitrary write sequences,
        /// restoring base + delta chain is byte-identical to a full snapshot
        /// of the same final state.
        #[test]
        fn prop_base_plus_deltas_equals_full_snapshot(
            w1 in proptest::collection::vec((0usize..3000, proptest::prelude::any::<f64>()), 0..40),
            w2 in proptest::collection::vec((0usize..3000, proptest::prelude::any::<f64>()), 0..40)
        ) {
            let dir = tmpdir("prop_delta");
            let store = CheckpointStore::new(&dir).unwrap();
            let v = SharedVec::from_vec((0..3000).map(|i| i as f64 * 0.25).collect());
            let meta = SnapshotMeta {
                mode_tag: "seq".into(),
                count: 1,
                rank: None,
                nranks: 1,
            };
            store
                .stream_master(&meta, &[("G", FieldSource::Cell(&v))], &mut Vec::new())
                .unwrap();
            v.clear_dirty();

            for (seq, writes) in [(1u32, &w1), (2u32, &w2)] {
                for &(i, val) in writes {
                    v.set(i, val);
                }
                let ranges = v.dirty_byte_ranges();
                store
                    .stream_master_delta(
                        &delta_meta(1 + seq as u64, 1, seq, None),
                        &[("G", DeltaSource::DirtyCell { cell: &v, ranges: &ranges })],
                        &mut Vec::new(),
                    )
                    .unwrap();
                v.clear_dirty();
            }

            let merged = store.read_merged_master().unwrap().unwrap();
            proptest::prop_assert_eq!(merged.field("G").unwrap(), v.save_bytes().as_slice());
            proptest::prop_assert_eq!(merged.count, 3);
            let _ = fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn overwrite_is_atomic_replacement() {
        let dir = tmpdir("atomic");
        let store = CheckpointStore::new(&dir).unwrap();
        let mut s = sample(None);
        store.write_master(&s).unwrap();
        s.count = 999;
        s.fields[0].1 = vec![9; 1000];
        store.write_master(&s).unwrap();
        let back = store.read_master().unwrap().unwrap();
        assert_eq!(back.count, 999);
        assert_eq!(back.fields[0].1.len(), 1000);
        fs::remove_dir_all(&dir).unwrap();
    }
}
