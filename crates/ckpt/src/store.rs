//! Persistent checkpoint storage: snapshot files and the failure marker.
//!
//! Layout of a checkpoint directory:
//!
//! ```text
//! <dir>/
//!   RUNNING              # exists while a run is in flight (the pcr module's
//!                        # failure detector: marker + snapshot => replay)
//!   ckpt_master.bin      # master-collected snapshot (restartable in ANY mode)
//!   ckpt_rank_<r>.bin    # per-element shards (local-snapshot strategy)
//! ```
//!
//! Snapshot files are written atomically (temp file + rename) and carry a
//! trailing CRC-32 over the entire content, so a crash *during* checkpointing
//! can never produce a snapshot that is both present and corrupt: either the
//! old snapshot survives or the new one is complete.
//!
//! File format (all integers little-endian):
//!
//! ```text
//! magic    8B  "PPARCKP1"
//! mode     len-prefixed UTF-8 tag (e.g. "seq", "smp8", "dist32")
//! count    u64   safe points executed when the snapshot was taken
//! rank     u32   owning element, 0xFFFF_FFFF for a master snapshot
//! nranks   u32   aggregate size at snapshot time
//! nfields  u32
//! fields   nfields × { name: len-prefixed UTF-8, payload: len-prefixed bytes }
//! crc      u32   CRC-32 of every preceding byte
//! ```

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use ppar_core::error::{PparError, Result};

use crate::crc::crc32;

const MAGIC: &[u8; 8] = b"PPARCKP1";
const MASTER_RANK: u32 = 0xFFFF_FFFF;

/// An in-memory snapshot: header plus named field payloads.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Execution-mode tag at snapshot time (`ExecMode::tag()`); informative
    /// only — master snapshots restart in any mode.
    pub mode_tag: String,
    /// Safe points executed when the snapshot was taken.
    pub count: u64,
    /// Owning element for shard snapshots; `None` for master snapshots.
    pub rank: Option<u32>,
    /// Aggregate size at snapshot time (1 for non-distributed runs).
    pub nranks: u32,
    /// Field name → payload bytes, in `SafeData` declaration order.
    pub fields: Vec<(String, Vec<u8>)>,
}

impl Snapshot {
    /// Payload bytes of field `name`.
    pub fn field(&self, name: &str) -> Option<&[u8]> {
        self.fields
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, b)| b.as_slice())
    }

    /// Total payload size (the paper's "checkpoint data" volume).
    pub fn payload_bytes(&self) -> usize {
        self.fields.iter().map(|(_, b)| b.len()).sum()
    }

    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.payload_bytes());
        out.extend_from_slice(MAGIC);
        put_str(&mut out, &self.mode_tag);
        out.extend_from_slice(&self.count.to_le_bytes());
        out.extend_from_slice(&self.rank.unwrap_or(MASTER_RANK).to_le_bytes());
        out.extend_from_slice(&self.nranks.to_le_bytes());
        out.extend_from_slice(&(self.fields.len() as u32).to_le_bytes());
        for (name, payload) in &self.fields {
            put_str(&mut out, name);
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(payload);
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    fn decode(bytes: &[u8]) -> Result<Snapshot> {
        if bytes.len() < MAGIC.len() + 4 {
            return Err(PparError::CorruptCheckpoint("file too short".into()));
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let stored_crc = u32::from_le_bytes(crc_bytes.try_into().unwrap());
        if crc32(body) != stored_crc {
            return Err(PparError::CorruptCheckpoint(format!(
                "CRC mismatch: stored {stored_crc:#010x}, computed {:#010x}",
                crc32(body)
            )));
        }
        let mut r = Reader { buf: body, pos: 0 };
        let magic = r.take(8)?;
        if magic != MAGIC {
            return Err(PparError::FormatMismatch {
                expected: String::from_utf8_lossy(MAGIC).into_owned(),
                found: String::from_utf8_lossy(magic).into_owned(),
            });
        }
        let mode_tag = r.take_str()?;
        let count = r.take_u64()?;
        let rank_raw = r.take_u32()?;
        let nranks = r.take_u32()?;
        let nfields = r.take_u32()?;
        let mut fields = Vec::with_capacity(nfields as usize);
        for _ in 0..nfields {
            let name = r.take_str()?;
            let len = r.take_u64()? as usize;
            fields.push((name, r.take(len)?.to_vec()));
        }
        if r.pos != body.len() {
            return Err(PparError::CorruptCheckpoint(format!(
                "{} unconsumed bytes before CRC",
                body.len() - r.pos
            )));
        }
        Ok(Snapshot {
            mode_tag,
            count,
            rank: (rank_raw != MASTER_RANK).then_some(rank_raw),
            nranks,
            fields,
        })
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u64).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(PparError::CorruptCheckpoint(format!(
                "truncated: wanted {n} bytes at offset {}",
                self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn take_u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn take_u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn take_str(&mut self) -> Result<String> {
        let len = self.take_u64()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| PparError::CorruptCheckpoint(format!("invalid utf-8: {e}")))
    }
}

/// A checkpoint directory.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
}

impl CheckpointStore {
    /// Open (creating if needed) a checkpoint directory.
    pub fn new(dir: impl AsRef<Path>) -> Result<CheckpointStore> {
        fs::create_dir_all(dir.as_ref())?;
        Ok(CheckpointStore {
            dir: dir.as_ref().to_path_buf(),
        })
    }

    /// The directory path.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn master_path(&self) -> PathBuf {
        self.dir.join("ckpt_master.bin")
    }

    fn shard_path(&self, rank: u32) -> PathBuf {
        self.dir.join(format!("ckpt_rank_{rank}.bin"))
    }

    fn marker_path(&self) -> PathBuf {
        self.dir.join("RUNNING")
    }

    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> Result<()> {
        let tmp = path.with_extension("tmp");
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            f.flush()?;
        }
        fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Persist a master snapshot; returns bytes written.
    pub fn write_master(&self, snap: &Snapshot) -> Result<u64> {
        debug_assert!(snap.rank.is_none(), "master snapshot must have rank None");
        let bytes = snap.encode();
        self.write_atomic(&self.master_path(), &bytes)?;
        Ok(bytes.len() as u64)
    }

    /// Persist one element's shard; returns bytes written.
    pub fn write_shard(&self, snap: &Snapshot) -> Result<u64> {
        let rank = snap
            .rank
            .ok_or_else(|| PparError::InvalidPlan("shard snapshot needs a rank".into()))?;
        let bytes = snap.encode();
        self.write_atomic(&self.shard_path(rank), &bytes)?;
        Ok(bytes.len() as u64)
    }

    fn read(&self, path: &Path) -> Result<Option<Snapshot>> {
        match fs::read(path) {
            Ok(bytes) => Snapshot::decode(&bytes).map(Some),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    /// Load the master snapshot, if present.
    pub fn read_master(&self) -> Result<Option<Snapshot>> {
        self.read(&self.master_path())
    }

    /// Load element `rank`'s shard, if present.
    pub fn read_shard(&self, rank: u32) -> Result<Option<Snapshot>> {
        self.read(&self.shard_path(rank))
    }

    /// The safe-point count a restart should replay to: prefers the master
    /// snapshot, falls back to shard 0 (local-snapshot strategy). `None`
    /// when no usable snapshot exists.
    pub fn restart_count(&self) -> Result<Option<u64>> {
        if let Some(s) = self.read_master()? {
            return Ok(Some(s.count));
        }
        if let Some(s) = self.read_shard(0)? {
            return Ok(Some(s.count));
        }
        Ok(None)
    }

    /// Mark a run as in flight. Idempotent (all aggregate elements call it).
    pub fn set_marker(&self) -> Result<()> {
        fs::write(self.marker_path(), b"running")?;
        Ok(())
    }

    /// Is a run marked as in flight?
    pub fn marker_exists(&self) -> bool {
        self.marker_path().exists()
    }

    /// Clear the in-flight marker (normal completion).
    pub fn clear_marker(&self) -> Result<()> {
        match fs::remove_file(self.marker_path()) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    /// Remove all snapshots and the marker (fresh directory for a new
    /// experiment).
    pub fn clear_all(&self) -> Result<()> {
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name == "RUNNING" || name.starts_with("ckpt_") {
                fs::remove_file(entry.path())?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "ppar_store_test_{tag}_{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn sample(rank: Option<u32>) -> Snapshot {
        Snapshot {
            mode_tag: "smp4".to_string(),
            count: 123,
            rank,
            nranks: 8,
            fields: vec![
                ("G".to_string(), vec![1, 2, 3, 4]),
                ("energy".to_string(), 42.0f64.to_le_bytes().to_vec()),
            ],
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        for rank in [None, Some(0), Some(31)] {
            let s = sample(rank);
            let decoded = Snapshot::decode(&s.encode()).unwrap();
            assert_eq!(decoded, s);
        }
    }

    #[test]
    fn field_lookup_and_payload_size() {
        let s = sample(None);
        assert_eq!(s.field("G"), Some(&[1u8, 2, 3, 4][..]));
        assert!(s.field("missing").is_none());
        assert_eq!(s.payload_bytes(), 12);
    }

    #[test]
    fn corruption_detected() {
        let s = sample(None);
        let mut bytes = s.encode();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        match Snapshot::decode(&bytes) {
            Err(PparError::CorruptCheckpoint(msg)) => assert!(msg.contains("CRC")),
            other => panic!("expected CRC error, got {other:?}"),
        }
    }

    #[test]
    fn truncation_detected() {
        let s = sample(None);
        let bytes = s.encode();
        assert!(Snapshot::decode(&bytes[..bytes.len() - 9]).is_err());
        assert!(Snapshot::decode(&bytes[..3]).is_err());
    }

    #[test]
    fn bad_magic_reports_format_mismatch() {
        let s = sample(None);
        let mut bytes = s.encode();
        bytes[0] = b'X';
        // fix up CRC so we reach the magic check
        let n = bytes.len();
        let crc = crc32(&bytes[..n - 4]);
        bytes[n - 4..].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            Snapshot::decode(&bytes),
            Err(PparError::FormatMismatch { .. })
        ));
    }

    #[test]
    fn store_write_read_master_and_shards() {
        let dir = tmpdir("rw");
        let store = CheckpointStore::new(&dir).unwrap();
        assert!(store.read_master().unwrap().is_none());

        let master = sample(None);
        let written = store.write_master(&master).unwrap();
        assert!(written > 0);
        assert_eq!(store.read_master().unwrap().unwrap(), master);

        let shard = sample(Some(3));
        store.write_shard(&shard).unwrap();
        assert_eq!(store.read_shard(3).unwrap().unwrap(), shard);
        assert!(store.read_shard(4).unwrap().is_none());

        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn restart_count_prefers_master() {
        let dir = tmpdir("count");
        let store = CheckpointStore::new(&dir).unwrap();
        assert_eq!(store.restart_count().unwrap(), None);

        let mut shard = sample(Some(0));
        shard.count = 50;
        store.write_shard(&shard).unwrap();
        assert_eq!(store.restart_count().unwrap(), Some(50));

        let mut master = sample(None);
        master.count = 80;
        store.write_master(&master).unwrap();
        assert_eq!(store.restart_count().unwrap(), Some(80));

        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn marker_lifecycle() {
        let dir = tmpdir("marker");
        let store = CheckpointStore::new(&dir).unwrap();
        assert!(!store.marker_exists());
        store.set_marker().unwrap();
        store.set_marker().unwrap(); // idempotent
        assert!(store.marker_exists());
        store.clear_marker().unwrap();
        store.clear_marker().unwrap(); // idempotent
        assert!(!store.marker_exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn clear_all_removes_artifacts() {
        let dir = tmpdir("clear");
        let store = CheckpointStore::new(&dir).unwrap();
        store.set_marker().unwrap();
        store.write_master(&sample(None)).unwrap();
        store.write_shard(&sample(Some(1))).unwrap();
        store.clear_all().unwrap();
        assert!(!store.marker_exists());
        assert!(store.read_master().unwrap().is_none());
        assert!(store.read_shard(1).unwrap().is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn overwrite_is_atomic_replacement() {
        let dir = tmpdir("atomic");
        let store = CheckpointStore::new(&dir).unwrap();
        let mut s = sample(None);
        store.write_master(&s).unwrap();
        s.count = 999;
        s.fields[0].1 = vec![9; 1000];
        store.write_master(&s).unwrap();
        let back = store.read_master().unwrap().unwrap();
        assert_eq!(back.count, 999);
        assert_eq!(back.fields[0].1.len(), 1000);
        fs::remove_dir_all(&dir).unwrap();
    }
}
