//! Snapshot support for arbitrary serde-serialisable state.
//!
//! Bulk numeric data uses the raw containers in `ppar_core::shared`; richer
//! application state (a GA population, an MD particle set, simulation
//! configuration) registers a [`SerdeCell`] instead, which snapshots through
//! the portable [`crate::codec`].

use std::sync::Arc;

use parking_lot::RwLock;
use serde::de::DeserializeOwned;
use serde::Serialize;

use ppar_core::ctx::Ctx;
use ppar_core::error::Result;
use ppar_core::state::StateCell;

use crate::codec;

/// A mutex-protected value of any serde type, checkpointable by name.
pub struct SerdeCell<T> {
    value: RwLock<T>,
}

impl<T> SerdeCell<T>
where
    T: Serialize + DeserializeOwned + Send + Sync,
{
    /// Wrap `value`.
    pub fn new(value: T) -> Self {
        SerdeCell {
            value: RwLock::new(value),
        }
    }

    /// Read access through a closure.
    pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        f(&self.value.read())
    }

    /// Write access through a closure.
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        f(&mut self.value.write())
    }

    /// Replace the value.
    pub fn set(&self, v: T) {
        *self.value.write() = v;
    }

    /// Clone the value out.
    pub fn get(&self) -> T
    where
        T: Clone,
    {
        self.value.read().clone()
    }
}

impl<T> StateCell for SerdeCell<T>
where
    T: Serialize + DeserializeOwned + Send + Sync,
{
    fn save_bytes(&self) -> Vec<u8> {
        codec::to_bytes(&*self.value.read()).expect("serde state must serialize")
    }

    fn load_bytes(&self, bytes: &[u8]) -> Result<()> {
        *self.value.write() = codec::from_bytes(bytes)?;
        Ok(())
    }

    fn byte_len(&self) -> usize {
        self.save_bytes().len()
    }

    fn write_state(&self, w: &mut dyn std::io::Write) -> Result<u64> {
        let bytes = codec::to_bytes(&*self.value.read())?;
        w.write_all(&bytes)?;
        Ok(bytes.len() as u64)
    }

    fn save_into(&self, out: &mut Vec<u8>) {
        codec::to_bytes_into(&*self.value.read(), out).expect("serde state must serialize")
    }

    fn known_byte_len(&self) -> Option<usize> {
        // A serde payload only learns its length by serializing. Returning
        // `None` makes the snapshot writer buffer this field once through
        // its reusable scratch instead of serializing twice (`byte_len` +
        // `write_state`).
        None
    }
}

/// Allocate a [`SerdeCell`] and register it under `name` (the serde
/// equivalent of [`Ctx::alloc_vec`]).
pub fn alloc_serde<T>(ctx: &Ctx, name: &str, value: T) -> Arc<SerdeCell<T>>
where
    T: Serialize + DeserializeOwned + Send + Sync + 'static,
{
    let cell = Arc::new(SerdeCell::new(value));
    ctx.register_state(name, cell.clone());
    cell
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Deserialize;

    #[derive(Serialize, Deserialize, Clone, PartialEq, Debug)]
    struct Population {
        genomes: Vec<Vec<f64>>,
        generation: u64,
        best: Option<f64>,
    }

    #[test]
    fn serde_cell_roundtrip() {
        let pop = Population {
            genomes: vec![vec![1.0, 2.0], vec![3.0]],
            generation: 17,
            best: Some(0.25),
        };
        let cell = SerdeCell::new(pop.clone());
        let bytes = cell.save_bytes();
        assert_eq!(bytes.len(), cell.byte_len());

        let other = SerdeCell::new(Population {
            genomes: vec![],
            generation: 0,
            best: None,
        });
        other.load_bytes(&bytes).unwrap();
        assert_eq!(other.get(), pop);
    }

    #[test]
    fn with_and_with_mut() {
        let cell = SerdeCell::new(vec![1u32, 2, 3]);
        assert_eq!(cell.with(|v| v.len()), 3);
        cell.with_mut(|v| v.push(4));
        assert_eq!(cell.get(), vec![1, 2, 3, 4]);
        cell.set(vec![]);
        assert!(cell.with(|v| v.is_empty()));
    }

    #[test]
    fn corrupt_bytes_rejected() {
        let cell = SerdeCell::new(42u64);
        assert!(cell.load_bytes(&[1, 2, 3]).is_err());
    }
}
