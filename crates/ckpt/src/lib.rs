//! # ppar-ckpt — pluggable application-level checkpointing
//!
//! Implements §IV.A of *Checkpoint and Run-Time Adaptation with Pluggable
//! Parallelisation* (Medeiros & Sobral, ICPP 2011): the programmer declares
//! `SafeData`, `SafePoints` and `IgnorableMethods` in the plan (next to, not
//! inside, the sequential base code), and this crate provides everything
//! else —
//!
//! * a portable binary snapshot format ([`codec`], [`store`]) with CRC-32
//!   integrity and atomic replacement;
//! * a pluggable byte **transport** ([`transport`]): the same streamed
//!   records travel to disk ([`CheckpointStore`]) or stay in process
//!   memory ([`MemTransport`] — the live-reshape hand-off and a disk-free
//!   lane for benches);
//! * dirty-chunk **incremental** snapshots ([`delta`]): delta records that
//!   persist only the bytes written since the previous snapshot;
//! * the safe-point clock and snapshot policy ([`hook::CheckpointModule`]);
//! * failure detection at start-up (run marker + snapshot ⇒ replay);
//! * replay-based restart: the application re-executes with ignorable
//!   methods skipped until the checkpointed safe-point count, then loads the
//!   saved data and continues — rebuilding the call stack entirely at
//!   application level;
//! * a sequential launcher ([`pcr::launch_seq`]) driving crash/restart
//!   cycles (the multi-mode launcher lives in `ppar-adapt`).
//!
//! Because master-collected checkpoint data is mode-independent, a snapshot
//! taken in any execution mode can restart in any other — the basis for
//! adaptation-by-restart (Fig. 6 of the paper).
//!
//! ## Incremental (dirty-chunk) checkpointing
//!
//! With `Plug::IncrementalCkpt { full_every }` installed, snapshot cost
//! scales with the data *touched* between safe points instead of the data
//! held: shared containers track writes in an 8 KiB-chunk bitmap
//! ([`ppar_core::shared::DIRTY_CHUNK_BYTES`]), and each checkpoint streams
//! only the dirty chunks as a *delta record* (`ckpt_master_delta_<seq>.bin`
//! / `ckpt_rank_<r>_delta_<seq>.bin`).
//!
//! * **Record format** — deltas carry their own magic (`"PPARDLT1"`) and an
//!   explicit format version ([`delta::DELTA_VERSION`]); readers reject
//!   unknown versions instead of misparsing. Each field is either a whole
//!   payload (containers without write tracking: `ValueCell`, serde cells)
//!   or a sparse `(offset, len)` chunk map plus the chunk bytes, with the
//!   same running CRC-32 and atomic temp-file/rename discipline as full
//!   snapshots. See [`delta`] for the byte layout.
//! * **Promotion policy** — the first snapshot of a run (and the first
//!   after any restore) is a full *base*; the next `full_every` snapshots
//!   are deltas `1..=full_every`; the snapshot after that is promoted to a
//!   fresh base and the superseded chain is garbage-collected. Deltas are
//!   tied to their base by the base's safe-point count, so a crash between
//!   promotion and GC leaves only *stale* deltas that the loader skips.
//! * **Restore** — `CheckpointStore::read_merged_master` /
//!   `read_merged_shard` fold base + chain (last writer wins per byte) into
//!   a state byte-identical to a full snapshot, and a restart replays to
//!   the *last delta's* safe point. Merged data stays mode-independent:
//!   incremental snapshots restart in any execution mode, in any aggregate
//!   size (master-collect), exactly like full ones.
//! * **Distributed gathers** — in master-collect mode, once a base exists
//!   the pre-snapshot gather ships only each element's *dirty ranges*
//!   (clamped to its owned block) to the root, whose write tracking then
//!   reflects exactly the aggregate's touched chunks — so partitioned-field
//!   deltas scale with the dirty fraction in every mode. Elements that do
//!   not persist mirror the chain bookkeeping
//!   ([`ppar_core::ctx::CkptHook::note_peer_snapshot`]) to keep the
//!   full-vs-delta decision aggregate-consistent.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cas;
pub mod codec;
pub mod crc;
pub mod delta;
pub mod digest;
pub mod hook;
pub mod pcr;
pub mod serde_cell;
pub mod store;
pub mod transport;

pub use cas::{CasConfig, CasStore, ChunkRef, GcStats, Manifest, PutStats};
pub use crc::TrailingCrc;
pub use delta::{DeltaMeta, DeltaPayload, DeltaSnapshot};
pub use digest::ChunkDigest;
pub use hook::{CheckpointModule, CkptStats};
pub use pcr::{launch_seq, AppStatus, RunReport};
pub use serde_cell::{alloc_serde, SerdeCell};
pub use store::{CheckpointStore, Snapshot, SnapshotView};
pub use transport::{CkptTransport, DedupRecordSink, MemTransport, RawRecordKind, RawRecordSink};
