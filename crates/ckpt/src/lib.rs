//! # ppar-ckpt — pluggable application-level checkpointing
//!
//! Implements §IV.A of *Checkpoint and Run-Time Adaptation with Pluggable
//! Parallelisation* (Medeiros & Sobral, ICPP 2011): the programmer declares
//! `SafeData`, `SafePoints` and `IgnorableMethods` in the plan (next to, not
//! inside, the sequential base code), and this crate provides everything
//! else —
//!
//! * a portable binary snapshot format ([`codec`], [`store`]) with CRC-32
//!   integrity and atomic replacement;
//! * the safe-point clock and snapshot policy ([`hook::CheckpointModule`]);
//! * failure detection at start-up (run marker + snapshot ⇒ replay);
//! * replay-based restart: the application re-executes with ignorable
//!   methods skipped until the checkpointed safe-point count, then loads the
//!   saved data and continues — rebuilding the call stack entirely at
//!   application level;
//! * a sequential launcher ([`pcr::launch_seq`]) driving crash/restart
//!   cycles (the multi-mode launcher lives in `ppar-adapt`).
//!
//! Because master-collected checkpoint data is mode-independent, a snapshot
//! taken in any execution mode can restart in any other — the basis for
//! adaptation-by-restart (Fig. 6 of the paper).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod codec;
pub mod crc;
pub mod hook;
pub mod pcr;
pub mod serde_cell;
pub mod store;

pub use hook::{CheckpointModule, CkptStats};
pub use pcr::{launch_seq, AppStatus, RunReport};
pub use serde_cell::{alloc_serde, SerdeCell};
pub use store::{CheckpointStore, Snapshot};
