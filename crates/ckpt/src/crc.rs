//! CRC-32 (IEEE 802.3) for checkpoint integrity.
//!
//! Checkpoints live on remote Grid storage elements (§I); a truncated or
//! bit-rotted snapshot must be detected *before* it is poured into live
//! application state. Every persisted artefact carries a trailing CRC-32
//! computed with this table-driven implementation (polynomial 0xEDB88320,
//! reflected, init/final XOR 0xFFFFFFFF — the zlib/PNG convention).

/// Lazily built 256-entry lookup table.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *entry = c;
        }
        t
    })
}

/// Streaming CRC-32 state.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// Fresh hasher.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Absorb bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        let t = table();
        for &b in bytes {
            self.state = t[((self.state ^ b as u32) & 0xFF) as usize] ^ (self.state >> 8);
        }
    }

    /// Final digest.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard test vectors for CRC-32/IEEE.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let mut c = Crc32::new();
        for chunk in data.chunks(7) {
            c.update(chunk);
        }
        assert_eq!(c.finish(), crc32(&data));
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = vec![0xA5u8; 1024];
        let original = crc32(&data);
        data[512] ^= 0x10;
        assert_ne!(crc32(&data), original);
    }
}
