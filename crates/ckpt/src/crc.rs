//! CRC-32 (IEEE 802.3) for checkpoint integrity.
//!
//! Checkpoints live on remote Grid storage elements (§I); a truncated or
//! bit-rotted snapshot must be detected *before* it is poured into live
//! application state. Every persisted artefact carries a trailing CRC-32
//! (polynomial 0xEDB88320, reflected, init/final XOR 0xFFFFFFFF — the
//! zlib/PNG convention).
//!
//! Two implementations sit behind one streaming state:
//!
//! * a **carry-less-multiplication fold** (x86-64 `PCLMULQDQ`, detected at
//!   run time) that processes 64 bytes per step — an order of magnitude
//!   faster than table lookup, which matters now that a single running CRC
//!   pass is the *only* integrity work on the streamed checkpoint path
//!   (wire verification and store format share it);
//! * a portable **slice-by-8** fallback: eight derived 256-entry tables let
//!   the inner loop fold eight input bytes per step instead of one.
//!
//! Both produce identical digests for identical input — the fast path is a
//! pure speedup, never a format change.

/// Lazily built slice-by-8 table set. `TABLES[0]` is the classic byte-wise
/// table; `TABLES[k][b] == crc_of(b << (8 * k))`, so eight lookups combine
/// into one 64-bit step.
fn tables() -> &'static [[u32; 256]; 8] {
    use std::sync::OnceLock;
    static TABLES: OnceLock<[[u32; 256]; 8]> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = [[0u32; 256]; 8];
        for (i, entry) in t[0].iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        for k in 1..8 {
            for i in 0..256usize {
                let prev = t[k - 1][i];
                t[k][i] = (prev >> 8) ^ t[0][(prev & 0xFF) as usize];
            }
        }
        t
    })
}

/// Portable slice-by-8 absorb: folds `bytes` into the working state.
fn update_slice8(state: u32, bytes: &[u8]) -> u32 {
    let t = tables();
    let mut crc = state;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes(chunk[0..4].try_into().unwrap()) ^ crc;
        crc = t[7][(lo & 0xFF) as usize]
            ^ t[6][((lo >> 8) & 0xFF) as usize]
            ^ t[5][((lo >> 16) & 0xFF) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][chunk[4] as usize]
            ^ t[2][chunk[5] as usize]
            ^ t[1][chunk[6] as usize]
            ^ t[0][chunk[7] as usize];
    }
    for &b in chunks.remainder() {
        crc = t[0][((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc
}

/// The `PCLMULQDQ` folding kernel (Intel's "Fast CRC Computation Using
/// PCLMULQDQ Instruction" technique, in the bit-reflected domain). Four
/// 128-bit accumulators fold 64 input bytes per iteration; the tail is
/// folded 16 bytes at a time and Barrett-reduced back to 32 bits.
#[cfg(target_arch = "x86_64")]
mod pclmul {
    use std::arch::x86_64::*;

    /// Run-time gate: the kernel needs `PCLMULQDQ` + SSE4.1.
    pub fn supported() -> bool {
        use std::sync::OnceLock;
        static OK: OnceLock<bool> = OnceLock::new();
        *OK.get_or_init(|| {
            std::arch::is_x86_feature_detected!("pclmulqdq")
                && std::arch::is_x86_feature_detected!("sse4.1")
        })
    }

    /// Fold `data` into the working CRC state.
    ///
    /// # Safety
    ///
    /// Caller must ensure [`supported`] returned `true`, `data.len() >= 64`
    /// and `data.len() % 16 == 0` (the dispatcher in
    /// [`Crc32::update`](super::Crc32::update) guarantees all three).
    #[target_feature(enable = "pclmulqdq", enable = "sse4.1")]
    pub unsafe fn fold(crc: u32, data: &[u8]) -> u32 {
        debug_assert!(data.len() >= 64 && data.len().is_multiple_of(16));
        // Bit-reflected domain fold constants for P = 0xEDB88320: the pair
        // for a D-bit fold distance is (x^(D+32) mod P, x^(D-32) mod P),
        // bit-reflected. k7k8 folds 1024 bits (the eight-lane stride), k1k2
        // folds 512 (eight lanes → four), k3k4 folds 128 (lane merge and
        // the 16-byte tail), k5 folds 64; poly_mu is the Barrett pair
        // (P', µ).
        let k1k2 = _mm_set_epi64x(0x01c6e41596, 0x0154442bd4);
        let k3k4 = _mm_set_epi64x(0x00ccaa009e, 0x01751997d0);
        let k7k8 = _mm_set_epi64x(0x014a7fe880, 0x01e88ef372);
        let k5 = _mm_set_epi64x(0, 0x0163cd6124);
        let poly_mu = _mm_set_epi64x(0x01f7011641, 0x01db710641);

        macro_rules! fold_lane {
            ($x:expr, $k:expr, $y:expr) => {
                _mm_xor_si128(
                    _mm_xor_si128(
                        _mm_clmulepi64_si128($x, $k, 0x00),
                        _mm_clmulepi64_si128($x, $k, 0x11),
                    ),
                    $y,
                )
            };
        }
        macro_rules! load {
            ($p:expr) => {
                _mm_loadu_si128($p as *const __m128i)
            };
        }

        let mut buf = data.as_ptr();
        let mut len = data.len();

        let (mut x1, mut x2, mut x3, mut x4);
        if len >= 128 {
            // Eight lanes, 128 bytes per iteration: enough independent
            // carry-less-multiply chains to hide the instruction latency.
            x1 = _mm_xor_si128(load!(buf), _mm_cvtsi32_si128(crc as i32));
            x2 = load!(buf.add(0x10));
            x3 = load!(buf.add(0x20));
            x4 = load!(buf.add(0x30));
            let mut x5 = load!(buf.add(0x40));
            let mut x6 = load!(buf.add(0x50));
            let mut x7 = load!(buf.add(0x60));
            let mut x8 = load!(buf.add(0x70));
            buf = buf.add(128);
            len -= 128;
            while len >= 128 {
                x1 = fold_lane!(x1, k7k8, load!(buf));
                x2 = fold_lane!(x2, k7k8, load!(buf.add(0x10)));
                x3 = fold_lane!(x3, k7k8, load!(buf.add(0x20)));
                x4 = fold_lane!(x4, k7k8, load!(buf.add(0x30)));
                x5 = fold_lane!(x5, k7k8, load!(buf.add(0x40)));
                x6 = fold_lane!(x6, k7k8, load!(buf.add(0x50)));
                x7 = fold_lane!(x7, k7k8, load!(buf.add(0x60)));
                x8 = fold_lane!(x8, k7k8, load!(buf.add(0x70)));
                buf = buf.add(128);
                len -= 128;
            }
            // Eight lanes → four (a 512-bit fold into the later half).
            x1 = fold_lane!(x1, k1k2, x5);
            x2 = fold_lane!(x2, k1k2, x6);
            x3 = fold_lane!(x3, k1k2, x7);
            x4 = fold_lane!(x4, k1k2, x8);
        } else {
            // Four lanes seeded from the first 64 bytes.
            x1 = _mm_xor_si128(load!(buf), _mm_cvtsi32_si128(crc as i32));
            x2 = load!(buf.add(0x10));
            x3 = load!(buf.add(0x20));
            x4 = load!(buf.add(0x30));
            buf = buf.add(64);
            len -= 64;
        }

        // Fold the four lanes into one.
        let mut x5 = _mm_clmulepi64_si128(x1, k3k4, 0x00);
        x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
        x1 = _mm_xor_si128(_mm_xor_si128(x1, x2), x5);
        x5 = _mm_clmulepi64_si128(x1, k3k4, 0x00);
        x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
        x1 = _mm_xor_si128(_mm_xor_si128(x1, x3), x5);
        x5 = _mm_clmulepi64_si128(x1, k3k4, 0x00);
        x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
        x1 = _mm_xor_si128(_mm_xor_si128(x1, x4), x5);

        // Serial fold of any remaining 16-byte blocks.
        while len >= 16 {
            let y = _mm_loadu_si128(buf as *const __m128i);
            x5 = _mm_clmulepi64_si128(x1, k3k4, 0x00);
            x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
            x1 = _mm_xor_si128(_mm_xor_si128(x1, y), x5);
            buf = buf.add(16);
            len -= 16;
        }

        // 128 → 64 bits.
        let mask32 = _mm_setr_epi32(-1, 0, -1, 0);
        let x2 = _mm_clmulepi64_si128(x1, k3k4, 0x10);
        x1 = _mm_srli_si128(x1, 8);
        x1 = _mm_xor_si128(x1, x2);
        let x2 = _mm_srli_si128(x1, 4);
        x1 = _mm_and_si128(x1, mask32);
        x1 = _mm_clmulepi64_si128(x1, k5, 0x00);
        x1 = _mm_xor_si128(x1, x2);

        // Barrett reduce 64 → 32 bits.
        let mut x2 = _mm_and_si128(x1, mask32);
        x2 = _mm_clmulepi64_si128(x2, poly_mu, 0x10);
        x2 = _mm_and_si128(x2, mask32);
        x2 = _mm_clmulepi64_si128(x2, poly_mu, 0x00);
        x1 = _mm_xor_si128(x1, x2);
        _mm_extract_epi32(x1, 1) as u32
    }
}

/// Streaming CRC-32 state.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// Fresh hasher.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Absorb bytes (`PCLMULQDQ` fold where available, slice-by-8 tail and
    /// fallback).
    pub fn update(&mut self, bytes: &[u8]) {
        let mut bytes = bytes;
        #[cfg(target_arch = "x86_64")]
        if bytes.len() >= 64 && pclmul::supported() {
            let take = bytes.len() & !15;
            // SAFETY: feature support checked, length ≥ 64 and 16-aligned.
            self.state = unsafe { pclmul::fold(self.state, &bytes[..take]) };
            bytes = &bytes[take..];
        }
        self.state = update_slice8(self.state, bytes);
    }

    /// Final digest.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

/// Running CRC over a byte stream whose *last four bytes* are the stored
/// little-endian CRC-32 of everything before them — the layout of every
/// checksummed snapshot/delta record.
///
/// The stream arrives in arbitrary chunks and its total length is unknown
/// until it ends, so the tracker holds the most recent four bytes back from
/// the digest; whatever is held back when the stream ends *is* the stored
/// trailer. This is what lets a streamed checkpoint install verify the
/// record with a single pass, as the chunks fly by, with no re-read.
#[derive(Debug, Clone, Default)]
pub struct TrailingCrc {
    crc: Crc32,
    tail: [u8; 4],
    tail_len: usize,
    total: u64,
}

impl TrailingCrc {
    /// Fresh tracker.
    pub fn new() -> Self {
        TrailingCrc {
            crc: Crc32::new(),
            tail: [0; 4],
            tail_len: 0,
            total: 0,
        }
    }

    /// Absorb the next chunk of the stream.
    pub fn update(&mut self, chunk: &[u8]) {
        self.total += chunk.len() as u64;
        if chunk.len() >= 4 {
            // The held-back bytes are now known to precede the trailer.
            self.crc.update(&self.tail[..self.tail_len]);
            let keep = chunk.len() - 4;
            self.crc.update(&chunk[..keep]);
            self.tail.copy_from_slice(&chunk[keep..]);
            self.tail_len = 4;
        } else {
            let mut pending = [0u8; 8];
            pending[..self.tail_len].copy_from_slice(&self.tail[..self.tail_len]);
            pending[self.tail_len..self.tail_len + chunk.len()].copy_from_slice(chunk);
            let len = self.tail_len + chunk.len();
            let keep = len.min(4);
            self.crc.update(&pending[..len - keep]);
            self.tail[..keep].copy_from_slice(&pending[len - keep..len]);
            self.tail_len = keep;
        }
    }

    /// Total bytes absorbed so far (body + trailer).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Consume the tracker: `(total_len, stored_crc, computed_crc)`. The
    /// record is intact iff the two CRCs match. `None` if the stream was
    /// shorter than a trailer.
    pub fn finish(self) -> Option<(u64, u32, u32)> {
        if self.tail_len < 4 {
            return None;
        }
        let stored = u32::from_le_bytes(self.tail);
        Some((self.total, stored, self.crc.finish()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference byte-at-a-time implementation (the pre-slice-by-8 loop).
    fn crc32_bytewise(bytes: &[u8]) -> u32 {
        let t = tables();
        let mut crc = 0xFFFF_FFFFu32;
        for &b in bytes {
            crc = t[0][((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
        }
        crc ^ 0xFFFF_FFFF
    }

    #[test]
    fn known_vectors() {
        // Standard test vectors for CRC-32/IEEE.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let mut c = Crc32::new();
        for chunk in data.chunks(7) {
            c.update(chunk);
        }
        assert_eq!(c.finish(), crc32(&data));
    }

    #[test]
    fn dispatch_matches_bytewise_at_all_lengths() {
        // Every length through the 64-byte SIMD threshold, every tail
        // residue class, plus sizes that exercise the parallel fold loop —
        // whichever implementation the dispatcher picks, the digest must
        // equal the byte-wise reference.
        let data: Vec<u8> = (0..9000u32).map(|i| (i * 31 + 7) as u8).collect();
        for len in (0..200).chain([255, 256, 1023, 4096, 8999]) {
            assert_eq!(
                crc32(&data[..len]),
                crc32_bytewise(&data[..len]),
                "len {len}"
            );
        }
        let mut c = Crc32::new();
        c.update(&data[..13]);
        c.update(&data[13..]);
        assert_eq!(c.finish(), crc32_bytewise(&data));
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn streaming_across_simd_threshold_matches() {
        // Split points straddling 64 bytes hand the fold kernel partial
        // state; the result must not depend on chunking.
        let data: Vec<u8> = (0..4096u32)
            .map(|i| (i.wrapping_mul(2654435761)) as u8)
            .collect();
        let expect = crc32_bytewise(&data);
        for split in [1, 15, 16, 63, 64, 65, 100, 1000, 4095] {
            let mut c = Crc32::new();
            c.update(&data[..split]);
            c.update(&data[split..]);
            assert_eq!(c.finish(), expect, "split {split}");
        }
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = vec![0xA5u8; 1024];
        let original = crc32(&data);
        data[512] ^= 0x10;
        assert_ne!(crc32(&data), original);
    }

    #[test]
    fn trailing_crc_accepts_a_checksummed_record() {
        let mut record: Vec<u8> = (0..1500u32).map(|i| (i * 13) as u8).collect();
        let crc = crc32(&record);
        record.extend_from_slice(&crc.to_le_bytes());
        // Feed in awkward chunk sizes, including ones smaller than the
        // trailer itself.
        for chunk_len in [1usize, 2, 3, 4, 5, 7, 64, 333, 1504] {
            let mut t = TrailingCrc::new();
            for chunk in record.chunks(chunk_len) {
                t.update(chunk);
            }
            assert_eq!(t.total(), record.len() as u64);
            let (total, stored, computed) = t.finish().unwrap();
            assert_eq!(total, record.len() as u64);
            assert_eq!(stored, computed, "chunk_len {chunk_len}");
            assert_eq!(stored, crc);
        }
    }

    #[test]
    fn trailing_crc_rejects_corruption_anywhere() {
        let mut record: Vec<u8> = (0..600u32).map(|i| (i * 7) as u8).collect();
        let crc = crc32(&record);
        record.extend_from_slice(&crc.to_le_bytes());
        for pos in [0, 1, 300, 599, 600, 603] {
            let mut corrupt = record.clone();
            corrupt[pos] ^= 0x20;
            let mut t = TrailingCrc::new();
            for chunk in corrupt.chunks(100) {
                t.update(chunk);
            }
            let (_, stored, computed) = t.finish().unwrap();
            assert_ne!(stored, computed, "byte {pos}");
        }
    }

    #[test]
    fn trailing_crc_short_stream_has_no_trailer() {
        let mut t = TrailingCrc::new();
        t.update(&[1, 2, 3]);
        assert!(t.finish().is_none());
        assert!(TrailingCrc::new().finish().is_none());
    }

    proptest::proptest! {
        /// The SIMD/portable dispatcher and any chunking produce the same
        /// digest as the byte-wise reference.
        #[test]
        fn prop_chunked_dispatch_matches_reference(
            data in proptest::collection::vec(proptest::prelude::any::<u8>(), 0..2048),
            chunk in 1usize..512,
        ) {
            let mut c = Crc32::new();
            for part in data.chunks(chunk) {
                c.update(part);
            }
            proptest::prop_assert_eq!(c.finish(), crc32_bytewise(&data));
        }
    }
}
