//! CRC-32 (IEEE 802.3) for checkpoint integrity.
//!
//! Checkpoints live on remote Grid storage elements (§I); a truncated or
//! bit-rotted snapshot must be detected *before* it is poured into live
//! application state. Every persisted artefact carries a trailing CRC-32
//! (polynomial 0xEDB88320, reflected, init/final XOR 0xFFFFFFFF — the
//! zlib/PNG convention).
//!
//! The implementation is slice-by-8: eight derived 256-entry tables let the
//! inner loop fold eight input bytes per step instead of one, which matters
//! now that the snapshot writer computes the checksum *while streaming* the
//! payload (the CRC is on the critical path of every checkpoint, Fig. 4).

/// Lazily built slice-by-8 table set. `TABLES[0]` is the classic byte-wise
/// table; `TABLES[k][b] == crc_of(b << (8 * k))`, so eight lookups combine
/// into one 64-bit step.
fn tables() -> &'static [[u32; 256]; 8] {
    use std::sync::OnceLock;
    static TABLES: OnceLock<[[u32; 256]; 8]> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = [[0u32; 256]; 8];
        for (i, entry) in t[0].iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        for k in 1..8 {
            for i in 0..256usize {
                let prev = t[k - 1][i];
                t[k][i] = (prev >> 8) ^ t[0][(prev & 0xFF) as usize];
            }
        }
        t
    })
}

/// Streaming CRC-32 state.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// Fresh hasher.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Absorb bytes (slice-by-8 main loop, byte-wise tail).
    pub fn update(&mut self, bytes: &[u8]) {
        let t = tables();
        let mut crc = self.state;
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let lo = u32::from_le_bytes(chunk[0..4].try_into().unwrap()) ^ crc;
            crc = t[7][(lo & 0xFF) as usize]
                ^ t[6][((lo >> 8) & 0xFF) as usize]
                ^ t[5][((lo >> 16) & 0xFF) as usize]
                ^ t[4][(lo >> 24) as usize]
                ^ t[3][chunk[4] as usize]
                ^ t[2][chunk[5] as usize]
                ^ t[1][chunk[6] as usize]
                ^ t[0][chunk[7] as usize];
        }
        for &b in chunks.remainder() {
            crc = t[0][((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
        }
        self.state = crc;
    }

    /// Final digest.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference byte-at-a-time implementation (the pre-slice-by-8 loop).
    fn crc32_bytewise(bytes: &[u8]) -> u32 {
        let t = tables();
        let mut crc = 0xFFFF_FFFFu32;
        for &b in bytes {
            crc = t[0][((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
        }
        crc ^ 0xFFFF_FFFF
    }

    #[test]
    fn known_vectors() {
        // Standard test vectors for CRC-32/IEEE.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let mut c = Crc32::new();
        for chunk in data.chunks(7) {
            c.update(chunk);
        }
        assert_eq!(c.finish(), crc32(&data));
    }

    #[test]
    fn slice_by_8_matches_bytewise_at_all_lengths() {
        // Cover every tail length (0..8 remainder) and unaligned splits.
        let data: Vec<u8> = (0..1024u32).map(|i| (i * 31 + 7) as u8).collect();
        for len in 0..64 {
            assert_eq!(
                crc32(&data[..len]),
                crc32_bytewise(&data[..len]),
                "len {len}"
            );
        }
        assert_eq!(crc32(&data), crc32_bytewise(&data));
        let mut c = Crc32::new();
        c.update(&data[..13]);
        c.update(&data[13..]);
        assert_eq!(c.finish(), crc32_bytewise(&data));
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = vec![0xA5u8; 1024];
        let original = crc32(&data);
        data[512] ^= 0x10;
        assert_ne!(crc32(&data), original);
    }
}
