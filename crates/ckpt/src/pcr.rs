//! The pcr driver: checkpointed sequential runs with crash/restart cycles.
//!
//! This is the sequential-mode slice of the paper's Fig. 2 protocol. The
//! full multi-mode launcher (which can also restart a run in a *different*
//! execution mode, and drive run-time adaptation) lives in `ppar-adapt`;
//! benches and tests that only need sequential checkpoint/restart semantics
//! use this lighter entry point.

use std::path::Path;
use std::sync::Arc;

use ppar_core::ctx::{Ctx, RunShared, SeqEngine};
use ppar_core::error::Result;
use ppar_core::plan::Plan;
use ppar_core::state::Registry;

use crate::hook::{CheckpointModule, CkptStats};

/// How the application body ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppStatus {
    /// Ran to completion: the run marker is cleared.
    Completed,
    /// Simulated crash (resource failure): the marker is left in place so the
    /// next launch replays from the last snapshot — exactly what a real
    /// process death would leave behind.
    Crashed,
}

/// Outcome of one launch.
#[derive(Debug)]
pub struct RunReport<R> {
    /// The application's return value.
    pub result: R,
    /// Completion status reported by the application body.
    pub status: AppStatus,
    /// Whether this launch started by replaying a previous failure.
    pub replayed: bool,
    /// Checkpoint cost counters.
    pub stats: CkptStats,
}

/// Launch `app` sequentially under `plan` with checkpointing in `dir`.
///
/// Start-up follows the paper's pcr protocol: if the previous launch left a
/// run marker *and* a snapshot, replay mode is armed and the application
/// re-executes with ignorable methods skipped until the checkpointed safe
/// point, where data is loaded and execution continues live.
pub fn launch_seq<R>(
    dir: impl AsRef<Path>,
    plan: Plan,
    app: impl FnOnce(&Ctx) -> (AppStatus, R),
) -> Result<RunReport<R>> {
    let plan = Arc::new(plan);
    let module = CheckpointModule::create(dir, &plan)?;
    let replayed = module.will_replay();
    let shared = RunShared::new(
        plan,
        Arc::new(Registry::new()),
        Arc::new(SeqEngine),
        Some(module.clone() as Arc<dyn ppar_core::ctx::CkptHook>),
        None,
    );
    let ctx = Ctx::new_root(shared);
    let (status, result) = app(&ctx);
    if status == AppStatus::Completed {
        ctx.finish();
    }
    Ok(RunReport {
        result,
        status,
        replayed,
        stats: module.stats(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppar_core::plan::{Plug, PointSet};
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ppar_pcr_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn plan(every: usize) -> Plan {
        Plan::new()
            .plug(Plug::SafeData {
                field: "acc".into(),
            })
            .plug(Plug::SafePoints {
                points: PointSet::All,
                every,
            })
            .plug(Plug::Ignorable {
                method: "work".into(),
            })
    }

    /// A tiny iterative app: accumulates i into acc[0] for 20 iterations,
    /// optionally crashing after `fail_after` iterations.
    fn app(fail_after: Option<usize>) -> impl FnOnce(&Ctx) -> (AppStatus, f64) {
        move |ctx| {
            let acc = ctx.alloc_vec("acc", 1, 0.0f64);
            for i in 1..=20usize {
                ctx.call("work", |_| {
                    acc.set(0, acc.get(0) + i as f64);
                });
                ctx.point("iter");
                if Some(i) == fail_after {
                    return (AppStatus::Crashed, acc.get(0));
                }
            }
            (AppStatus::Completed, acc.get(0))
        }
    }

    #[test]
    fn crash_restart_produces_sequential_result() {
        let dir = tmpdir("crc");
        let expected: f64 = (1..=20).sum::<usize>() as f64;

        // Run 1: snapshot every 5 points, crash after iteration 13.
        let r1 = launch_seq(&dir, plan(5), app(Some(13))).unwrap();
        assert_eq!(r1.status, AppStatus::Crashed);
        assert!(!r1.replayed);
        assert_eq!(r1.stats.snapshots_taken, 2); // at points 5 and 10

        // Run 2: replays to point 10 (ignoring `work`), then finishes live.
        let r2 = launch_seq(&dir, plan(5), app(None)).unwrap();
        assert_eq!(r2.status, AppStatus::Completed);
        assert!(r2.replayed);
        assert_eq!(
            r2.result, expected,
            "restart must produce the uncrashed result"
        );
        assert_eq!(r2.stats.replayed_points, 10);

        // Run 3: fresh (marker cleared by run 2).
        let r3 = launch_seq(&dir, plan(5), app(None)).unwrap();
        assert!(!r3.replayed);
        assert_eq!(r3.result, expected);

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn double_crash_replays_twice() {
        let dir = tmpdir("double");
        let expected: f64 = (1..=20).sum::<usize>() as f64;

        launch_seq(&dir, plan(4), app(Some(6))).unwrap(); // ckpt at 4, crash at 6
        let r2 = launch_seq(&dir, plan(4), app(Some(10))).unwrap(); // replay->4, ckpt at 8, crash at 10
        assert!(r2.replayed);
        let r3 = launch_seq(&dir, plan(4), app(None)).unwrap(); // replay->8, finish
        assert!(r3.replayed);
        assert_eq!(r3.result, expected);

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_with_no_snapshot_restarts_from_scratch() {
        let dir = tmpdir("noshot");
        let expected: f64 = (1..=20).sum::<usize>() as f64;

        let r1 = launch_seq(&dir, plan(100), app(Some(3))).unwrap();
        assert_eq!(r1.stats.snapshots_taken, 0);

        let r2 = launch_seq(&dir, plan(100), app(None)).unwrap();
        assert!(!r2.replayed, "nothing to replay to");
        assert_eq!(r2.result, expected);

        std::fs::remove_dir_all(&dir).unwrap();
    }
}
