//! Delta snapshot records: the incremental half of the checkpoint format.
//!
//! A *delta* persists only the bytes written since the previous snapshot
//! (full or delta), as reported by the containers' chunked dirty tracking
//! ([`ppar_core::state::StateCell::dirty_ranges`]). A checkpoint directory
//! in incremental mode therefore holds one *base* full snapshot plus a
//! numbered *delta chain*; restore folds the chain onto the base
//! (last-writer-wins per byte) and yields a [`Snapshot`] byte-identical to
//! a full snapshot of the same state.
//!
//! File format (all integers little-endian; strings and payloads are
//! `u64`-length-prefixed as in the full-snapshot format):
//!
//! ```text
//! magic      8B  "PPARDLT1"
//! version    u32  format version (currently 1; readers reject others)
//! mode       len-prefixed UTF-8 tag
//! count      u64  safe points executed when this delta was taken
//! base_count u64  safe-point count of the chain's base full snapshot
//! seq        u32  1-based position in the delta chain
//! rank       u32  owning element, 0xFFFF_FFFF for a master delta
//! nranks     u32  aggregate size at snapshot time
//! nfields    u32
//! fields     nfields × {
//!   name     len-prefixed UTF-8
//!   kind     u8   0 = full payload, 1 = sparse (dirty ranges)
//!   kind 0:  payload  len-prefixed bytes
//!   kind 1:  full_len u64   total payload length of the field (validation)
//!            nranges  u32
//!            ranges   nranges × { off u64, len u64 }   (into the payload)
//!            bytes    concatenated range payloads, in listed order
//! }
//! crc        u32  CRC-32 of every preceding byte
//! ```
//!
//! `base_count` ties a delta to one specific base: a crash between "write
//! new full snapshot" and "garbage-collect old deltas" leaves stale deltas
//! whose `base_count` no longer matches — the merge step ignores them
//! instead of corrupting the restore. Sparse offsets are relative to the
//! *field payload* (the full field for master snapshots, the extracted
//! owned block for shard snapshots), which keeps the merge a plain
//! `payload[off..off+len] = bytes` in both strategies.

use ppar_core::error::{PparError, Result};

use crate::crc::crc32;
use crate::store::{Reader, Snapshot, MASTER_RANK};

/// Magic prefix of delta snapshot files.
pub const DELTA_MAGIC: &[u8; 8] = b"PPARDLT1";
/// Current delta format version; readers reject anything else.
pub const DELTA_VERSION: u32 = 1;

/// Header of one delta record (everything except the field payloads).
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaMeta {
    /// Execution-mode tag at snapshot time.
    pub mode_tag: String,
    /// Safe points executed when the delta was taken.
    pub count: u64,
    /// Safe-point count of the base full snapshot this chain extends.
    pub base_count: u64,
    /// 1-based position in the delta chain.
    pub seq: u32,
    /// Owning element for shard deltas; `None` for master deltas.
    pub rank: Option<u32>,
    /// Aggregate size at snapshot time.
    pub nranks: u32,
}

/// One field's content inside a delta record.
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaPayload {
    /// The whole field (containers without write tracking).
    Full(Vec<u8>),
    /// Only the touched byte ranges of a `full_len`-byte field payload.
    Sparse {
        /// Total length the merged field payload must have.
        full_len: u64,
        /// `(offset, bytes)` patches, applied in order (last writer wins).
        ranges: Vec<(u64, Vec<u8>)>,
    },
}

impl DeltaPayload {
    /// Bytes this payload contributes to the delta file (the savings signal:
    /// compare against the field's full length).
    pub fn payload_bytes(&self) -> usize {
        match self {
            DeltaPayload::Full(b) => b.len(),
            DeltaPayload::Sparse { ranges, .. } => ranges.iter().map(|(_, b)| b.len()).sum(),
        }
    }
}

/// A decoded delta record.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaSnapshot {
    /// Header.
    pub meta: DeltaMeta,
    /// Field name → delta payload, in `SafeData` declaration order.
    pub fields: Vec<(String, DeltaPayload)>,
}

impl DeltaMeta {
    /// Integrity-check a delta file and decode only its header — no field
    /// payloads are materialized. Lets the restart-target computation walk
    /// a chain at CRC + header cost instead of performing the full merge
    /// twice (once for the count, once for the actual load).
    pub fn decode(bytes: &[u8]) -> Result<DeltaMeta> {
        let (body, _) = DeltaSnapshot::check_crc(bytes)?;
        let mut r = Reader { buf: body, pos: 0 };
        DeltaSnapshot::decode_header(&mut r)
    }

    /// Header-only decode of an in-memory delta record (no CRC
    /// re-verification; see [`crate::store::Snapshot`]'s trusted decode).
    pub(crate) fn decode_trusted(bytes: &[u8]) -> Result<DeltaMeta> {
        if bytes.len() < DELTA_MAGIC.len() + 4 {
            return Err(PparError::CorruptCheckpoint(
                "delta record too short".into(),
            ));
        }
        let mut r = Reader {
            buf: &bytes[..bytes.len() - 4],
            pos: 0,
        };
        DeltaSnapshot::decode_header(&mut r)
    }
}

impl DeltaSnapshot {
    fn check_crc(bytes: &[u8]) -> Result<(&[u8], u32)> {
        if bytes.len() < DELTA_MAGIC.len() + 4 {
            return Err(PparError::CorruptCheckpoint("delta file too short".into()));
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let stored_crc = u32::from_le_bytes(crc_bytes.try_into().unwrap());
        if crc32(body) != stored_crc {
            return Err(PparError::CorruptCheckpoint(format!(
                "delta CRC mismatch: stored {stored_crc:#010x}, computed {:#010x}",
                crc32(body)
            )));
        }
        Ok((body, stored_crc))
    }

    fn decode_header(r: &mut Reader<'_>) -> Result<DeltaMeta> {
        let magic = r.take(8)?;
        if magic != DELTA_MAGIC {
            return Err(PparError::FormatMismatch {
                expected: String::from_utf8_lossy(DELTA_MAGIC).into_owned(),
                found: String::from_utf8_lossy(magic).into_owned(),
            });
        }
        let version = r.take_u32()?;
        if version != DELTA_VERSION {
            return Err(PparError::FormatMismatch {
                expected: format!("delta format v{DELTA_VERSION}"),
                found: format!("delta format v{version}"),
            });
        }
        let mode_tag = r.take_str()?;
        let count = r.take_u64()?;
        let base_count = r.take_u64()?;
        let seq = r.take_u32()?;
        let rank_raw = r.take_u32()?;
        let nranks = r.take_u32()?;
        Ok(DeltaMeta {
            mode_tag,
            count,
            base_count,
            seq,
            rank: (rank_raw != MASTER_RANK).then_some(rank_raw),
            nranks,
        })
    }

    /// Decode and integrity-check one delta file.
    pub fn decode(bytes: &[u8]) -> Result<DeltaSnapshot> {
        let (body, _) = DeltaSnapshot::check_crc(bytes)?;
        DeltaSnapshot::decode_body(body)
    }

    /// Decode a delta record held in process memory (see
    /// [`crate::store::Snapshot`]'s trusted decode): structural validation
    /// only, no CRC re-verification.
    pub(crate) fn decode_trusted(bytes: &[u8]) -> Result<DeltaSnapshot> {
        if bytes.len() < DELTA_MAGIC.len() + 4 {
            return Err(PparError::CorruptCheckpoint(
                "delta record too short".into(),
            ));
        }
        DeltaSnapshot::decode_body(&bytes[..bytes.len() - 4])
    }

    fn decode_body(body: &[u8]) -> Result<DeltaSnapshot> {
        let mut r = Reader { buf: body, pos: 0 };
        let meta = DeltaSnapshot::decode_header(&mut r)?;
        let nfields = r.take_u32()?;
        let mut fields = Vec::with_capacity(nfields as usize);
        for _ in 0..nfields {
            let name = r.take_str()?;
            let kind = r.take(1)?[0];
            let payload = match kind {
                0 => {
                    let len = r.take_u64()? as usize;
                    DeltaPayload::Full(r.take(len)?.to_vec())
                }
                1 => {
                    let full_len = r.take_u64()?;
                    let nranges = r.take_u32()?;
                    let mut spans = Vec::with_capacity(nranges as usize);
                    for _ in 0..nranges {
                        let off = r.take_u64()?;
                        let len = r.take_u64()?;
                        spans.push((off, len));
                    }
                    let mut ranges = Vec::with_capacity(spans.len());
                    for (off, len) in spans {
                        ranges.push((off, r.take(len as usize)?.to_vec()));
                    }
                    DeltaPayload::Sparse { full_len, ranges }
                }
                other => {
                    return Err(PparError::CorruptCheckpoint(format!(
                        "unknown delta field kind {other} for field {name:?}"
                    )))
                }
            };
            fields.push((name, payload));
        }
        if r.pos != body.len() {
            return Err(PparError::CorruptCheckpoint(format!(
                "{} unconsumed bytes before delta CRC",
                body.len() - r.pos
            )));
        }
        Ok(DeltaSnapshot { meta, fields })
    }

    /// Fold this delta onto `base` in place (last writer wins per byte).
    /// `base` must be the chain's base snapshot with every earlier delta
    /// already applied; on success its `count` advances to this delta's.
    pub fn apply_to(&self, base: &mut Snapshot) -> Result<()> {
        if self.meta.rank != base.rank {
            return Err(PparError::FormatMismatch {
                expected: format!("delta for rank {:?}", base.rank),
                found: format!("rank {:?}", self.meta.rank),
            });
        }
        if self.meta.nranks != base.nranks {
            return Err(PparError::FormatMismatch {
                expected: format!("{} ranks", base.nranks),
                found: format!("{} ranks", self.meta.nranks),
            });
        }
        for (name, payload) in &self.fields {
            let slot = base
                .fields
                .iter_mut()
                .find(|(n, _)| n == name)
                .map(|(_, b)| b)
                .ok_or_else(|| {
                    PparError::CorruptCheckpoint(format!(
                        "delta patches field {name:?} missing from the base snapshot"
                    ))
                })?;
            match payload {
                DeltaPayload::Full(bytes) => {
                    slot.clear();
                    slot.extend_from_slice(bytes);
                }
                DeltaPayload::Sparse { full_len, ranges } => {
                    if slot.len() as u64 != *full_len {
                        return Err(PparError::CorruptCheckpoint(format!(
                            "delta field {name:?} expects a {full_len}-byte payload, \
                             base has {} bytes",
                            slot.len()
                        )));
                    }
                    for (off, bytes) in ranges {
                        let start = *off as usize;
                        let end = start
                            .checked_add(bytes.len())
                            .filter(|&e| e <= slot.len())
                            .ok_or_else(|| {
                                PparError::CorruptCheckpoint(format!(
                                    "delta field {name:?} range {off}+{} overruns the \
                                     {}-byte payload",
                                    bytes.len(),
                                    slot.len()
                                ))
                            })?;
                        slot[start..end].copy_from_slice(bytes);
                    }
                }
            }
        }
        base.count = self.meta.count;
        base.mode_tag = self.meta.mode_tag.clone();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sparse(full_len: u64, ranges: Vec<(u64, Vec<u8>)>) -> DeltaPayload {
        DeltaPayload::Sparse { full_len, ranges }
    }

    fn base() -> Snapshot {
        Snapshot {
            mode_tag: "seq".into(),
            count: 10,
            rank: None,
            nranks: 1,
            fields: vec![
                ("G".into(), vec![0u8; 16]),
                ("energy".into(), vec![1, 2, 3, 4]),
            ],
        }
    }

    fn delta(count: u64, fields: Vec<(String, DeltaPayload)>) -> DeltaSnapshot {
        DeltaSnapshot {
            meta: DeltaMeta {
                mode_tag: "seq".into(),
                count,
                base_count: 10,
                seq: 1,
                rank: None,
                nranks: 1,
            },
            fields,
        }
    }

    #[test]
    fn sparse_patches_apply_last_writer_wins() {
        let mut snap = base();
        let d = delta(
            12,
            vec![(
                "G".into(),
                sparse(16, vec![(0, vec![9; 8]), (4, vec![7; 4])]),
            )],
        );
        d.apply_to(&mut snap).unwrap();
        assert_eq!(
            snap.field("G").unwrap(),
            &[9, 9, 9, 9, 7, 7, 7, 7, 0, 0, 0, 0, 0, 0, 0, 0]
        );
        assert_eq!(snap.count, 12);
    }

    #[test]
    fn full_payload_replaces_field() {
        let mut snap = base();
        let d = delta(11, vec![("energy".into(), DeltaPayload::Full(vec![8, 8]))]);
        d.apply_to(&mut snap).unwrap();
        assert_eq!(snap.field("energy").unwrap(), &[8, 8]);
        assert_eq!(snap.field("G").unwrap().len(), 16, "untouched field kept");
    }

    #[test]
    fn apply_rejects_bad_shapes() {
        // Unknown field.
        let mut snap = base();
        let d = delta(11, vec![("missing".into(), DeltaPayload::Full(vec![1]))]);
        assert!(d.apply_to(&mut snap).is_err());

        // Length mismatch on a sparse payload.
        let mut snap = base();
        let d = delta(11, vec![("G".into(), sparse(99, vec![]))]);
        assert!(d.apply_to(&mut snap).is_err());

        // Range overrun.
        let mut snap = base();
        let d = delta(11, vec![("G".into(), sparse(16, vec![(12, vec![0; 8])]))]);
        assert!(d.apply_to(&mut snap).is_err());

        // Rank / nranks mismatch.
        let mut snap = base();
        let mut d = delta(11, vec![]);
        d.meta.rank = Some(3);
        assert!(d.apply_to(&mut snap).is_err());
        let mut snap = base();
        let mut d = delta(11, vec![]);
        d.meta.nranks = 4;
        assert!(d.apply_to(&mut snap).is_err());
    }

    #[test]
    fn payload_bytes_counts_only_carried_bytes() {
        assert_eq!(DeltaPayload::Full(vec![0; 5]).payload_bytes(), 5);
        assert_eq!(
            sparse(100, vec![(0, vec![0; 3]), (50, vec![0; 4])]).payload_bytes(),
            7
        );
    }
}
