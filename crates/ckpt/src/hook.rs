//! The checkpoint module: safe-point clock, snapshot/restore, replay state.
//!
//! This is the run-time realisation of the paper's four checkpointing
//! modules (§IV.A, Fig. 2):
//!
//! * **pcr** — at start-up, detect whether the previous execution failed
//!   (marker present + snapshot present) and arm replay mode;
//! * **allocations** — reach announced data through the
//!   [`ppar_core::state::Registry`];
//! * **safepoints** — count safe points per line of execution and trigger
//!   snapshots every `k` safe points;
//! * **ignorablemethods** — during replay, report which methods to skip.
//!
//! The module is engine-agnostic: engines decide *who* calls
//! [`CheckpointModule`]'s snapshot/load entry points and how the
//! team/aggregate is quiesced around them (barriers in shared memory,
//! gathers at the root in distributed memory); the module does the counting,
//! the (de)serialisation and the persistence.

use std::cell::RefCell;
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use ppar_core::ctx::{CkptHook, Ctx, PointDirective};
use ppar_core::error::{PparError, Result};
use ppar_core::partition::block_owned;
use ppar_core::plan::{DistCkptStrategy, Plan};
use ppar_core::runtime::{LoopFrame, RegionCursor, PROGRESS_FIELD};
use ppar_core::state::StateCell;

use crate::delta::DeltaMeta;
use crate::store::{
    CheckpointStore, DeltaSource, FieldSource, Snapshot, SnapshotMeta, SnapshotView,
};
use crate::transport::CkptTransport;

static NEXT_MODULE_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    // Per-thread safe-point clocks, keyed by module id (one process may host
    // many modules: one per simulated aggregate element).
    static CLOCKS: RefCell<HashMap<u64, u64>> = RefCell::new(HashMap::new());
    // Per-thread count of safe points *skipped* by cursor fast-forwards,
    // keyed by module id. Subtracted from the clock at restore time to
    // report how many points were actually re-visited (replay-free resume
    // makes this a bounded tail instead of the whole history).
    static SKIPPED: RefCell<HashMap<u64, u64>> = RefCell::new(HashMap::new());
}

/// Observable cost/state counters, powering Fig. 3–5 measurements.
#[derive(Debug, Clone, Default)]
pub struct CkptStats {
    /// Snapshots persisted by this module (full + delta).
    pub snapshots_taken: u64,
    /// Full (base) snapshots among [`CkptStats::snapshots_taken`].
    pub full_snapshots: u64,
    /// Delta snapshots among [`CkptStats::snapshots_taken`] (incremental
    /// mode only).
    pub delta_snapshots: u64,
    /// Total bytes written across snapshots (cumulative save bytes — the
    /// incremental-vs-full savings signal, together with
    /// [`CkptStats::last_save_bytes`]).
    pub bytes_written: u64,
    /// Bytes written by the most recent snapshot (a delta's size collapses
    /// towards the dirty fraction; a full snapshot pays the whole state).
    pub last_save_bytes: u64,
    /// Cumulative wall time spent inside `take_snapshot`.
    pub save_time: Duration,
    /// Wall time of the most recent `take_snapshot`.
    pub last_save_time: Duration,
    /// Live hand-off snapshots streamed into an armed in-memory transport
    /// (live reshape: one per in-process mode switch).
    pub handoff_snapshots: u64,
    /// Bytes streamed by the most recent hand-off snapshot.
    pub last_handoff_bytes: u64,
    /// Wall time of the most recent hand-off snapshot.
    pub last_handoff_time: Duration,
    /// Wall time spent inside `load_snapshot` (the Fig. 5 "load" bar).
    pub load_time: Duration,
    /// Wall time from module creation to replay completion (the Fig. 5
    /// "replay" bar, including the skipped re-execution).
    pub replay_time: Duration,
    /// Safe points actually re-visited before the snapshot was loaded.
    /// Without a region cursor this is the whole history up to the replay
    /// target; a cursor fast-forward shrinks it to the bounded tail between
    /// the recorded loop-iteration entry and the target.
    pub replayed_points: u64,
    /// Safe-point clock the `PPARPRG1` region cursor fast-forwarded the
    /// replay to (0 when the restore replayed classically from the start).
    pub resumed_at_point: u64,
    /// Novel chunk objects the content-addressed store wrote (one per
    /// chunk whose content was not already present). Zero on flat-layout
    /// runs.
    pub chunks_written: u64,
    /// Chunks the content-addressed store *deduplicated* — referenced by a
    /// manifest but already present, so they cost one 20-byte manifest
    /// entry instead of a data write.
    pub chunks_deduped: u64,
    /// Payload bytes those deduplicated chunks would have cost a flat
    /// store (the store-side savings signal of the dedup figure).
    pub bytes_deduped: u64,
    /// Chunks the network checkpoint path never shipped because the root's
    /// store already held their content (wire-side dedup savings).
    pub wire_chunks_skipped: u64,
}

/// The pluggable checkpoint/restart module. One instance per process (or per
/// simulated aggregate element). Implements [`CkptHook`] for the engines.
pub struct CheckpointModule {
    id: u64,
    /// The file store backing `transport` when this module persists to disk
    /// (`None` for pure in-memory modules); owns the RUNNING-marker
    /// lifecycle, which is meaningless for memory transports.
    store: Option<CheckpointStore>,
    /// Where snapshots and deltas travel (disk directory or process
    /// memory); all persistence paths go through this seam.
    transport: Arc<dyn CkptTransport>,
    /// Armed live hand-off sink: [`CkptHook::handoff_snapshot`] streams a
    /// full, mode-independent master snapshot here at a reshape crossing.
    handoff: Mutex<Option<Arc<dyn CkptTransport>>>,
    /// Armed one-shot resume source: the replay target points into this
    /// transport and [`CkptHook::load_snapshot`] installs from it (live
    /// reshape: the successor run inherits state from memory).
    resume: Mutex<Option<Arc<dyn CkptTransport>>>,
    every: u64,
    replay: AtomicBool,
    detected_failure: bool,
    target: AtomicU64,
    stats: Mutex<CkptStats>,
    created: Instant,
    /// Scratch for snapshot fields whose encoded length is unknown up front
    /// (serde-backed cells). Reused across snapshots so steady-state
    /// checkpointing does not allocate.
    scratch: Mutex<Vec<u8>>,
    /// Per-field extraction buffers for shard snapshots (partitioned fields
    /// contribute only the owned block). Reused across snapshots.
    field_bufs: Mutex<Vec<Vec<u8>>>,
    /// `Some(full_every)` when the plan enables dirty-chunk incremental
    /// checkpointing: snapshots are persisted as deltas, promoted to a full
    /// base every `full_every` deltas.
    incremental: Option<u64>,
    /// Delta-chain bookkeeping (incremental mode).
    chain: Mutex<DeltaChain>,
    /// Live region-progress tracker: the loop frames the master thread is
    /// currently inside ([`CkptHook::note_loop_iter`]). Serialized as the
    /// `PPARPRG1` cursor into every snapshot, delta and hand-off.
    frames: Mutex<Vec<LoopFrame>>,
    /// Lazily resolved resume cursor (`None` = not yet resolved; inner
    /// `None` = resolved, no usable cursor). Kept *separate* from the live
    /// tracker: during restart replay the master keeps tracking frames
    /// while other team threads still consult the cursor.
    resume_cursor: Mutex<Option<Option<RegionCursor>>>,
    /// Highest safe-point clock any thread fast-forwarded to (stats).
    resumed_at: AtomicU64,
    /// Disk-restart resume state shared by every module of one
    /// [`CheckpointModule::create_group`] aggregate (see [`GroupResume`]).
    group_resume: Arc<GroupResume>,
    /// `PPAR_CURSOR=0` disables cursor emission *and* consumption (the
    /// benches' old-replay-path baseline).
    cursor_enabled: bool,
}

/// Disk-restart resume state shared across one aggregate's modules. The
/// resume cursor is aggregate-symmetric (every shard of a group commit
/// carries the same `PPARPRG1` bytes), so the in-process elements share a
/// **single** CRC-checked record read instead of each folding the merged
/// record for itself — and whichever element installs that record consumes
/// the one materialized copy rather than reading it a second time.
#[derive(Default)]
struct GroupResume {
    /// `None` = not yet resolved; inner `None` = resolved, no usable cursor.
    cursor: Mutex<Option<Option<RegionCursor>>>,
    /// The merged record the cursor read materialized (`None` key = master
    /// record, `Some(r)` = rank `r`'s shard), awaiting the load.
    prefetched: Mutex<Option<(Option<u32>, Snapshot)>>,
}

/// Where this module stands in its delta chain.
#[derive(Debug, Clone, Copy, Default)]
struct DeltaChain {
    /// A base full snapshot has been written by *this run* (a restart or a
    /// fresh run always starts with a promotion, so the chain on disk is
    /// never extended across process generations).
    have_base: bool,
    /// Safe-point count of that base.
    base_count: u64,
    /// Sequence number the next delta will carry (1-based).
    next_seq: u32,
}

impl CheckpointModule {
    /// Open `dir`, run the pcr start-up protocol (failure detection) and arm
    /// replay if the previous execution died after a snapshot. Sets the
    /// in-flight marker for the new run.
    pub fn create(dir: impl AsRef<Path>, plan: &Plan) -> Result<Arc<CheckpointModule>> {
        Ok(CheckpointModule::create_group(dir, plan, 1)?
            .pop()
            .expect("one module"))
    }

    /// Create one module per aggregate element with a **single** start-up
    /// failure-detection pass. This is how a distributed launcher must
    /// construct its modules: detecting per-element would race with the
    /// marker the first element sets (and, across threads, with a fast
    /// element finishing the whole run before a slow one starts).
    pub fn create_group(
        dir: impl AsRef<Path>,
        plan: &Plan,
        n: usize,
    ) -> Result<Vec<Arc<CheckpointModule>>> {
        let store = CheckpointStore::new(dir)?;
        let detected_failure = store.marker_exists();
        let restart_count = if detected_failure {
            store.restart_count()?
        } else {
            None
        };
        let (replay, target) = match restart_count {
            Some(count) if count > 0 => (true, count),
            // Failure before the first snapshot (or no failure): fresh run.
            _ => (false, 0),
        };
        if !replay {
            // Fresh run in a possibly reused directory: a previous
            // generation's delta chain could carry a `base_count` equal to a
            // count this run will reach (runs of the same app repeat the
            // same safe-point schedule), and a crash between this run's
            // first base promotion and its GC would then merge
            // mixed-generation bytes. Purge every chain up front; the old
            // base stays (it is harmless and about to be replaced).
            store.clear_all_deltas()?;
        }

        store.set_marker()?;
        let transport: Arc<dyn CkptTransport> = Arc::new(store.clone());
        Ok(CheckpointModule::build_group(
            Some(store),
            transport,
            plan,
            n,
            detected_failure,
            replay,
            target,
        ))
    }

    /// Create one module per aggregate element persisting through an
    /// arbitrary transport instead of a checkpoint directory — typically an
    /// in-memory [`crate::transport::MemTransport`] (live-reshape sessions
    /// without durable checkpointing, disk-free benches). No failure
    /// detection runs (memory does not survive a process death) and the
    /// run-marker lifecycle is a no-op; arm replay explicitly with
    /// [`CheckpointModule::arm_resume`] to inherit state from a hand-off.
    pub fn create_group_with_transport(
        transport: Arc<dyn CkptTransport>,
        plan: &Plan,
        n: usize,
    ) -> Vec<Arc<CheckpointModule>> {
        CheckpointModule::build_group(None, transport, plan, n, false, false, 0)
    }

    /// Create the module for one **worker process** of a real
    /// multi-process job: persistence goes through `transport` (typically
    /// a network transport reaching the root's durable store), and the
    /// replay decision is *not* re-derived locally — only the root sees
    /// the marker and the snapshot chain, runs the start-up
    /// failure-detection pass once ([`CheckpointModule::create`]), and
    /// broadcasts `(detected_failure, replay_target)` to the workers
    /// before any of them reaches a safe point. Re-deriving per process
    /// would race the marker the root sets, exactly like the per-thread
    /// race [`CheckpointModule::create_group`] exists to prevent.
    ///
    /// `progress` is the encoded `PPARPRG1` region cursor the root read
    /// from the snapshot being replayed to (empty/undecodable = classic
    /// replay). It rides the same broadcast as the replay decision so a
    /// worker never pays a network round-trip — or a full-snapshot read —
    /// just to learn its loop position.
    pub fn create_worker(
        transport: Arc<dyn CkptTransport>,
        plan: &Plan,
        detected_failure: bool,
        replay_target: u64,
        progress: &[u8],
    ) -> Arc<CheckpointModule> {
        let module = CheckpointModule::build_group(
            None,
            transport,
            plan,
            1,
            detected_failure,
            replay_target > 0,
            replay_target,
        )
        .pop()
        .expect("one module");
        // Pre-resolve the resume cursor from the broadcast bytes: the
        // lazy-resolution fallback would read a merged snapshot through the
        // network transport, which is exactly what the broadcast avoids.
        *module.resume_cursor.lock() = Some(RegionCursor::decode(progress).ok());
        module
    }

    #[allow(clippy::too_many_arguments)]
    fn build_group(
        store: Option<CheckpointStore>,
        transport: Arc<dyn CkptTransport>,
        plan: &Plan,
        n: usize,
        detected_failure: bool,
        replay: bool,
        target: u64,
    ) -> Vec<Arc<CheckpointModule>> {
        let every = plan.checkpoint_every().unwrap_or(0) as u64;
        let incremental = plan.incremental_ckpt().map(|k| k as u64);
        let cursor_enabled = std::env::var("PPAR_CURSOR").map_or(true, |v| v != "0");
        let group_resume = Arc::new(GroupResume::default());
        (0..n.max(1))
            .map(|_| {
                Arc::new(CheckpointModule {
                    id: NEXT_MODULE_ID.fetch_add(1, Ordering::Relaxed),
                    store: store.clone(),
                    transport: transport.clone(),
                    handoff: Mutex::new(None),
                    resume: Mutex::new(None),
                    every,
                    replay: AtomicBool::new(replay),
                    detected_failure,
                    target: AtomicU64::new(target),
                    stats: Mutex::new(CkptStats::default()),
                    created: Instant::now(),
                    scratch: Mutex::new(Vec::new()),
                    field_bufs: Mutex::new(Vec::new()),
                    incremental,
                    chain: Mutex::new(DeltaChain::default()),
                    frames: Mutex::new(Vec::new()),
                    resume_cursor: Mutex::new(None),
                    resumed_at: AtomicU64::new(0),
                    group_resume: group_resume.clone(),
                    cursor_enabled,
                })
            })
            .collect()
    }

    /// Arm the live hand-off sink: at an escalated reshape crossing the
    /// engine streams a full master snapshot into `sink` via
    /// [`CkptHook::handoff_snapshot`] instead of touching the disk.
    pub fn arm_handoff(&self, sink: Arc<dyn CkptTransport>) {
        *self.handoff.lock() = Some(sink);
    }

    /// Arm a one-shot resume from `source`: replay mode is switched on with
    /// the source's restart count as the target, and the restore at that
    /// safe point installs from `source` (then reverts to the module's own
    /// transport). Returns the replay target. This is the successor side of
    /// a live reshape: state flows back out of the in-memory transport the
    /// predecessor handed off into.
    pub fn arm_resume(&self, source: Arc<dyn CkptTransport>) -> Result<u64> {
        let target = source.restart_count()?.ok_or_else(|| {
            PparError::InvalidAdaptation(
                "cannot resume: the hand-off transport holds no snapshot".into(),
            )
        })?;
        *self.resume.lock() = Some(source);
        // A new resume source invalidates any previously resolved cursor;
        // the next loop entry re-reads it from the armed transport.
        *self.resume_cursor.lock() = None;
        self.target.store(target, Ordering::SeqCst);
        self.replay.store(true, Ordering::SeqCst);
        Ok(target)
    }

    /// The encoded `PPARPRG1` cursor of the snapshot this module will
    /// replay to (empty when there is none, the replay is fresh, or the
    /// cursor is disabled). Rank 0 of a multi-process job broadcasts this
    /// alongside the replay decision so workers never read a snapshot over
    /// the network just to learn their loop position; reading it here also
    /// warms this module's own resume cursor.
    pub fn resume_progress_bytes(&self) -> Vec<u8> {
        if !self.cursor_enabled || !self.will_replay() {
            return Vec::new();
        }
        self.with_resume_cursor(|c| c.map(|c| c.encode()).unwrap_or_default())
    }

    /// Did start-up detect a failed previous execution?
    pub fn detected_failure(&self) -> bool {
        self.detected_failure
    }

    /// Will (or did) this run replay to a snapshot?
    pub fn will_replay(&self) -> bool {
        self.target.load(Ordering::SeqCst) > 0
    }

    /// The safe-point count being replayed to (0 = fresh run).
    pub fn replay_target(&self) -> u64 {
        self.target.load(Ordering::SeqCst)
    }

    /// Cost counters.
    pub fn stats(&self) -> CkptStats {
        self.stats.lock().clone()
    }

    /// The underlying file store (benches clear it between experiments).
    /// Panics for in-memory modules — use [`CheckpointModule::transport`].
    pub fn store(&self) -> &CheckpointStore {
        self.store
            .as_ref()
            .expect("this checkpoint module has no file store (in-memory transport)")
    }

    /// The transport snapshots travel through (file store or memory).
    pub fn transport(&self) -> &Arc<dyn CkptTransport> {
        &self.transport
    }

    fn clock_increment(&self) -> u64 {
        CLOCKS.with(|c| {
            let mut map = c.borrow_mut();
            let e = map.entry(self.id).or_insert(0);
            *e += 1;
            *e
        })
    }

    fn clock_set(&self, v: u64) {
        CLOCKS.with(|c| {
            c.borrow_mut().insert(self.id, v);
        });
    }

    fn clock_get(&self) -> u64 {
        CLOCKS.with(|c| c.borrow().get(&self.id).copied().unwrap_or(0))
    }

    fn skipped_add(&self, v: u64) {
        SKIPPED.with(|s| {
            *s.borrow_mut().entry(self.id).or_insert(0) += v;
        });
    }

    fn skipped_get(&self) -> u64 {
        SKIPPED.with(|s| s.borrow().get(&self.id).copied().unwrap_or(0))
    }

    /// Encode the live progress tracker as a `PPARPRG1` cursor pinned to
    /// the snapshot's safe-point count.
    fn progress_bytes(&self, count: u64) -> Vec<u8> {
        RegionCursor {
            point_count: count,
            construct_seq: 0,
            frames: self.frames.lock().clone(),
            singles: Vec::new(),
            reductions: Vec::new(),
        }
        .encode()
    }

    /// Resolve (once) and borrow the resume cursor. Resolution prefers the
    /// armed live-reshape source and falls back to the module's own
    /// transport (disk restart); any read or decode failure degrades to "no
    /// cursor" — the replay-free resume must never fail a restore that
    /// classic replay would complete.
    fn with_resume_cursor<R>(&self, f: impl FnOnce(Option<&RegionCursor>) -> R) -> R {
        let mut slot = self.resume_cursor.lock();
        if slot.is_none() {
            let cursor = if self.cursor_enabled {
                match self.resume.lock().clone() {
                    // Live hand-off: the armed in-memory source serves a
                    // zero-copy view; nothing worth prefetching.
                    Some(source) => source.read_progress().unwrap_or(None),
                    // Disk restart: one record read per aggregate, shared —
                    // the lock serializes racing elements behind the single
                    // reader, and the materialized record is kept for the
                    // load that follows.
                    None => {
                        let mut shared = self.group_resume.cursor.lock();
                        match &*shared {
                            Some(c) => c.clone(),
                            None => {
                                let c = self.read_progress_prefetching().unwrap_or(None);
                                *shared = Some(c.clone());
                                c
                            }
                        }
                    }
                }
            } else {
                None
            };
            *slot = Some(cursor);
        }
        f(slot.as_ref().and_then(|c| c.as_ref()))
    }

    /// The disk-restart arm of the cursor read: fold the merged record
    /// (master first, shard 0 otherwise — local-snapshot groups carry
    /// identical cursors on every shard), extract the `PPARPRG1` field, and
    /// stash the snapshot for [`CkptHook::load_snapshot`] so the restore
    /// reads the record once instead of twice. Mirrors the decode-failure
    /// contract of [`CkptTransport::read_progress`]: a missing or
    /// undecodable cursor degrades to `None`, never fails the restore.
    fn read_progress_prefetching(&self) -> Result<Option<RegionCursor>> {
        let decode = |snap: &Snapshot| {
            snap.field(PROGRESS_FIELD)
                .and_then(|b| RegionCursor::decode(b).ok())
        };
        if let Some(snap) = self.transport.read_merged_master()? {
            let cursor = decode(&snap);
            *self.group_resume.prefetched.lock() = Some((None, snap));
            return Ok(cursor);
        }
        if let Some(snap) = self.transport.read_merged_shard(0)? {
            let cursor = decode(&snap);
            *self.group_resume.prefetched.lock() = Some((Some(0), snap));
            return Ok(cursor);
        }
        Ok(None)
    }

    /// Claim the group's prefetched record — only when it is exactly the
    /// record this load would otherwise read (matching key, pinned to the
    /// restore target); a miss leaves the slot for the element that can
    /// use it.
    fn take_prefetched(&self, key: Option<u32>, count: u64) -> Option<Snapshot> {
        let mut slot = self.group_resume.prefetched.lock();
        match &*slot {
            Some((k, snap)) if *k == key && snap.count == count => {
                slot.take().map(|(_, snap)| snap)
            }
            _ => None,
        }
    }

    /// Stream a master snapshot (complete data at the caller — engines must
    /// have collected partitioned fields first): every field streams
    /// straight from its registered cell; no payload is materialized.
    fn stream_master_snapshot(&self, ctx: &Ctx, meta: &SnapshotMeta) -> Result<u64> {
        let prog = self.cursor_enabled.then(|| self.progress_bytes(meta.count));
        let mut cells: Vec<(&String, Arc<dyn StateCell>)> = Vec::new();
        for name in ctx.plan().safe_data() {
            cells.push((name, ctx.registry().state(name)?));
        }
        let mut fields: Vec<(&str, FieldSource<'_>)> = cells
            .iter()
            .map(|(name, cell)| (name.as_str(), FieldSource::Cell(&**cell)))
            .collect();
        if let Some(p) = &prog {
            fields.push((PROGRESS_FIELD, FieldSource::Bytes(p)));
        }
        let mut scratch = self.scratch.lock();
        self.transport.put_master(meta, &fields, &mut scratch)
    }

    /// Stream a local shard: partitioned fields contribute only this
    /// element's block (extracted into per-module buffers reused across
    /// snapshots); everything else streams whole from its cell.
    fn stream_shard_snapshot(&self, ctx: &Ctx, meta: &SnapshotMeta) -> Result<u64> {
        let rank = ctx.rank();
        let nranks = ctx.num_ranks();

        enum Slot {
            Block(usize),
            Whole(Arc<dyn StateCell>),
        }

        let mut bufs = self.field_bufs.lock();
        let mut slots: Vec<(&String, Slot)> = Vec::new();
        let mut used = 0;
        for name in ctx.plan().safe_data() {
            if ctx.plan().field_partition(name).is_some() {
                let cell = ctx.registry().dist(name)?;
                if bufs.len() == used {
                    bufs.push(Vec::new());
                }
                let buf = &mut bufs[used];
                buf.clear();
                let owned = block_owned(cell.logical_len(), nranks, rank);
                cell.extract_into(owned, buf);
                slots.push((name, Slot::Block(used)));
                used += 1;
            } else {
                slots.push((name, Slot::Whole(ctx.registry().state(name)?)));
            }
        }
        let prog = self.cursor_enabled.then(|| self.progress_bytes(meta.count));
        let mut fields: Vec<(&str, FieldSource<'_>)> = slots
            .iter()
            .map(|(name, slot)| {
                let source = match slot {
                    Slot::Block(i) => FieldSource::Bytes(&bufs[*i]),
                    Slot::Whole(cell) => FieldSource::Cell(&**cell),
                };
                (name.as_str(), source)
            })
            .collect();
        if let Some(p) = &prog {
            fields.push((PROGRESS_FIELD, FieldSource::Bytes(p)));
        }
        let mut scratch = self.scratch.lock();
        self.transport.put_shard(meta, &fields, &mut scratch)
    }

    /// Stream a master *delta*: every tracked field contributes only its
    /// dirty byte ranges (streamed zero-copy through
    /// [`StateCell::write_dirty_state`]); untracked cells are stored whole.
    fn stream_master_delta_snapshot(&self, ctx: &Ctx, meta: &DeltaMeta) -> Result<u64> {
        type Tracked = Option<Vec<std::ops::Range<usize>>>;
        let mut cells: Vec<(&String, Arc<dyn StateCell>, Tracked)> = Vec::new();
        for name in ctx.plan().safe_data() {
            let cell = ctx.registry().state(name)?;
            let ranges = cell.dirty_ranges();
            cells.push((name, cell, ranges));
        }
        let prog = self.cursor_enabled.then(|| self.progress_bytes(meta.count));
        let mut fields: Vec<(&str, DeltaSource<'_>)> = cells
            .iter()
            .map(|(name, cell, ranges)| {
                let source = match ranges {
                    Some(ranges) => DeltaSource::DirtyCell {
                        cell: &**cell,
                        ranges,
                    },
                    None => DeltaSource::Full(FieldSource::Cell(&**cell)),
                };
                (name.as_str(), source)
            })
            .collect();
        if let Some(p) = &prog {
            // The cursor always travels whole (tens of bytes): a `Full`
            // delta entry replaces the base field at merge time, so the
            // chain tip carries the cursor matching its own count.
            fields.push((PROGRESS_FIELD, DeltaSource::Full(FieldSource::Bytes(p))));
        }
        let mut scratch = self.scratch.lock();
        self.transport.put_master_delta(meta, &fields, &mut scratch)
    }

    /// Stream a local shard *delta*: partitioned fields contribute the dirty
    /// ranges intersected with this element's owned block (offsets relative
    /// to the extracted shard payload, matching the merge step); untracked
    /// or replicated fields follow the master rules.
    fn stream_shard_delta_snapshot(&self, ctx: &Ctx, meta: &DeltaMeta) -> Result<u64> {
        let rank = ctx.rank();
        let nranks = ctx.num_ranks();

        enum Slot {
            /// Dirty ranges of an owned block: payload buffer index,
            /// payload-relative ranges, owned-block byte length.
            SparseBlock {
                buf: usize,
                rel: Vec<std::ops::Range<usize>>,
                full_len: u64,
            },
            /// Whole owned block (untracked partitioned cell).
            FullBlock(usize),
            /// Whole-field cell with dirty tracking.
            DirtyWhole(Arc<dyn StateCell>, Vec<std::ops::Range<usize>>),
            /// Whole-field cell without tracking.
            Whole(Arc<dyn StateCell>),
        }

        let mut bufs = self.field_bufs.lock();
        let mut slots: Vec<(&String, Slot)> = Vec::new();
        let mut used = 0;
        for name in ctx.plan().safe_data() {
            if ctx.plan().field_partition(name).is_some() {
                let cell = ctx.registry().dist(name)?;
                if bufs.len() == used {
                    bufs.push(Vec::new());
                }
                let buf = &mut bufs[used];
                buf.clear();
                let owned = block_owned(cell.logical_len(), nranks, rank);
                let owned_bytes = owned.start * cell.index_bytes()..owned.end * cell.index_bytes();
                match cell.dirty_ranges() {
                    Some(ranges) => {
                        // Clamp the field-wide dirty ranges to the owned
                        // block; this element persists only bytes it owns.
                        let mut abs = Vec::new();
                        let mut rel = Vec::new();
                        for r in ranges {
                            let start = r.start.max(owned_bytes.start);
                            let end = r.end.min(owned_bytes.end);
                            if start < end {
                                abs.push(start..end);
                                rel.push(start - owned_bytes.start..end - owned_bytes.start);
                            }
                        }
                        cell.write_dirty_state(&abs, buf)?;
                        slots.push((
                            name,
                            Slot::SparseBlock {
                                buf: used,
                                rel,
                                full_len: owned_bytes.len() as u64,
                            },
                        ));
                    }
                    None => {
                        cell.extract_into(owned, buf);
                        slots.push((name, Slot::FullBlock(used)));
                    }
                }
                used += 1;
            } else {
                let cell = ctx.registry().state(name)?;
                match cell.dirty_ranges() {
                    Some(ranges) => slots.push((name, Slot::DirtyWhole(cell, ranges))),
                    None => slots.push((name, Slot::Whole(cell))),
                }
            }
        }
        let prog = self.cursor_enabled.then(|| self.progress_bytes(meta.count));
        let mut fields: Vec<(&str, DeltaSource<'_>)> = slots
            .iter()
            .map(|(name, slot)| {
                let source = match slot {
                    Slot::SparseBlock { buf, rel, full_len } => DeltaSource::DirtyBytes {
                        full_len: *full_len,
                        ranges: rel,
                        payload: &bufs[*buf],
                    },
                    Slot::FullBlock(i) => DeltaSource::Full(FieldSource::Bytes(&bufs[*i])),
                    Slot::DirtyWhole(cell, ranges) => DeltaSource::DirtyCell {
                        cell: &**cell,
                        ranges,
                    },
                    Slot::Whole(cell) => DeltaSource::Full(FieldSource::Cell(&**cell)),
                };
                (name.as_str(), source)
            })
            .collect();
        if let Some(p) = &prog {
            fields.push((PROGRESS_FIELD, DeltaSource::Full(FieldSource::Bytes(p))));
        }
        let mut scratch = self.scratch.lock();
        self.transport.put_shard_delta(meta, &fields, &mut scratch)
    }

    /// Reset write tracking on every safe-data cell: the snapshot that just
    /// completed captured everything up to now (the checkpoint cycle's
    /// `advance_epoch`). Engines quiesce the team/aggregate around
    /// `take_snapshot`, so no write can race the reset.
    fn clear_dirty_fields(&self, ctx: &Ctx) -> Result<()> {
        for name in ctx.plan().safe_data() {
            ctx.registry().state(name)?.clear_dirty();
        }
        Ok(())
    }

    fn install_master_fields(&self, ctx: &Ctx, snap: &Snapshot) -> Result<()> {
        self.install_master_fields_view(ctx, &SnapshotView::of(snap))
    }

    fn install_master_fields_view(&self, ctx: &Ctx, snap: &SnapshotView<'_>) -> Result<()> {
        for name in ctx.plan().safe_data() {
            let bytes = snap.field(name).ok_or_else(|| {
                PparError::CorruptCheckpoint(format!("snapshot missing field {name:?}"))
            })?;
            ctx.registry().state(name)?.load_bytes(bytes)?;
        }
        Ok(())
    }

    /// Install this element's portion straight from a *master* snapshot
    /// view (borrowed payloads — the zero-copy resume path): partitioned
    /// fields take only the owned block (sliced out of the full field
    /// payload), everything else loads whole. This is the resume path of a
    /// live reshape — the hand-off is always a mode-independent master
    /// snapshot, whatever checkpoint strategy the plan uses, so a
    /// local-snapshot successor must carve its shard out of it.
    fn install_owned_from_master(&self, ctx: &Ctx, snap: &SnapshotView<'_>) -> Result<()> {
        let rank = ctx.rank();
        let nranks = ctx.num_ranks();
        for name in ctx.plan().safe_data() {
            let bytes = snap.field(name).ok_or_else(|| {
                PparError::CorruptCheckpoint(format!("hand-off snapshot missing field {name:?}"))
            })?;
            if ctx.plan().field_partition(name).is_some() {
                let cell = ctx.registry().dist(name)?;
                let ib = cell.index_bytes();
                let owned = block_owned(cell.logical_len(), nranks, rank);
                let slice = bytes.get(owned.start * ib..owned.end * ib).ok_or_else(|| {
                    PparError::CorruptCheckpoint(format!(
                        "hand-off field {name:?}: {} bytes cannot cover owned block \
                             {owned:?} × {ib}B",
                        bytes.len()
                    ))
                })?;
                cell.install(owned, slice)?;
            } else {
                ctx.registry().state(name)?.load_bytes(bytes)?;
            }
        }
        Ok(())
    }

    fn install_shard_fields(&self, ctx: &Ctx, snap: &Snapshot) -> Result<()> {
        let rank = ctx.rank();
        let nranks = ctx.num_ranks();
        if snap.nranks as usize != nranks {
            return Err(PparError::FormatMismatch {
                expected: format!("{nranks} ranks"),
                found: format!(
                    "{} ranks (local snapshots restart only in the same \
                                aggregate size)",
                    snap.nranks
                ),
            });
        }
        for name in ctx.plan().safe_data() {
            let bytes = snap.field(name).ok_or_else(|| {
                PparError::CorruptCheckpoint(format!("shard missing field {name:?}"))
            })?;
            if ctx.plan().field_partition(name).is_some() {
                let cell = ctx.registry().dist(name)?;
                let owned = block_owned(cell.logical_len(), nranks, rank);
                cell.install(owned, bytes)?;
            } else {
                ctx.registry().state(name)?.load_bytes(bytes)?;
            }
        }
        Ok(())
    }
}

impl CkptHook for CheckpointModule {
    fn at_point(&self, _ctx: &Ctx, _name: &str) -> PointDirective {
        let c = self.clock_increment();
        if self.replay.load(Ordering::SeqCst) {
            if c == self.target.load(Ordering::SeqCst) {
                return PointDirective::LoadAndResume;
            }
            return PointDirective::Continue;
        }
        if self.every > 0 && c.is_multiple_of(self.every) {
            return PointDirective::Snapshot;
        }
        PointDirective::Continue
    }

    fn skip_method(&self, ctx: &Ctx, name: &str) -> bool {
        self.replay.load(Ordering::SeqCst) && ctx.plan().is_ignorable(name)
    }

    fn replaying(&self) -> bool {
        self.replay.load(Ordering::SeqCst)
    }

    fn take_snapshot(&self, ctx: &Ctx) -> Result<()> {
        let t0 = Instant::now();
        let count = self.clock_get();
        let mode_tag = ctx.mode().tag();
        let nranks = ctx.num_ranks() as u32;
        let strategy = ctx.plan().dist_ckpt_strategy();
        let sharded = nranks > 1 && strategy == DistCkptStrategy::LocalSnapshot;
        let rank = sharded.then(|| ctx.rank() as u32);

        let stream_full = |meta_count: u64| -> Result<u64> {
            let meta = SnapshotMeta {
                mode_tag: mode_tag.clone(),
                count: meta_count,
                rank,
                nranks,
            };
            if sharded {
                self.stream_shard_snapshot(ctx, &meta)
            } else {
                self.stream_master_snapshot(ctx, &meta)
            }
        };

        let (written, was_delta) = match self.incremental {
            None => (stream_full(count)?, false),
            Some(full_every) => {
                let mut chain = self.chain.lock();
                if !chain.have_base || chain.next_seq as u64 > full_every {
                    // Promote: write a new base, then garbage-collect the
                    // superseded chain. A crash in between leaves stale
                    // deltas that the merge step ignores (base_count
                    // mismatch), never a broken restore.
                    let written = stream_full(count)?;
                    self.transport.clear_deltas(rank)?;
                    *chain = DeltaChain {
                        have_base: true,
                        base_count: count,
                        next_seq: 1,
                    };
                    (written, false)
                } else {
                    let meta = DeltaMeta {
                        mode_tag: mode_tag.clone(),
                        count,
                        base_count: chain.base_count,
                        seq: chain.next_seq,
                        rank,
                        nranks,
                    };
                    let written = if sharded {
                        self.stream_shard_delta_snapshot(ctx, &meta)?
                    } else {
                        self.stream_master_delta_snapshot(ctx, &meta)?
                    };
                    chain.next_seq += 1;
                    (written, true)
                }
            }
        };
        if self.incremental.is_some() {
            // The checkpoint cycle's epoch reset: whatever was dirty is now
            // captured (by the delta, or subsumed by the promoted base).
            self.clear_dirty_fields(ctx)?;
        }

        let dt = t0.elapsed();
        // Fold the transport's dedup counters (content-addressed store
        // and/or network dedup negotiation) into the observable stats; a
        // flat-layout transport reports all-zero.
        let put = self.transport.take_put_stats();
        let mut stats = self.stats.lock();
        stats.snapshots_taken += 1;
        if was_delta {
            stats.delta_snapshots += 1;
        } else {
            stats.full_snapshots += 1;
        }
        stats.bytes_written += written;
        stats.last_save_bytes = written;
        stats.save_time += dt;
        stats.last_save_time = dt;
        stats.chunks_written += put.chunks_written;
        stats.chunks_deduped += put.chunks_deduped;
        stats.bytes_deduped += put.bytes_deduped;
        stats.wire_chunks_skipped += put.wire_chunks_skipped;
        Ok(())
    }

    fn load_snapshot(&self, ctx: &Ctx) -> Result<()> {
        let t0 = Instant::now();
        let strategy = ctx.plan().dist_ckpt_strategy();
        let nranks = ctx.num_ranks();
        let resume = self.resume.lock().take();

        if let Some(source) = resume {
            // Live-reshape resume: the predecessor handed off a full master
            // snapshot through `source` (memory — no disk round-trip, and
            // the view keeps the install zero-copy: record bytes go
            // straight into the cells). The master snapshot is mode
            // independent, so it installs under any strategy: every
            // local-snapshot element carves out its owned block; otherwise
            // the root installs whole and the engine rescatters, exactly
            // as for a disk restore.
            let installed = source.with_merged_master(&mut |snap| {
                if nranks > 1 && strategy == DistCkptStrategy::LocalSnapshot {
                    self.install_owned_from_master(ctx, snap)
                } else if ctx.rank() == 0 {
                    self.install_master_fields_view(ctx, snap)
                } else {
                    Ok(())
                }
            })?;
            if !installed {
                return Err(PparError::CorruptCheckpoint(
                    "hand-off transport lost its snapshot".into(),
                ));
            }
        } else if nranks > 1 && strategy == DistCkptStrategy::LocalSnapshot {
            // Every element loads its own shard (base + delta chain folded
            // into the complete owned block) — pinned to the safe point
            // being restored, so a shard generation that outran the group
            // commit (torn save) rolls back with everyone else. The cursor
            // read's prefetch (shard 0) serves the root's load only when it
            // sits exactly at the restore target; anything else goes back
            // through the count-pinned read and its generation fallback.
            let snap = match self.take_prefetched(Some(ctx.rank() as u32), self.clock_get()) {
                Some(snap) => snap,
                None => self
                    .transport
                    .read_shard_at(ctx.rank() as u32, self.clock_get())?
                    .ok_or_else(|| {
                        PparError::CorruptCheckpoint(format!(
                            "missing shard for rank {}",
                            ctx.rank()
                        ))
                    })?,
            };
            self.install_shard_fields(ctx, &snap)?;
        } else if ctx.rank() == 0 {
            // Master-collect: the root installs the full snapshot (base +
            // delta chain); the engine subsequently scatters partitioned
            // fields and broadcasts the rest (no file access on other
            // elements). The cursor read's prefetch is that same merged
            // record — reuse it rather than folding the chain again.
            let snap = match self.take_prefetched(None, self.clock_get()) {
                Some(snap) => snap,
                None => self.transport.read_merged_master()?.ok_or_else(|| {
                    PparError::CorruptCheckpoint("missing master snapshot".into())
                })?,
            };
            self.install_master_fields(ctx, &snap)?;
        }
        // A restore invalidates the in-memory chain position: the next
        // snapshot starts a fresh base rather than extending a chain this
        // process generation did not write.
        *self.chain.lock() = DeltaChain::default();

        let was_replaying = self.replay.swap(false, Ordering::SeqCst);
        let mut stats = self.stats.lock();
        stats.load_time += t0.elapsed();
        if was_replaying {
            stats.replay_time = self.created.elapsed() - t0.elapsed();
            // The clock counts every safe point between region start and the
            // target; subtract the span the cursor let this thread skip to
            // report the points actually re-visited.
            stats.replayed_points = self.clock_get().saturating_sub(self.skipped_get());
            stats.resumed_at_point = self.resumed_at.load(Ordering::SeqCst);
        }
        Ok(())
    }

    fn sync_thread_clock(&self, count: u64) {
        self.clock_set(count);
    }

    fn count(&self) -> u64 {
        self.clock_get()
    }

    fn note_load_extra(&self, extra: Duration) {
        self.stats.lock().load_time += extra;
    }

    fn note_loop_iter(&self, depth: usize, name: &str, start: u64, end: u64, index: u64) {
        if !self.cursor_enabled {
            return;
        }
        let clock = self.clock_get();
        let mut frames = self.frames.lock();
        frames.truncate(depth + 1);
        match frames.get_mut(depth) {
            // Steady state: update the existing frame in place — no
            // allocation on the per-iteration path.
            Some(f) if f.name == name && f.start == start && f.end == end => {
                f.index = index;
                f.clock_at_entry = clock;
            }
            _ => {
                frames.truncate(depth);
                frames.push(LoopFrame {
                    name: name.to_string(),
                    start,
                    end,
                    index,
                    clock_at_entry: clock,
                });
            }
        }
    }

    fn note_loop_exit(&self, depth: usize) {
        if !self.cursor_enabled {
            return;
        }
        self.frames.lock().truncate(depth);
    }

    fn loop_resume(&self, depth: usize, name: &str, start: u64, end: u64) -> Option<u64> {
        if !self.cursor_enabled || !self.replay.load(Ordering::SeqCst) {
            return None;
        }
        let target = self.target.load(Ordering::SeqCst);
        self.with_resume_cursor(|cur| {
            let f = cur.filter(|c| c.point_count == target)?.frames.get(depth)?;
            if f.name != name || f.start != start || f.end != end {
                return None;
            }
            if f.index < f.start || f.index >= f.end {
                // Corrupt-cursor guard: reject before touching the clock —
                // the caller independently bounds-checks the index and
                // would decline a jump this module already committed to.
                return None;
            }
            // The frame's entry clock must sit *strictly* before the target
            // (`at_point` matches `c == target` exactly — a jump landing on
            // or past it could never trigger the restore) and never rewind
            // this thread's clock.
            let here = self.clock_get();
            if f.clock_at_entry >= target || f.clock_at_entry < here {
                return None;
            }
            self.clock_set(f.clock_at_entry);
            self.skipped_add(f.clock_at_entry - here);
            self.resumed_at
                .fetch_max(f.clock_at_entry, Ordering::SeqCst);
            Some(f.index)
        })
    }

    fn live_loop_frame(&self, depth: usize, name: &str) -> Option<(u64, u64)> {
        if !self.cursor_enabled {
            return None;
        }
        let frames = self.frames.lock();
        let f = frames.get(depth)?;
        (f.name == name).then_some((f.index, f.clock_at_entry))
    }

    fn group_commit(&self, ctx: &Ctx) -> Result<()> {
        let sharded = ctx.num_ranks() > 1
            && ctx.plan().dist_ckpt_strategy() == DistCkptStrategy::LocalSnapshot;
        if sharded {
            self.transport.commit_group(self.clock_get())?;
        }
        Ok(())
    }

    fn finish(&self, _ctx: &Ctx) -> Result<()> {
        match &self.store {
            Some(store) => store.clear_marker(),
            // In-memory modules have no failure marker: memory does not
            // survive the process, so there is nothing to detect at start-up.
            None => Ok(()),
        }
    }

    fn can_handoff(&self) -> bool {
        self.handoff.lock().is_some()
    }

    fn handoff_snapshot(&self, ctx: &Ctx) -> Result<()> {
        let sink = self.handoff.lock().clone().ok_or_else(|| {
            PparError::InvalidAdaptation(
                "live reshape requested but no hand-off transport is armed".into(),
            )
        })?;
        let t0 = Instant::now();
        // Always a *full master* snapshot: the successor may be any mode and
        // any aggregate size, so the hand-off must carry the complete,
        // mode-independent state (partitioned fields are already collected
        // at the caller — engines gather before calling, master-collect
        // rules).
        let meta = SnapshotMeta {
            mode_tag: ctx.mode().tag(),
            count: self.clock_get(),
            rank: None,
            nranks: ctx.num_ranks() as u32,
        };
        let prog = self.cursor_enabled.then(|| self.progress_bytes(meta.count));
        let mut cells: Vec<(&String, Arc<dyn StateCell>)> = Vec::new();
        for name in ctx.plan().safe_data() {
            cells.push((name, ctx.registry().state(name)?));
        }
        let mut fields: Vec<(&str, FieldSource<'_>)> = cells
            .iter()
            .map(|(name, cell)| (name.as_str(), FieldSource::Cell(&**cell)))
            .collect();
        if let Some(p) = &prog {
            fields.push((PROGRESS_FIELD, FieldSource::Bytes(p)));
        }
        let written = {
            let mut scratch = self.scratch.lock();
            sink.put_master(&meta, &fields, &mut scratch)?
        };
        let mut stats = self.stats.lock();
        stats.handoff_snapshots += 1;
        stats.last_handoff_bytes = written;
        stats.last_handoff_time = t0.elapsed();
        Ok(())
    }

    fn tracks_dirty(&self) -> bool {
        self.incremental.is_some()
    }

    fn next_snapshot_is_delta(&self) -> bool {
        match self.incremental {
            None => false,
            Some(full_every) => {
                let chain = self.chain.lock();
                chain.have_base && (chain.next_seq as u64) <= full_every
            }
        }
    }

    fn note_peer_snapshot(&self, ctx: &Ctx) -> Result<()> {
        let Some(full_every) = self.incremental else {
            return Ok(());
        };
        // Mirror the chain bookkeeping of the element that actually wrote
        // the snapshot (master-collect: the root). Every element advances
        // the same safe-point clock, so the promote/delta decision is
        // reproduced exactly — which is what lets the engine ask *any*
        // element's module whether the coming gather may be dirty-only.
        {
            let mut chain = self.chain.lock();
            if !chain.have_base || chain.next_seq as u64 > full_every {
                *chain = DeltaChain {
                    have_base: true,
                    base_count: self.clock_get(),
                    next_seq: 1,
                };
            } else {
                chain.next_seq += 1;
            }
        }
        // The epoch reset: whatever this element had dirty has now been
        // captured at the root (the dirty gather shipped it there).
        self.clear_dirty_fields(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppar_core::ctx::{Ctx, RunShared, SeqEngine};
    use ppar_core::plan::{Plug, PointSet};
    use ppar_core::state::Registry;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ppar_hook_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn ckpt_plan(every: usize) -> Plan {
        Plan::new()
            .plug(Plug::SafeData { field: "G".into() })
            .plug(Plug::SafePoints {
                points: PointSet::Named(vec!["iter".into()]),
                every,
            })
            .plug(Plug::Ignorable {
                method: "sweep".into(),
            })
    }

    fn seq_ctx(plan: Plan, hook: Arc<CheckpointModule>) -> Ctx {
        Ctx::new_root(RunShared::new(
            Arc::new(plan),
            Arc::new(Registry::new()),
            Arc::new(SeqEngine),
            Some(hook),
            None,
        ))
    }

    #[test]
    fn fresh_run_counts_and_snapshots() {
        let dir = tmpdir("fresh");
        let plan = ckpt_plan(3);
        let module = CheckpointModule::create(&dir, &plan).unwrap();
        assert!(!module.detected_failure());
        assert!(!module.will_replay());

        let ctx = seq_ctx(ckpt_plan(3), module.clone());
        let g = ctx.alloc_vec("G", 4, 0.0f64);
        g.fill(1.5);

        for i in 1..=7u64 {
            ctx.point("iter");
            assert_eq!(module.count(), i);
        }
        // every=3 -> snapshots at points 3 and 6
        assert_eq!(module.stats().snapshots_taken, 2);
        let snap = module.store().read_master().unwrap().unwrap();
        assert_eq!(snap.count, 6);
        assert_eq!(snap.field("G").unwrap().len(), 32);

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failure_then_replay_restores_data() {
        let dir = tmpdir("replay");

        // --- run 1: snapshot at point 4, then "crash" (marker not cleared)
        {
            let plan = ckpt_plan(4);
            let module = CheckpointModule::create(&dir, &plan).unwrap();
            let ctx = seq_ctx(ckpt_plan(4), module.clone());
            let g = ctx.alloc_vec("G", 3, 0.0f64);
            for i in 1..=5 {
                g.set(0, i as f64); // state evolves
                ctx.point("iter");
            }
            // crash: no finish(), marker stays
            assert_eq!(module.stats().snapshots_taken, 1);
        }

        // --- run 2: detects failure, replays to point 4, restores G
        {
            let plan = ckpt_plan(4);
            let module = CheckpointModule::create(&dir, &plan).unwrap();
            assert!(module.detected_failure());
            assert!(module.will_replay());
            assert_eq!(module.replay_target(), 4);

            let ctx = seq_ctx(ckpt_plan(4), module.clone());
            let g = ctx.alloc_vec("G", 3, 0.0f64);

            // Ignorable methods are skipped while replaying.
            let mut ran = false;
            ctx.call("sweep", |_| ran = true);
            assert!(!ran);

            // Replay points 1..4; at 4 the engine gets LoadAndResume and the
            // sequential engine calls load_snapshot inline.
            for _ in 0..4 {
                ctx.point("iter");
            }
            assert!(!module.replaying());
            assert_eq!(g.get(0), 4.0, "G restored from snapshot at point 4");

            // Live again: ignorables run.
            let mut ran = false;
            ctx.call("sweep", |_| ran = true);
            assert!(ran);

            let stats = module.stats();
            assert_eq!(stats.replayed_points, 4);
            assert!(stats.load_time > Duration::ZERO);

            ctx.finish();
        }

        // --- run 3: clean previous finish -> fresh start
        {
            let plan = ckpt_plan(4);
            let module = CheckpointModule::create(&dir, &plan).unwrap();
            assert!(!module.detected_failure());
            assert!(!module.will_replay());
        }

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failure_before_first_snapshot_is_fresh_start() {
        let dir = tmpdir("early_fail");
        {
            let plan = ckpt_plan(100);
            let module = CheckpointModule::create(&dir, &plan).unwrap();
            let ctx = seq_ctx(ckpt_plan(100), module);
            ctx.point("iter"); // no snapshot taken, then crash
        }
        let plan = ckpt_plan(100);
        let module = CheckpointModule::create(&dir, &plan).unwrap();
        assert!(module.detected_failure());
        assert!(!module.will_replay(), "no snapshot -> restart from scratch");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_zero_counts_but_never_snapshots() {
        let dir = tmpdir("count_only");
        let plan = ckpt_plan(0);
        let module = CheckpointModule::create(&dir, &plan).unwrap();
        let ctx = seq_ctx(ckpt_plan(0), module.clone());
        ctx.alloc_vec("G", 2, 0.0f64);
        for _ in 0..50 {
            ctx.point("iter");
        }
        assert_eq!(module.count(), 50);
        assert_eq!(module.stats().snapshots_taken, 0);
        assert!(module.store().read_master().unwrap().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn incremental_plan(every: usize, full_every: usize) -> Plan {
        ckpt_plan(every).plug(Plug::IncrementalCkpt { full_every })
    }

    #[test]
    fn incremental_mode_writes_deltas_and_promotes_every_k() {
        let dir = tmpdir("inc_chain");
        let plan = incremental_plan(1, 3); // snapshot every point, full every 3 deltas
        let module = CheckpointModule::create(&dir, &plan).unwrap();
        let ctx = seq_ctx(incremental_plan(1, 3), module.clone());
        // Large enough that one-chunk deltas are much smaller than the base.
        let g = ctx.alloc_vec("G", 40_000, 0.0f64);

        // Point 1: first snapshot is the base (full).
        g.set(0, 1.0);
        ctx.point("iter");
        let s = module.stats();
        assert_eq!((s.full_snapshots, s.delta_snapshots), (1, 0));
        let full_bytes = s.last_save_bytes;

        // Points 2..4: deltas 1..3.
        for i in 2..=4u64 {
            g.set(5, i as f64);
            ctx.point("iter");
        }
        let s = module.stats();
        assert_eq!((s.full_snapshots, s.delta_snapshots), (1, 3));
        assert!(
            s.last_save_bytes * 4 < full_bytes,
            "one-chunk delta ({}B) must be far below the full snapshot ({full_bytes}B)",
            s.last_save_bytes
        );
        assert!(module.store().read_master_delta(3).unwrap().is_some());

        // Point 5: chain is full -> promotion + delta GC.
        g.set(6, 5.0);
        ctx.point("iter");
        let s = module.stats();
        assert_eq!((s.full_snapshots, s.delta_snapshots), (2, 3));
        assert_eq!(s.snapshots_taken, 5);
        assert!(module.store().read_master_delta(1).unwrap().is_none());
        assert_eq!(
            module.store().read_merged_master().unwrap().unwrap().count,
            5
        );

        // Cumulative bytes are observable and consistent.
        assert!(s.bytes_written > 2 * full_bytes);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn incremental_crash_replays_to_last_delta_and_restores_exactly() {
        let dir = tmpdir("inc_replay");

        // --- run 1: base at point 2, deltas at points 3 and 4, then crash.
        {
            let plan = incremental_plan(2, 10);
            let module = CheckpointModule::create(&dir, &plan).unwrap();
            let ctx = seq_ctx(incremental_plan(2, 10), module.clone());
            let g = ctx.alloc_vec("G", 3000, 0.0f64);
            for i in 1..=9u64 {
                g.set((i as usize * 7) % 3000, i as f64);
                ctx.point("iter");
            }
            // every=2 -> snapshots at 2 (full), 4, 6, 8 (deltas)
            let s = module.stats();
            assert_eq!((s.full_snapshots, s.delta_snapshots), (1, 3));
        }

        // --- run 2: replay target is the last delta's count, data matches.
        {
            let plan = incremental_plan(2, 10);
            let module = CheckpointModule::create(&dir, &plan).unwrap();
            assert!(module.detected_failure());
            assert_eq!(module.replay_target(), 8);

            let ctx = seq_ctx(incremental_plan(2, 10), module.clone());
            let g = ctx.alloc_vec("G", 3000, 0.0f64);
            // Rebuild the expected state by replaying the app deterministically.
            let mut expected = vec![0.0f64; 3000];
            for i in 1..=8u64 {
                expected[(i as usize * 7) % 3000] = i as f64;
            }
            for _ in 0..8 {
                ctx.point("iter");
            }
            assert!(!module.replaying());
            assert_eq!(g.to_vec(), expected, "base+delta restore must be exact");

            // Post-restore, the next snapshot starts a new chain (full).
            ctx.point("iter"); // count 9
            ctx.point("iter"); // count 10 -> snapshot (every=2)
            let s = module.stats();
            assert_eq!((s.full_snapshots, s.delta_snapshots), (1, 0));
            ctx.finish();
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fresh_run_purges_previous_generations_delta_chain() {
        let dir = tmpdir("inc_gen");

        // --- generation 1: completes cleanly, leaving base + deltas behind
        // (finish clears only the RUNNING marker).
        {
            let plan = incremental_plan(1, 5);
            let module = CheckpointModule::create(&dir, &plan).unwrap();
            let ctx = seq_ctx(incremental_plan(1, 5), module.clone());
            let g = ctx.alloc_vec("G", 100, 0.0f64);
            for i in 1..=3u64 {
                g.set(0, i as f64);
                ctx.point("iter");
            }
            assert!(module.store().read_master_delta(1).unwrap().is_some());
            ctx.finish();
        }

        // --- generation 2: a fresh run repeats the same safe-point
        // schedule, so generation 1's deltas (base_count 1) would collide
        // with the new base's count if a crash hit between promotion and
        // GC. Creation must purge them up front.
        {
            let plan = incremental_plan(1, 5);
            let module = CheckpointModule::create(&dir, &plan).unwrap();
            assert!(!module.will_replay(), "clean finish -> fresh run");
            assert!(
                module.store().read_master_delta(1).unwrap().is_none(),
                "stale chain from the previous generation must be purged"
            );
            // The old base alone is what restart_count now sees.
            assert_eq!(module.store().restart_count().unwrap(), Some(1));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stats_track_last_and_cumulative_save_bytes() {
        let dir = tmpdir("stats_bytes");
        let plan = incremental_plan(1, 8);
        let module = CheckpointModule::create(&dir, &plan).unwrap();
        let ctx = seq_ctx(incremental_plan(1, 8), module.clone());
        let g = ctx.alloc_vec("G", 100_000, 0.0f64);

        ctx.point("iter"); // full base
        let after_full = module.stats();
        assert_eq!(after_full.last_save_bytes, after_full.bytes_written);
        assert!(
            after_full.last_save_bytes > 100_000 * 8,
            "base holds all data"
        );

        g.set(42, 1.0);
        ctx.point("iter"); // one-chunk delta
        let after_delta = module.stats();
        assert_eq!(
            after_delta.bytes_written,
            after_full.bytes_written + after_delta.last_save_bytes,
            "cumulative save bytes are the sum of per-snapshot sizes"
        );
        assert!(
            after_delta.last_save_bytes < after_full.last_save_bytes / 10,
            "delta {}B vs full {}B",
            after_delta.last_save_bytes,
            after_full.last_save_bytes
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sync_new_thread_adopts_master_clock() {
        let dir = tmpdir("sync");
        let plan = ckpt_plan(0);
        let module = CheckpointModule::create(&dir, &plan).unwrap();
        let ctx = seq_ctx(ckpt_plan(0), module.clone());
        ctx.alloc_vec("G", 2, 0.0f64);
        for _ in 0..9 {
            ctx.point("iter");
        }
        let captured = module.count(); // captured on the forking thread
        let m = module.clone();
        std::thread::spawn(move || {
            assert_eq!(m.count(), 0, "fresh thread has a zero clock");
            m.sync_thread_clock(captured);
            assert_eq!(m.count(), 9, "after sync the thread matches the master");
        })
        .join()
        .unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
