//! Vendored 128-bit non-cryptographic content digest for the
//! content-addressed store.
//!
//! Chunks are keyed by content, so the key function must be fast enough to
//! run at memory bandwidth on every checkpoint byte and wide enough that
//! accidental collisions are out of reach for any realistic store
//! (128 bits ≫ the birthday bound of a store holding billions of chunks).
//! Cryptographic strength is *not* a goal — the store trusts its own
//! writers; the digest defends against accidents, not adversaries — so a
//! dependency-free xxHash64-style mixer is the right tool. Two independent
//! 64-bit lanes (same mixer, different seeds) form the 128-bit key.
//!
//! The digest is part of the on-disk format (object file names and
//! manifest entries), so the function is frozen: changing it orphans every
//! existing object. See [`crate::cas`] for the store layout.

// xxHash64-style primes: odd 64-bit constants with good bit dispersion.
const P1: u64 = 0x9E37_79B1_85EB_CA87;
const P2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const P3: u64 = 0x1656_67B1_9E37_79F9;
const P4: u64 = 0x85EB_CA77_C2B2_AE63;
const P5: u64 = 0x27D4_EB2F_1656_67C5;

/// Seeds for the two digest lanes. Arbitrary but frozen (on-disk format).
const SEED_LO: u64 = 0;
const SEED_HI: u64 = 0x5050_4152_434B_5031; // "PPARCKP1"

#[inline]
fn le64(b: &[u8], i: usize) -> u64 {
    u64::from_le_bytes(b[i..i + 8].try_into().unwrap())
}

#[inline]
fn round(acc: u64, input: u64) -> u64 {
    acc.wrapping_add(input.wrapping_mul(P2))
        .rotate_left(31)
        .wrapping_mul(P1)
}

#[inline]
fn merge_round(acc: u64, val: u64) -> u64 {
    (acc ^ round(0, val)).wrapping_mul(P1).wrapping_add(P4)
}

#[inline]
fn avalanche(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(P2);
    h ^= h >> 29;
    h = h.wrapping_mul(P3);
    h ^= h >> 32;
    h
}

/// One 64-bit lane over `data` (xxHash64-style: four parallel accumulators
/// over 32-byte stripes, then the tail word by word).
fn mix64(seed: u64, data: &[u8]) -> u64 {
    let len = data.len();
    let mut i = 0usize;
    let mut h: u64;
    if len >= 32 {
        let mut v1 = seed.wrapping_add(P1).wrapping_add(P2);
        let mut v2 = seed.wrapping_add(P2);
        let mut v3 = seed;
        let mut v4 = seed.wrapping_sub(P1);
        while i + 32 <= len {
            v1 = round(v1, le64(data, i));
            v2 = round(v2, le64(data, i + 8));
            v3 = round(v3, le64(data, i + 16));
            v4 = round(v4, le64(data, i + 24));
            i += 32;
        }
        h = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        h = merge_round(h, v1);
        h = merge_round(h, v2);
        h = merge_round(h, v3);
        h = merge_round(h, v4);
    } else {
        h = seed.wrapping_add(P5);
    }
    h = h.wrapping_add(len as u64);
    while i + 8 <= len {
        h ^= round(0, le64(data, i));
        h = h.rotate_left(27).wrapping_mul(P1).wrapping_add(P4);
        i += 8;
    }
    if i + 4 <= len {
        let w = u32::from_le_bytes(data[i..i + 4].try_into().unwrap()) as u64;
        h ^= w.wrapping_mul(P1);
        h = h.rotate_left(23).wrapping_mul(P2).wrapping_add(P3);
        i += 4;
    }
    while i < len {
        h ^= (data[i] as u64).wrapping_mul(P5);
        h = h.rotate_left(11).wrapping_mul(P1);
        i += 1;
    }
    avalanche(h)
}

/// 128-bit content key of one store chunk (two independent 64-bit lanes,
/// little-endian concatenated).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChunkDigest(pub [u8; 16]);

impl ChunkDigest {
    /// Digest `data`.
    pub fn of(data: &[u8]) -> ChunkDigest {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&mix64(SEED_LO, data).to_le_bytes());
        out[8..].copy_from_slice(&mix64(SEED_HI, data).to_le_bytes());
        ChunkDigest(out)
    }

    /// Lowercase 32-character hex form (object file names).
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(32);
        for b in self.0 {
            use std::fmt::Write as _;
            let _ = write!(s, "{b:02x}");
        }
        s
    }

    /// Parse the [`ChunkDigest::to_hex`] form. `None` on anything that is
    /// not exactly 32 lowercase/uppercase hex characters.
    pub fn from_hex(s: &str) -> Option<ChunkDigest> {
        if s.len() != 32 || !s.is_ascii() {
            return None;
        }
        let mut out = [0u8; 16];
        for (i, byte) in out.iter_mut().enumerate() {
            *byte = u8::from_str_radix(&s[2 * i..2 * i + 2], 16).ok()?;
        }
        Some(ChunkDigest(out))
    }
}

impl std::fmt::Debug for ChunkDigest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ChunkDigest({})", self.to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_length_sensitive() {
        let a = ChunkDigest::of(b"hello world");
        assert_eq!(a, ChunkDigest::of(b"hello world"));
        assert_ne!(a, ChunkDigest::of(b"hello worl"));
        assert_ne!(a, ChunkDigest::of(b"hello world "));
        assert_ne!(ChunkDigest::of(b""), ChunkDigest::of(b"\0"));
    }

    #[test]
    fn single_bit_flips_change_every_lane() {
        // Avalanche sanity across the size regimes of the mixer (tail-only,
        // word tail, striped).
        for len in [1usize, 7, 31, 32, 33, 255, 8192] {
            let base: Vec<u8> = (0..len).map(|i| (i * 31 + 7) as u8).collect();
            let d0 = ChunkDigest::of(&base);
            for bit in [0usize, len * 8 / 2, len * 8 - 1] {
                let mut flipped = base.clone();
                flipped[bit / 8] ^= 1 << (bit % 8);
                let d1 = ChunkDigest::of(&flipped);
                assert_ne!(d0, d1, "len={len} bit={bit}");
                // Both lanes must react independently.
                assert_ne!(d0.0[..8], d1.0[..8], "lo lane dead: len={len}");
                assert_ne!(d0.0[8..], d1.0[8..], "hi lane dead: len={len}");
            }
        }
    }

    #[test]
    fn no_collisions_across_small_corpus() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..2000u32 {
            let data = i.to_le_bytes();
            assert!(seen.insert(ChunkDigest::of(&data)), "collision at {i}");
        }
    }

    #[test]
    fn hex_roundtrip() {
        let d = ChunkDigest::of(b"roundtrip");
        let hex = d.to_hex();
        assert_eq!(hex.len(), 32);
        assert_eq!(ChunkDigest::from_hex(&hex), Some(d));
        assert_eq!(ChunkDigest::from_hex("zz"), None);
        assert_eq!(ChunkDigest::from_hex(&hex[..30]), None);
    }
}
