//! Pluggable checkpoint transports: where snapshot bytes travel.
//!
//! The checkpoint layer separates *what* is persisted (the snapshot and
//! delta formats of [`crate::store`] and [`crate::delta`]) from *where* the
//! bytes go. A [`CkptTransport`] is a sink + source pair:
//!
//! * **sink** — streaming full-snapshot writes ([`CkptTransport::put_master`]
//!   / [`CkptTransport::put_shard`]) and delta-record writes, all through
//!   the shared golden encoder ([`crate::store::SnapshotWriter`]), so every
//!   transport produces byte-identical encodings for identical content;
//! * **source** — merged reads that fold a base snapshot with its delta
//!   chain ([`CkptTransport::read_merged_master`] /
//!   [`CkptTransport::read_merged_shard`]) plus the restart-target walk
//!   ([`CkptTransport::restart_count`]).
//!
//! Two implementations ship:
//!
//! * [`crate::store::CheckpointStore`] — the on-disk directory layout
//!   (unchanged, golden-bytes tested): crash/restart persistence;
//! * [`MemTransport`] — the same record bytes held in process memory: the
//!   state hand-off behind **live reshape** (run-time adaptation with no
//!   process exit and no disk round-trip) and a fast lane for benches.
//!
//! Because both sides of every transport share one encoder and one
//! chain-merge implementation (the crate-internal `merge_chain_with` /
//! `chain_tip_with` helpers), a snapshot handed off in memory matches the
//! file a disk-backed save of the same state would have produced byte for
//! byte, except the CRC trailer (zero in memory — integrity checking
//! guards the durable medium) — the property test in this module pins
//! that down.

use std::collections::HashMap;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use ppar_core::error::{PparError, Result};
use ppar_core::runtime::{RegionCursor, PROGRESS_FIELD};

use crate::crc::Crc32;
use crate::delta::{DeltaMeta, DeltaSnapshot};
use crate::store::{
    DeltaSource, FieldSource, Snapshot, SnapshotMeta, SnapshotView, SnapshotWriter, MASTER_RANK,
};

/// Which record a raw streamed install targets (see
/// [`CkptTransport::begin_raw`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RawRecordKind {
    /// The master (mode-independent) full snapshot.
    Master,
    /// One rank's shard full snapshot.
    Shard(u32),
    /// Delta `seq` of the master chain.
    MasterDelta {
        /// 1-based chain position.
        seq: u32,
    },
    /// Delta `seq` of one rank's chain.
    ShardDelta {
        /// Owning rank.
        rank: u32,
        /// 1-based chain position.
        seq: u32,
    },
}

/// Incremental sink for one record arriving as *already-encoded* bytes
/// (the streaming checkpoint service's install side). Chunks are the
/// record's encoded bytes in order, trailing CRC included; the caller
/// attests it has verified that CRC before calling
/// [`RawRecordSink::commit`] — an aborted or dropped sink must leave the
/// transport's previous record for the same key intact.
pub trait RawRecordSink: Send {
    /// Append the next chunk of encoded record bytes.
    fn write_chunk(&mut self, chunk: &[u8]) -> Result<()>;
    /// Record complete and integrity-verified: install it atomically.
    /// Returns total record bytes.
    fn commit(self: Box<Self>) -> Result<u64>;
    /// Discard the partial record (stream error or CRC mismatch); the
    /// previously installed record, if any, stays.
    fn abort(self: Box<Self>);
}

/// Chunk-dedup install handshake for one record whose chunk references
/// arrived ahead of its bytes (the dedup-aware wire path — see
/// [`CkptTransport::begin_raw_dedup`]). The sink already holds every chunk
/// *not* listed by [`DedupRecordSink::missing`]; the caller supplies the
/// missing chunks' bytes in listed order, each verified against its
/// announced content digest, then commits. An aborted or dropped sink
/// leaves the previous record for the same key intact.
pub trait DedupRecordSink: Send {
    /// Indexes (into the announced chunk list) whose bytes the caller must
    /// supply, in this order.
    fn missing(&self) -> &[u32];
    /// Supply the bytes of the next missing chunk (digest-verified).
    fn supply_chunk(&mut self, bytes: &[u8]) -> Result<()>;
    /// Every missing chunk supplied: promote the record atomically.
    /// Returns total record bytes.
    fn commit(self: Box<Self>) -> Result<u64>;
    /// Discard the in-flight record; the previously installed record, if
    /// any, stays.
    fn abort(self: Box<Self>);
}

/// A checkpoint byte transport: streaming snapshot/delta sink plus merged
/// snapshot source. See the [module docs](self) for the contract binding
/// all implementations (shared golden encoder, shared chain rules).
pub trait CkptTransport: Send + Sync {
    /// Short human-readable tag for reports (`"file"`, `"memory"`).
    fn describe(&self) -> &'static str;

    /// Stream a master (mode-independent) full snapshot; returns bytes
    /// written. `scratch` buffers length-unknown cells and is reused across
    /// calls.
    fn put_master(
        &self,
        meta: &SnapshotMeta,
        fields: &[(&str, FieldSource<'_>)],
        scratch: &mut Vec<u8>,
    ) -> Result<u64>;

    /// Stream one element's shard full snapshot; returns bytes written.
    fn put_shard(
        &self,
        meta: &SnapshotMeta,
        fields: &[(&str, FieldSource<'_>)],
        scratch: &mut Vec<u8>,
    ) -> Result<u64>;

    /// Stream a master delta record; returns bytes written.
    fn put_master_delta(
        &self,
        meta: &DeltaMeta,
        fields: &[(&str, DeltaSource<'_>)],
        scratch: &mut Vec<u8>,
    ) -> Result<u64>;

    /// Stream one element's shard delta record; returns bytes written.
    fn put_shard_delta(
        &self,
        meta: &DeltaMeta,
        fields: &[(&str, DeltaSource<'_>)],
        scratch: &mut Vec<u8>,
    ) -> Result<u64>;

    /// Load the master snapshot with its delta chain folded in (per field
    /// byte-identical to a full snapshot of the same state).
    fn read_merged_master(&self) -> Result<Option<Snapshot>>;

    /// Run `install` over the merged master snapshot, zero-copy where the
    /// transport can serve borrowed payload bytes (the in-memory transport
    /// with no delta chain pending — the live-reshape resume fast path).
    /// Returns `Ok(false)` when no master snapshot exists; the default
    /// materializes through [`CkptTransport::read_merged_master`].
    fn with_merged_master(
        &self,
        install: &mut dyn FnMut(&SnapshotView<'_>) -> Result<()>,
    ) -> Result<bool> {
        match self.read_merged_master()? {
            Some(snap) => {
                install(&SnapshotView::of(&snap))?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Load rank `rank`'s shard with its delta chain folded in.
    fn read_merged_shard(&self, rank: u32) -> Result<Option<Snapshot>>;

    /// Load rank `rank`'s shard *at exactly* safe-point `count`. Restores
    /// pass the replay target here so a torn group checkpoint (one rank
    /// died mid-save, its peers already committed a newer generation) is
    /// detected instead of silently installing inconsistent state. The
    /// default serves the merged chain tip and errors on a count mismatch;
    /// transports that retain a previous shard generation override it to
    /// fall back to the older record.
    fn read_shard_at(&self, rank: u32, count: u64) -> Result<Option<Snapshot>> {
        match self.read_merged_shard(rank)? {
            None => Ok(None),
            Some(snap) if snap.count == count => Ok(Some(snap)),
            Some(snap) => Err(PparError::CorruptCheckpoint(format!(
                "shard {rank} holds safe point {} but the restore targets {count} \
                 (torn group checkpoint and no older generation retained)",
                snap.count
            ))),
        }
    }

    /// The safe-point count a restart/resume should replay to (chain tips
    /// count); `None` when no usable snapshot exists.
    fn restart_count(&self) -> Result<Option<u64>>;

    /// Advance the group-commit point to safe point `count`: every shard of
    /// the group is durable at `count` (the engine's post-save barrier has
    /// completed). Transports whose [`CkptTransport::restart_count`] honours
    /// a commit point override this; the default is a no-op (single-writer
    /// transports commit atomically on every put).
    fn commit_group(&self, _count: u64) -> Result<()> {
        Ok(())
    }

    /// Delete every delta of one chain (base-promotion GC).
    fn clear_deltas(&self, rank: Option<u32>) -> Result<()>;

    /// Delete every delta of every chain (fresh-run hygiene).
    fn clear_all_deltas(&self) -> Result<()>;

    /// Begin a raw streamed install of one already-encoded record: the
    /// checkpoint service feeds wire chunks straight into the returned
    /// sink while they arrive, so a GB-scale record is never buffered
    /// whole in the service. `len_hint` is the sender's announced record
    /// size (0 when unknown) — a pre-sizing hint only, never trusted as a
    /// bound. The default buffers the record and installs it through the
    /// ordinary `put_*` path; transports with a natural incremental
    /// medium (disk files, memory buffers) override it to spill chunks
    /// directly.
    fn begin_raw<'a>(
        &'a self,
        kind: RawRecordKind,
        len_hint: u64,
    ) -> Result<Box<dyn RawRecordSink + 'a>> {
        Ok(Box::new(BufferedRawSink {
            transport: self,
            kind,
            buf: Vec::with_capacity(clamp_record_hint(len_hint)),
        }))
    }

    /// Stream the merged (base + delta chain) record for `rank` (`None` =
    /// master) into `out` as one *checksummed* full-snapshot encoding —
    /// the restore direction of the streaming checkpoint service. Returns
    /// the bytes written, or `Ok(None)` when the chain has no base
    /// record. The default materializes the merge and re-encodes;
    /// transports that already hold checksummed or contiguous record
    /// bytes override it with a copy-through fast path.
    fn write_merged_record(&self, rank: Option<u32>, out: &mut dyn Write) -> Result<Option<u64>> {
        write_merged_fallback(self, rank, out)
    }

    /// Stream the merged record for `rank` at exactly safe point `count`
    /// into `out` (the count-pinned restore direction — see
    /// [`CkptTransport::read_shard_at`]). The default re-encodes the
    /// materialized count-pinned shard; the master side has no torn-group
    /// problem (single atomic writer) and delegates to
    /// [`CkptTransport::write_merged_record`].
    fn write_merged_record_at(
        &self,
        rank: Option<u32>,
        count: u64,
        out: &mut dyn Write,
    ) -> Result<Option<u64>> {
        let Some(rank) = rank else {
            return self.write_merged_record(None, out);
        };
        let Some(snap) = self.read_shard_at(rank, count)? else {
            return Ok(None);
        };
        write_snapshot_record(&snap, out).map(Some)
    }

    /// Decode the `PPARPRG1` progress cursor carried by the newest usable
    /// snapshot (the reserved [`PROGRESS_FIELD`] extra field), checking the
    /// master record first and falling back to shard 0 (local-snapshot
    /// groups carry identical cursors on every shard — the safe-point
    /// clock is aggregate-symmetric). Snapshots written before the cursor
    /// existed — or with it disabled — have no such field and yield
    /// `Ok(None)`: the consumer replays classically (progress = start). A
    /// cursor that fails to decode degrades the same way; it must never
    /// fail a restore.
    fn read_progress(&self) -> Result<Option<RegionCursor>> {
        let mut bytes: Option<Vec<u8>> = None;
        let found = self.with_merged_master(&mut |snap| {
            bytes = snap.field(PROGRESS_FIELD).map(|b| b.to_vec());
            Ok(())
        })?;
        if !found {
            if let Some(snap) = self.read_merged_shard(0)? {
                bytes = snap.field(PROGRESS_FIELD).map(|b| b.to_vec());
            }
        }
        Ok(bytes.and_then(|b| RegionCursor::decode(&b).ok()))
    }

    /// Drain the chunk-dedup counters accumulated by this transport's
    /// write paths since the last drain. Zero for transports without a
    /// content-addressed medium; the checkpoint module folds the result
    /// into [`crate::CkptStats`] after every save.
    fn take_put_stats(&self) -> crate::cas::PutStats {
        crate::cas::PutStats::default()
    }

    /// Begin a chunk-dedup install of one already-encoded record from its
    /// announced chunk references (`chunks`, summing to `total_len`
    /// record bytes). Returns `Ok(None)` when the transport has no
    /// content-addressed store — callers fall back to
    /// [`CkptTransport::begin_raw`] and ship the whole record. The
    /// returned sink reports which chunks it lacks, so a wire caller
    /// ships only novel bytes.
    fn begin_raw_dedup<'a>(
        &'a self,
        _kind: RawRecordKind,
        _chunks: &[crate::cas::ChunkRef],
        _total_len: u64,
    ) -> Result<Option<Box<dyn DedupRecordSink + 'a>>> {
        Ok(None)
    }
}

/// Stream one materialized snapshot through the golden checksummed encoder
/// (shared by the count-pinned restore fallbacks).
pub(crate) fn write_snapshot_record(snap: &Snapshot, out: &mut dyn Write) -> Result<u64> {
    let fields: Vec<(&str, FieldSource<'_>)> = snap
        .fields
        .iter()
        .map(|(n, b)| (n.as_str(), FieldSource::Bytes(b)))
        .collect();
    let mut w = SnapshotWriter::new(out, &snap.meta(), fields.len() as u32)?;
    let mut scratch = Vec::new();
    for (name, source) in &fields {
        w.field(name, source, &mut scratch)?;
    }
    let (written, _) = w.finish()?;
    Ok(written)
}

/// Cap a sender-supplied record-size hint before using it as an
/// allocation size (a hint is advisory; a bogus huge one must not OOM the
/// service).
pub(crate) fn clamp_record_hint(len_hint: u64) -> usize {
    len_hint.min(1 << 28) as usize
}

/// The default [`CkptTransport::write_merged_record`]: materialize the
/// merged snapshot, then stream it through the golden encoder with the
/// checksum pass on (shared by overriding transports' slow paths).
pub(crate) fn write_merged_fallback(
    transport: &(impl CkptTransport + ?Sized),
    rank: Option<u32>,
    out: &mut dyn Write,
) -> Result<Option<u64>> {
    let snap = match rank {
        None => transport.read_merged_master()?,
        Some(r) => transport.read_merged_shard(r)?,
    };
    let Some(snap) = snap else {
        return Ok(None);
    };
    let fields: Vec<(&str, FieldSource<'_>)> = snap
        .fields
        .iter()
        .map(|(n, b)| (n.as_str(), FieldSource::Bytes(b)))
        .collect();
    let mut w = SnapshotWriter::new(out, &snap.meta(), fields.len() as u32)?;
    let mut scratch = Vec::new();
    for (name, source) in &fields {
        w.field(name, source, &mut scratch)?;
    }
    let (written, _) = w.finish()?;
    Ok(Some(written))
}

/// The default raw sink: buffer the record, then install it through the
/// transport's ordinary `put_*` methods (one decode + re-encode — the
/// price of a transport with no incremental medium).
struct BufferedRawSink<'a, T: ?Sized + CkptTransport> {
    transport: &'a T,
    kind: RawRecordKind,
    buf: Vec<u8>,
}

impl<T: ?Sized + CkptTransport> RawRecordSink for BufferedRawSink<'_, T> {
    fn write_chunk(&mut self, chunk: &[u8]) -> Result<()> {
        self.buf.extend_from_slice(chunk);
        Ok(())
    }

    fn commit(self: Box<Self>) -> Result<u64> {
        install_record_bytes(self.transport, self.kind, &self.buf)
    }

    fn abort(self: Box<Self>) {}
}

/// Install one verified, fully-buffered record through the `put_*` path.
fn install_record_bytes(
    transport: &(impl CkptTransport + ?Sized),
    kind: RawRecordKind,
    bytes: &[u8],
) -> Result<u64> {
    let mut scratch = Vec::new();
    match kind {
        RawRecordKind::Master | RawRecordKind::Shard(_) => {
            let snap = Snapshot::decode_trusted(bytes)?;
            let fields: Vec<(&str, FieldSource<'_>)> = snap
                .fields
                .iter()
                .map(|(n, b)| (n.as_str(), FieldSource::Bytes(b)))
                .collect();
            match kind {
                RawRecordKind::Master => {
                    if snap.rank.is_some() {
                        return Err(PparError::CorruptCheckpoint(format!(
                            "master install received a rank {:?} record",
                            snap.rank
                        )));
                    }
                    transport.put_master(&snap.meta(), &fields, &mut scratch)
                }
                RawRecordKind::Shard(rank) => {
                    if snap.rank != Some(rank) {
                        return Err(PparError::CorruptCheckpoint(format!(
                            "shard {rank} install received a rank {:?} record",
                            snap.rank
                        )));
                    }
                    transport.put_shard(&snap.meta(), &fields, &mut scratch)
                }
                _ => unreachable!(),
            }
        }
        RawRecordKind::MasterDelta { seq } | RawRecordKind::ShardDelta { seq, .. } => {
            let delta = DeltaSnapshot::decode_trusted(bytes)?;
            let expect_rank = match kind {
                RawRecordKind::MasterDelta { .. } => None,
                RawRecordKind::ShardDelta { rank, .. } => Some(rank),
                _ => unreachable!(),
            };
            if delta.meta.rank != expect_rank || delta.meta.seq != seq {
                return Err(PparError::CorruptCheckpoint(format!(
                    "delta install for rank {expect_rank:?} seq {seq} received a \
                     rank {:?} seq {} record",
                    delta.meta.rank, delta.meta.seq
                )));
            }
            // Sparse payloads arrive as (offset, bytes) patches; the
            // delta encoder wants ranges + one concatenated payload.
            struct SparseBuf {
                full_len: u64,
                ranges: Vec<std::ops::Range<usize>>,
                payload: Vec<u8>,
            }
            let sparse: Vec<Option<SparseBuf>> = delta
                .fields
                .iter()
                .map(|(_, payload)| match payload {
                    crate::delta::DeltaPayload::Full(_) => None,
                    crate::delta::DeltaPayload::Sparse { full_len, ranges } => {
                        let mut flat = SparseBuf {
                            full_len: *full_len,
                            ranges: Vec::with_capacity(ranges.len()),
                            payload: Vec::with_capacity(ranges.iter().map(|(_, b)| b.len()).sum()),
                        };
                        for (off, bytes) in ranges {
                            flat.ranges.push(*off as usize..*off as usize + bytes.len());
                            flat.payload.extend_from_slice(bytes);
                        }
                        Some(flat)
                    }
                })
                .collect();
            let fields: Vec<(&str, DeltaSource<'_>)> = delta
                .fields
                .iter()
                .zip(&sparse)
                .map(|((name, payload), flat)| {
                    let source = match (payload, flat) {
                        (crate::delta::DeltaPayload::Full(b), _) => {
                            DeltaSource::Full(FieldSource::Bytes(b))
                        }
                        (_, Some(flat)) => DeltaSource::DirtyBytes {
                            full_len: flat.full_len,
                            ranges: &flat.ranges,
                            payload: &flat.payload,
                        },
                        _ => unreachable!(),
                    };
                    (name.as_str(), source)
                })
                .collect();
            match expect_rank {
                None => transport.put_master_delta(&delta.meta, &fields, &mut scratch),
                Some(_) => transport.put_shard_delta(&delta.meta, &fields, &mut scratch),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// shared chain rules
// ---------------------------------------------------------------------------

/// The single source of truth for delta-chain step validity, shared by every
/// transport's header-only walk ([`chain_tip_with`]) and full merge
/// ([`merge_chain_with`]), so the restart target and the restored state can
/// never disagree on chain rules. Returns `Ok(false)` for a *stale* delta
/// (previous base generation — terminates the walk harmlessly); errors on
/// ordering violations.
pub(crate) fn chain_step_is_live(
    meta: &DeltaMeta,
    base_count: u64,
    expected_seq: u32,
    prev_count: u64,
) -> Result<bool> {
    if meta.base_count != base_count {
        return Ok(false);
    }
    if meta.seq != expected_seq {
        return Err(PparError::CorruptCheckpoint(format!(
            "delta file {expected_seq} carries sequence number {}",
            meta.seq
        )));
    }
    if meta.count <= prev_count {
        return Err(PparError::CorruptCheckpoint(format!(
            "delta {expected_seq} count {} does not advance past {prev_count}",
            meta.count
        )));
    }
    Ok(true)
}

/// Fold a delta chain onto `snap` (the base full snapshot), reading deltas
/// through `read_delta`. The chain is walked from seq 1 until the first
/// missing record; stale deltas terminate the walk harmlessly.
pub(crate) fn merge_chain_with(
    mut snap: Snapshot,
    read_delta: impl Fn(Option<u32>, u32) -> Result<Option<DeltaSnapshot>>,
) -> Result<Snapshot> {
    let base_count = snap.count;
    let mut seq = 1u32;
    while let Some(delta) = read_delta(snap.rank, seq)? {
        if !chain_step_is_live(&delta.meta, base_count, seq, snap.count)? {
            break;
        }
        delta.apply_to(&mut snap)?;
        seq += 1;
    }
    Ok(snap)
}

/// Fold a delta chain onto `snap`, stopping *before* any delta that would
/// advance the merged state past safe point `target` (the count-pinned
/// restore: a torn chain whose tip outruns the group commit serves the
/// committed prefix instead). Terminates like [`merge_chain_with`] on the
/// first missing or stale record.
pub(crate) fn merge_chain_to(
    mut snap: Snapshot,
    target: u64,
    read_delta: impl Fn(Option<u32>, u32) -> Result<Option<DeltaSnapshot>>,
) -> Result<Snapshot> {
    let base_count = snap.count;
    let mut seq = 1u32;
    while snap.count < target {
        let Some(delta) = read_delta(snap.rank, seq)? else {
            break;
        };
        if !chain_step_is_live(&delta.meta, base_count, seq, snap.count)?
            || delta.meta.count > target
        {
            break;
        }
        delta.apply_to(&mut snap)?;
        seq += 1;
    }
    Ok(snap)
}

/// The safe-point count at the tip of a base's delta chain, walking delta
/// *headers* only through `read_meta` (no payload is materialized).
pub(crate) fn chain_tip_with(
    base_count: u64,
    rank: Option<u32>,
    read_meta: impl Fn(Option<u32>, u32) -> Result<Option<DeltaMeta>>,
) -> Result<u64> {
    let mut count = base_count;
    let mut seq = 1u32;
    while let Some(meta) = read_meta(rank, seq)? {
        if !chain_step_is_live(&meta, base_count, seq, count)? {
            break;
        }
        count = meta.count;
        seq += 1;
    }
    Ok(count)
}

// ---------------------------------------------------------------------------
// in-memory transport
// ---------------------------------------------------------------------------

/// An in-memory checkpoint transport: the same snapshot/delta record bytes a
/// [`crate::store::CheckpointStore`] would put on disk, held in process
/// memory instead.
///
/// This is the hand-off vehicle for **live reshape**: at a safe-point
/// crossing the engine streams a mode-independent master snapshot into a
/// `MemTransport`, the run retargets (new team shape, new aggregate shape,
/// even a different engine family), and the successor installs the state
/// straight from memory — no process exit, no disk round-trip. It also
/// serves delta-record hand-offs (rank-level dirty-range gathers) and
/// disk-free checkpointing for benches.
///
/// Record bytes are byte-identical to the file-backed store's output for
/// the same content (shared [`SnapshotWriter`] encoder; property-tested),
/// so state can cross transports freely.
#[derive(Default)]
pub struct MemTransport {
    master: Mutex<Option<Vec<u8>>>,
    shards: Mutex<HashMap<u32, Vec<u8>>>,
    /// Delta records keyed by `(rank-or-MASTER_RANK, seq)`.
    deltas: Mutex<HashMap<(u32, u32), Vec<u8>>>,
    /// Retired record buffers recycled into raw-install sinks: repeated
    /// streamed installs then run at warm-page copy speed instead of
    /// faulting a fresh multi-MiB mapping in per checkpoint.
    spare: Mutex<Vec<Vec<u8>>>,
    snapshots: AtomicU64,
    bytes_written: AtomicU64,
}

/// Buffers kept in the recycle pool (beyond this, retired buffers are
/// simply freed).
const SPARE_POOL_CAP: usize = 8;

/// Total *capacity* the recycle pool may retain. The count cap alone let a
/// large job pin up to eight multi-GiB record buffers for the life of the
/// transport; bounding retained bytes caps that at a fixed footprint while
/// still keeping steady-state checkpointing allocation-free for records up
/// to tens of MiB.
const SPARE_POOL_MAX_BYTES: usize = 256 << 20;

impl MemTransport {
    /// An empty in-memory transport.
    pub fn new() -> MemTransport {
        MemTransport::default()
    }

    /// Records written so far (full + delta, master + shards).
    pub fn snapshots_stored(&self) -> u64 {
        self.snapshots.load(Ordering::Relaxed)
    }

    /// Total record bytes streamed into this transport so far.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written.load(Ordering::Relaxed)
    }

    /// Encoded length of the currently held master snapshot, if any.
    pub fn master_len(&self) -> Option<usize> {
        self.master.lock().as_ref().map(|b| b.len())
    }

    /// Raw encoded bytes of the currently held master snapshot, if any
    /// (byte-equality assertions against the file-backed store).
    pub fn master_bytes(&self) -> Option<Vec<u8>> {
        self.master.lock().clone()
    }

    /// Raw encoded bytes of any held record (byte-equality assertions in
    /// tests and benches — e.g. streamed installs against local puts).
    pub fn record_bytes(&self, kind: RawRecordKind) -> Option<Vec<u8>> {
        match kind {
            RawRecordKind::Master => self.master.lock().clone(),
            RawRecordKind::Shard(rank) => self.shards.lock().get(&rank).cloned(),
            RawRecordKind::MasterDelta { seq } => {
                self.deltas.lock().get(&(MASTER_RANK, seq)).cloned()
            }
            RawRecordKind::ShardDelta { rank, seq } => {
                self.deltas.lock().get(&(rank, seq)).cloned()
            }
        }
    }

    /// Drop every held record (counters are kept).
    pub fn clear(&self) {
        *self.master.lock() = None;
        self.shards.lock().clear();
        self.deltas.lock().clear();
    }

    fn delta_key(rank: Option<u32>, seq: u32) -> (u32, u32) {
        (rank.unwrap_or(MASTER_RANK), seq)
    }

    /// Pre-size the record buffer from the fields' known lengths (growth
    /// reallocs on a multi-MiB hand-off would copy the payload several
    /// extra times).
    fn reserve_hint(fields: &[(&str, FieldSource<'_>)]) -> usize {
        let payload: usize = fields
            .iter()
            .map(|(name, source)| {
                let body = match source {
                    FieldSource::Bytes(b) => b.len(),
                    FieldSource::Cell(cell) => cell.known_byte_len().unwrap_or(0),
                };
                name.len() + 16 + body
            })
            .sum();
        payload + 128
    }

    /// Encode one full record into `buf` (cleared and grown to the fields'
    /// known lengths first — callers pass a recycled buffer so repeated
    /// hand-offs run copy-speed with no fresh multi-MiB mapping to fault
    /// in).
    fn encode_full(
        &self,
        mut buf: Vec<u8>,
        meta: &SnapshotMeta,
        fields: &[(&str, FieldSource<'_>)],
        scratch: &mut Vec<u8>,
    ) -> Result<(u64, Vec<u8>)> {
        buf.clear();
        buf.reserve(MemTransport::reserve_hint(fields));
        // Unchecksummed: the record never leaves this process, so the CRC
        // pass that guards disk files is skipped (the trailer is zero; the
        // trusted decode ignores it).
        let mut w = SnapshotWriter::new_unchecksummed(buf, meta, fields.len() as u32)?;
        for (name, source) in fields {
            w.field(name, source, scratch)?;
        }
        let (written, buf) = w.finish()?;
        self.snapshots.fetch_add(1, Ordering::Relaxed);
        self.bytes_written.fetch_add(written, Ordering::Relaxed);
        Ok((written, buf))
    }

    fn encode_delta(
        &self,
        meta: &DeltaMeta,
        fields: &[(&str, DeltaSource<'_>)],
        scratch: &mut Vec<u8>,
    ) -> Result<(u64, Vec<u8>)> {
        let mut w = SnapshotWriter::new_delta_unchecksummed(Vec::new(), meta, fields.len() as u32)?;
        for (name, source) in fields {
            w.delta_field(name, source, scratch)?;
        }
        let (written, buf) = w.finish()?;
        self.snapshots.fetch_add(1, Ordering::Relaxed);
        self.bytes_written.fetch_add(written, Ordering::Relaxed);
        Ok((written, buf))
    }

    fn read_delta(&self, rank: Option<u32>, seq: u32) -> Result<Option<DeltaSnapshot>> {
        match self.deltas.lock().get(&MemTransport::delta_key(rank, seq)) {
            Some(bytes) => DeltaSnapshot::decode_trusted(bytes).map(Some),
            None => Ok(None),
        }
    }

    fn read_delta_meta(&self, rank: Option<u32>, seq: u32) -> Result<Option<DeltaMeta>> {
        match self.deltas.lock().get(&MemTransport::delta_key(rank, seq)) {
            Some(bytes) => DeltaMeta::decode_trusted(bytes).map(Some),
            None => Ok(None),
        }
    }

    /// Return a retired record buffer to the recycle pool. Retention is
    /// bounded in count *and* bytes (see [`SPARE_POOL_MAX_BYTES`]): after
    /// a large job the pool must not pin multi-GiB buffers forever.
    fn recycle(&self, mut buf: Vec<u8>) {
        let mut pool = self.spare.lock();
        let retained: usize = pool.iter().map(Vec::capacity).sum();
        if pool.len() < SPARE_POOL_CAP
            && buf.capacity() > 0
            && retained.saturating_add(buf.capacity()) <= SPARE_POOL_MAX_BYTES
        {
            buf.clear();
            pool.push(buf);
        }
    }

    /// Stream `bytes` (a zero-trailer in-memory record) into `out` as a
    /// checksummed record: body copied through in cache-sized blocks with
    /// the CRC folded in on the same pass, real trailer appended.
    fn stream_record_checksummed(bytes: &[u8], out: &mut dyn Write) -> Result<u64> {
        let body = &bytes[..bytes.len() - 4];
        let mut crc = Crc32::new();
        for block in body.chunks(256 << 10) {
            crc.update(block);
            out.write_all(block)?;
        }
        out.write_all(&crc.finish().to_le_bytes())?;
        Ok(bytes.len() as u64)
    }
}

/// Raw streamed install into process memory: chunks append to a recycled
/// buffer; commit zeroes the CRC trailer (the in-memory convention — the
/// wire CRC was already verified by the caller, and in-process reads are
/// trusted) and swaps the record in atomically.
struct MemRawSink<'a> {
    mem: &'a MemTransport,
    kind: RawRecordKind,
    buf: Vec<u8>,
}

impl RawRecordSink for MemRawSink<'_> {
    fn write_chunk(&mut self, chunk: &[u8]) -> Result<()> {
        self.buf.extend_from_slice(chunk);
        Ok(())
    }

    fn commit(mut self: Box<Self>) -> Result<u64> {
        let mut buf = std::mem::take(&mut self.buf);
        if buf.len() < 12 {
            return Err(PparError::CorruptCheckpoint(
                "streamed record too short".into(),
            ));
        }
        // Structural sanity before the swap: a wrong-kind record must not
        // displace a good one (its CRC was valid, but the protocol layer
        // may have routed it to the wrong key).
        match self.kind {
            RawRecordKind::Master | RawRecordKind::Shard(_) => {
                let view = SnapshotView::decode_trusted(&buf)?;
                let expect = match self.kind {
                    RawRecordKind::Master => None,
                    RawRecordKind::Shard(r) => Some(r),
                    _ => unreachable!(),
                };
                if view.rank != expect {
                    return Err(PparError::CorruptCheckpoint(format!(
                        "install for rank {expect:?} received a rank {:?} record",
                        view.rank
                    )));
                }
            }
            RawRecordKind::MasterDelta { seq } | RawRecordKind::ShardDelta { seq, .. } => {
                let meta = DeltaMeta::decode_trusted(&buf)?;
                let expect = match self.kind {
                    RawRecordKind::MasterDelta { .. } => None,
                    RawRecordKind::ShardDelta { rank, .. } => Some(rank),
                    _ => unreachable!(),
                };
                if meta.rank != expect || meta.seq != seq {
                    return Err(PparError::CorruptCheckpoint(format!(
                        "delta install for rank {expect:?} seq {seq} received a \
                         rank {:?} seq {} record",
                        meta.rank, meta.seq
                    )));
                }
            }
        }
        let written = buf.len() as u64;
        let n = buf.len();
        buf[n - 4..].fill(0);
        let replaced = match self.kind {
            RawRecordKind::Master => self.mem.master.lock().replace(buf),
            RawRecordKind::Shard(rank) => self.mem.shards.lock().insert(rank, buf),
            RawRecordKind::MasterDelta { seq } => self
                .mem
                .deltas
                .lock()
                .insert(MemTransport::delta_key(None, seq), buf),
            RawRecordKind::ShardDelta { rank, seq } => self
                .mem
                .deltas
                .lock()
                .insert(MemTransport::delta_key(Some(rank), seq), buf),
        };
        if let Some(old) = replaced {
            self.mem.recycle(old);
        }
        self.mem.snapshots.fetch_add(1, Ordering::Relaxed);
        self.mem.bytes_written.fetch_add(written, Ordering::Relaxed);
        Ok(written)
    }

    fn abort(mut self: Box<Self>) {
        self.mem.recycle(std::mem::take(&mut self.buf));
    }
}

impl CkptTransport for MemTransport {
    fn describe(&self) -> &'static str {
        "memory"
    }

    fn put_master(
        &self,
        meta: &SnapshotMeta,
        fields: &[(&str, FieldSource<'_>)],
        scratch: &mut Vec<u8>,
    ) -> Result<u64> {
        debug_assert!(meta.rank.is_none(), "master snapshot must have rank None");
        // Recycle the previous master record's allocation.
        let recycled = self.master.lock().take().unwrap_or_default();
        let (written, buf) = self.encode_full(recycled, meta, fields, scratch)?;
        *self.master.lock() = Some(buf);
        Ok(written)
    }

    fn put_shard(
        &self,
        meta: &SnapshotMeta,
        fields: &[(&str, FieldSource<'_>)],
        scratch: &mut Vec<u8>,
    ) -> Result<u64> {
        let rank = meta
            .rank
            .ok_or_else(|| PparError::InvalidPlan("shard snapshot needs a rank".into()))?;
        let recycled = self.shards.lock().remove(&rank).unwrap_or_default();
        let (written, buf) = self.encode_full(recycled, meta, fields, scratch)?;
        self.shards.lock().insert(rank, buf);
        Ok(written)
    }

    fn put_master_delta(
        &self,
        meta: &DeltaMeta,
        fields: &[(&str, DeltaSource<'_>)],
        scratch: &mut Vec<u8>,
    ) -> Result<u64> {
        debug_assert!(meta.rank.is_none(), "master delta must have rank None");
        let (written, buf) = self.encode_delta(meta, fields, scratch)?;
        self.deltas
            .lock()
            .insert(MemTransport::delta_key(None, meta.seq), buf);
        Ok(written)
    }

    fn put_shard_delta(
        &self,
        meta: &DeltaMeta,
        fields: &[(&str, DeltaSource<'_>)],
        scratch: &mut Vec<u8>,
    ) -> Result<u64> {
        let rank = meta
            .rank
            .ok_or_else(|| PparError::InvalidPlan("shard delta needs a rank".into()))?;
        let (written, buf) = self.encode_delta(meta, fields, scratch)?;
        self.deltas
            .lock()
            .insert(MemTransport::delta_key(Some(rank), meta.seq), buf);
        Ok(written)
    }

    fn read_merged_master(&self) -> Result<Option<Snapshot>> {
        // Trusted decode: the bytes never left this process, so the CRC
        // pass that guards disk files is skipped (part of the live
        // reshape's "no disk round-trip" latency win).
        let base = match &*self.master.lock() {
            Some(bytes) => Snapshot::decode_trusted(bytes)?,
            None => return Ok(None),
        };
        merge_chain_with(base, |rank, seq| self.read_delta(rank, seq)).map(Some)
    }

    fn read_merged_shard(&self, rank: u32) -> Result<Option<Snapshot>> {
        let base = match self.shards.lock().get(&rank) {
            Some(bytes) => Snapshot::decode_trusted(bytes)?,
            None => return Ok(None),
        };
        merge_chain_with(base, |rank, seq| self.read_delta(rank, seq)).map(Some)
    }

    fn with_merged_master(
        &self,
        install: &mut dyn FnMut(&SnapshotView<'_>) -> Result<()>,
    ) -> Result<bool> {
        // Fast path: no delta chain over the master record — hand the
        // caller borrowed payload slices straight out of the record (one
        // copy total: record → cells). With a chain pending, fall back to
        // the owned merge.
        let has_master_deltas = self
            .deltas
            .lock()
            .keys()
            .any(|(rank, _)| *rank == MASTER_RANK);
        if !has_master_deltas {
            let guard = self.master.lock();
            let Some(bytes) = guard.as_ref() else {
                return Ok(false);
            };
            install(&SnapshotView::decode_trusted(bytes)?)?;
            return Ok(true);
        }
        match self.read_merged_master()? {
            Some(snap) => {
                install(&SnapshotView::of(&snap))?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    fn restart_count(&self) -> Result<Option<u64>> {
        // View decodes only: the count lives in the header, and this runs
        // once per rank when a resume is armed — materializing payload
        // copies here would tax the latency-critical hand-off path.
        let master_count = self
            .master
            .lock()
            .as_ref()
            .map(|b| SnapshotView::decode_trusted(b).map(|s| s.count))
            .transpose()?;
        if let Some(count) = master_count {
            return Ok(Some(chain_tip_with(count, None, |rank, seq| {
                self.read_delta_meta(rank, seq)
            })?));
        }
        let shard0_count = self
            .shards
            .lock()
            .get(&0)
            .map(|b| SnapshotView::decode_trusted(b).map(|s| s.count))
            .transpose()?;
        if let Some(count) = shard0_count {
            return Ok(Some(chain_tip_with(count, Some(0), |rank, seq| {
                self.read_delta_meta(rank, seq)
            })?));
        }
        Ok(None)
    }

    fn clear_deltas(&self, rank: Option<u32>) -> Result<()> {
        let tag = rank.unwrap_or(MASTER_RANK);
        self.deltas.lock().retain(|(r, _), _| *r != tag);
        Ok(())
    }

    fn clear_all_deltas(&self) -> Result<()> {
        self.deltas.lock().clear();
        Ok(())
    }

    fn begin_raw<'a>(
        &'a self,
        kind: RawRecordKind,
        len_hint: u64,
    ) -> Result<Box<dyn RawRecordSink + 'a>> {
        let mut buf = self.spare.lock().pop().unwrap_or_default();
        buf.reserve(clamp_record_hint(len_hint));
        Ok(Box::new(MemRawSink {
            mem: self,
            kind,
            buf,
        }))
    }

    fn write_merged_record(&self, rank: Option<u32>, out: &mut dyn Write) -> Result<Option<u64>> {
        // Fast path: no delta chain pending over this base — stream the
        // held record bytes straight out, computing the wire CRC on the
        // same pass (the stored trailer is zero by convention). With a
        // chain, fall back to the materialized merge.
        let chain_tag = rank.unwrap_or(MASTER_RANK);
        let has_deltas = self.deltas.lock().keys().any(|(r, _)| *r == chain_tag);
        if !has_deltas {
            match rank {
                None => {
                    let guard = self.master.lock();
                    let Some(bytes) = guard.as_ref() else {
                        return Ok(None);
                    };
                    return MemTransport::stream_record_checksummed(bytes, out).map(Some);
                }
                Some(r) => {
                    let guard = self.shards.lock();
                    let Some(bytes) = guard.get(&r) else {
                        return Ok(None);
                    };
                    return MemTransport::stream_record_checksummed(bytes, out).map(Some);
                }
            }
        }
        write_merged_fallback(self, rank, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::CheckpointStore;
    use ppar_core::shared::SharedVec;
    use ppar_core::state::StateCell;
    use std::path::PathBuf;
    use std::sync::Arc;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ppar_transport_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn meta(count: u64, rank: Option<u32>) -> SnapshotMeta {
        SnapshotMeta {
            mode_tag: "smp4".into(),
            count,
            rank,
            nranks: 1,
        }
    }

    #[test]
    fn mem_master_roundtrip_and_counts() {
        let t = MemTransport::new();
        assert!(t.read_merged_master().unwrap().is_none());
        assert_eq!(t.restart_count().unwrap(), None);

        let payload = vec![1u8, 2, 3, 4];
        t.put_master(
            &meta(7, None),
            &[("G", FieldSource::Bytes(&payload))],
            &mut Vec::new(),
        )
        .unwrap();
        let snap = t.read_merged_master().unwrap().unwrap();
        assert_eq!(snap.count, 7);
        assert_eq!(snap.field("G").unwrap(), payload.as_slice());
        assert_eq!(t.restart_count().unwrap(), Some(7));
        assert_eq!(t.snapshots_stored(), 1);
        assert!(t.bytes_written() > 0);
    }

    #[test]
    fn mem_shard_roundtrip_prefers_master_for_restart_count() {
        let t = MemTransport::new();
        let payload = vec![9u8; 16];
        let mut m = meta(5, Some(2));
        m.nranks = 4;
        t.put_shard(&m, &[("G", FieldSource::Bytes(&payload))], &mut Vec::new())
            .unwrap();
        assert!(t.read_merged_shard(1).unwrap().is_none());
        assert_eq!(t.read_merged_shard(2).unwrap().unwrap().count, 5);
        // restart_count falls back to shard 0 only.
        assert_eq!(t.restart_count().unwrap(), None);
        let mut m0 = meta(9, Some(0));
        m0.nranks = 4;
        t.put_shard(&m0, &[("G", FieldSource::Bytes(&payload))], &mut Vec::new())
            .unwrap();
        assert_eq!(t.restart_count().unwrap(), Some(9));
    }

    #[test]
    fn mem_delta_chain_merges_and_gc_clears() {
        let t = MemTransport::new();
        let v = SharedVec::from_vec((0..4000).map(|i| i as f64).collect());
        t.put_master(
            &meta(10, None),
            &[("G", FieldSource::Cell(&v))],
            &mut Vec::new(),
        )
        .unwrap();
        v.clear_dirty();

        v.set(3, -1.0);
        let ranges = v.dirty_byte_ranges();
        let dm = DeltaMeta {
            mode_tag: "smp4".into(),
            count: 20,
            base_count: 10,
            seq: 1,
            rank: None,
            nranks: 1,
        };
        t.put_master_delta(
            &dm,
            &[(
                "G",
                DeltaSource::DirtyCell {
                    cell: &v,
                    ranges: &ranges,
                },
            )],
            &mut Vec::new(),
        )
        .unwrap();

        let merged = t.read_merged_master().unwrap().unwrap();
        assert_eq!(merged.count, 20, "restart replays to the delta");
        assert_eq!(merged.field("G").unwrap(), v.save_bytes().as_slice());
        assert_eq!(t.restart_count().unwrap(), Some(20));

        t.clear_deltas(None).unwrap();
        assert_eq!(t.read_merged_master().unwrap().unwrap().count, 10);
    }

    /// The transport contract: for identical content, the in-memory record
    /// equals the file the disk store writes byte-for-byte except the
    /// 4-byte CRC trailer (zero in memory — the checksum pass guards the
    /// durable medium only), and both decode to the same snapshot.
    #[test]
    fn mem_bytes_equal_file_bytes_modulo_trailer() {
        let dir = tmpdir("golden");
        let store = CheckpointStore::new(&dir).unwrap();
        let mem = MemTransport::new();
        let v = SharedVec::from_vec((0..512).map(|i| (i as f64).sin()).collect());
        let m = meta(3, None);
        let fields: Vec<(&str, FieldSource<'_>)> = vec![("G", FieldSource::Cell(&v))];
        let on_disk = store.put_master(&m, &fields, &mut Vec::new()).unwrap();
        let in_mem = mem.put_master(&m, &fields, &mut Vec::new()).unwrap();
        assert_eq!(on_disk, in_mem);
        let file = std::fs::read(dir.join("ckpt_master.bin")).unwrap();
        let record = mem.master_bytes().unwrap();
        assert_eq!(record.len(), file.len());
        assert_eq!(record[..record.len() - 4], file[..file.len() - 4]);
        assert_eq!(&record[record.len() - 4..], &[0, 0, 0, 0]);
        assert_eq!(
            mem.read_merged_master().unwrap().unwrap(),
            store.read_merged_master().unwrap().unwrap(),
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Both transports are interchangeable behind the trait object.
    #[test]
    fn trait_object_dispatch_works_for_both() {
        let dir = tmpdir("dyn");
        let transports: Vec<Arc<dyn CkptTransport>> = vec![
            Arc::new(CheckpointStore::new(&dir).unwrap()),
            Arc::new(MemTransport::new()),
        ];
        for t in &transports {
            let payload = vec![5u8; 8];
            t.put_master(
                &meta(1, None),
                &[("x", FieldSource::Bytes(&payload))],
                &mut Vec::new(),
            )
            .unwrap();
            let snap = t.read_merged_master().unwrap().unwrap();
            assert_eq!(snap.field("x").unwrap(), payload.as_slice());
            assert_eq!(t.restart_count().unwrap(), Some(1));
            t.clear_all_deltas().unwrap();
        }
        assert_eq!(transports[0].describe(), "file");
        assert_eq!(transports[1].describe(), "memory");
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn sample_snapshot(count: u64, rank: Option<u32>) -> Snapshot {
        Snapshot {
            mode_tag: "smp4".into(),
            count,
            rank,
            nranks: 1,
            fields: vec![
                ("G".into(), (0..9000u32).map(|i| i as u8).collect()),
                ("energy".into(), 42.0f64.to_le_bytes().to_vec()),
            ],
        }
    }

    /// A raw streamed install (checksummed wire bytes fed in chunks) must
    /// land exactly where a direct `put_*` would, on every transport, and
    /// an aborted stream must leave the previous record untouched.
    #[test]
    fn raw_sink_install_matches_put_and_abort_preserves_prior() {
        let dir = tmpdir("rawsink");
        let transports: Vec<Box<dyn CkptTransport>> = vec![
            Box::new(CheckpointStore::new(&dir).unwrap()),
            Box::new(MemTransport::new()),
        ];
        for t in &transports {
            let snap = sample_snapshot(5, None);
            let wire = snap.encode(); // checksummed golden encoding
            let mut sink = t
                .begin_raw(RawRecordKind::Master, wire.len() as u64)
                .unwrap();
            for chunk in wire.chunks(7) {
                sink.write_chunk(chunk).unwrap();
            }
            assert_eq!(sink.commit().unwrap(), wire.len() as u64);
            assert_eq!(
                t.read_merged_master().unwrap().unwrap(),
                snap,
                "{}",
                t.describe()
            );

            // Aborted second install: the committed record stays.
            let mut sink = t.begin_raw(RawRecordKind::Master, 0).unwrap();
            sink.write_chunk(b"partial garbage").unwrap();
            sink.abort();
            assert_eq!(
                t.read_merged_master().unwrap().unwrap(),
                snap,
                "{} after abort",
                t.describe()
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Shard and delta kinds route to the right keys through the raw sink.
    #[test]
    #[allow(clippy::single_range_in_vec_init)] // ranges here are span data
    fn raw_sink_routes_shards_and_deltas() {
        let t = MemTransport::new();
        let shard = sample_snapshot(4, Some(2));
        let wire = shard.encode();
        let mut sink = t.begin_raw(RawRecordKind::Shard(2), 0).unwrap();
        sink.write_chunk(&wire).unwrap();
        sink.commit().unwrap();
        assert_eq!(t.read_merged_shard(2).unwrap().unwrap(), shard);

        // Kind/record mismatch is rejected before any swap.
        let mut sink = t.begin_raw(RawRecordKind::Shard(9), 0).unwrap();
        sink.write_chunk(&wire).unwrap();
        assert!(sink.commit().is_err());
        assert!(t.read_merged_shard(9).unwrap().is_none());
    }

    /// `write_merged_record` emits a checksummed record that decodes to
    /// the merged state — via the copy-through fast path (no deltas) and
    /// the materializing fallback (chain pending) alike, on both
    /// transports.
    #[test]
    #[allow(clippy::single_range_in_vec_init)] // ranges here are span data
    fn write_merged_record_roundtrips_checksummed() {
        let dir = tmpdir("merged_rec");
        let transports: Vec<Box<dyn CkptTransport>> = vec![
            Box::new(CheckpointStore::new(&dir).unwrap()),
            Box::new(MemTransport::new()),
        ];
        for t in &transports {
            assert!(t
                .write_merged_record(None, &mut Vec::new())
                .unwrap()
                .is_none());
            let snap = sample_snapshot(10, None);
            let fields: Vec<(&str, FieldSource<'_>)> = snap
                .fields
                .iter()
                .map(|(n, b)| (n.as_str(), FieldSource::Bytes(b)))
                .collect();
            t.put_master(&snap.meta(), &fields, &mut Vec::new())
                .unwrap();

            // Fast path: no chain.
            let mut out = Vec::new();
            let n = t.write_merged_record(None, &mut out).unwrap().unwrap();
            assert_eq!(n as usize, out.len());
            assert_eq!(Snapshot::decode(&out).unwrap(), snap, "{}", t.describe());

            // Fallback path: delta chain pending.
            let dm = DeltaMeta {
                mode_tag: "smp4".into(),
                count: 20,
                base_count: 10,
                seq: 1,
                rank: None,
                nranks: 1,
            };
            let patch = [7u8; 4];
            t.put_master_delta(
                &dm,
                &[(
                    "G",
                    DeltaSource::DirtyBytes {
                        full_len: 9000,
                        ranges: &[0..4],
                        payload: &patch,
                    },
                )],
                &mut Vec::new(),
            )
            .unwrap();
            let mut out = Vec::new();
            t.write_merged_record(None, &mut out).unwrap().unwrap();
            let merged = Snapshot::decode(&out).unwrap();
            assert_eq!(merged.count, 20, "{}", t.describe());
            assert_eq!(&merged.field("G").unwrap()[..4], &patch);
            t.clear_all_deltas().unwrap();
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Delta records stream through the *buffered* fallback sink too (the
    /// decode → re-encode path used by transports without an incremental
    /// medium), landing byte-compatible with a direct `put_*_delta`.
    #[test]
    #[allow(clippy::single_range_in_vec_init)] // ranges here are span data
    fn buffered_fallback_sink_installs_deltas() {
        // A minimal transport with no overrides: wrap MemTransport but
        // only forward the trait's required methods, so the default
        // BufferedRawSink is exercised.
        struct Plain(MemTransport);
        impl CkptTransport for Plain {
            fn describe(&self) -> &'static str {
                "plain"
            }
            fn put_master(
                &self,
                m: &SnapshotMeta,
                f: &[(&str, FieldSource<'_>)],
                s: &mut Vec<u8>,
            ) -> Result<u64> {
                self.0.put_master(m, f, s)
            }
            fn put_shard(
                &self,
                m: &SnapshotMeta,
                f: &[(&str, FieldSource<'_>)],
                s: &mut Vec<u8>,
            ) -> Result<u64> {
                self.0.put_shard(m, f, s)
            }
            fn put_master_delta(
                &self,
                m: &DeltaMeta,
                f: &[(&str, DeltaSource<'_>)],
                s: &mut Vec<u8>,
            ) -> Result<u64> {
                self.0.put_master_delta(m, f, s)
            }
            fn put_shard_delta(
                &self,
                m: &DeltaMeta,
                f: &[(&str, DeltaSource<'_>)],
                s: &mut Vec<u8>,
            ) -> Result<u64> {
                self.0.put_shard_delta(m, f, s)
            }
            fn read_merged_master(&self) -> Result<Option<Snapshot>> {
                self.0.read_merged_master()
            }
            fn read_merged_shard(&self, rank: u32) -> Result<Option<Snapshot>> {
                self.0.read_merged_shard(rank)
            }
            fn restart_count(&self) -> Result<Option<u64>> {
                self.0.restart_count()
            }
            fn clear_deltas(&self, rank: Option<u32>) -> Result<()> {
                self.0.clear_deltas(rank)
            }
            fn clear_all_deltas(&self) -> Result<()> {
                self.0.clear_all_deltas()
            }
        }

        let t = Plain(MemTransport::new());
        let snap = sample_snapshot(10, None);
        let mut sink = t.begin_raw(RawRecordKind::Master, 0).unwrap();
        sink.write_chunk(&snap.encode()).unwrap();
        sink.commit().unwrap();

        // Build a real delta record via the golden delta encoder, stream
        // it through the fallback sink, and check the merge result.
        let dm = DeltaMeta {
            mode_tag: "smp4".into(),
            count: 20,
            base_count: 10,
            seq: 1,
            rank: None,
            nranks: 1,
        };
        let patch = [9u8; 8];
        let mut w = SnapshotWriter::new_delta(Vec::new(), &dm, 1).unwrap();
        w.delta_field_sparse_bytes("G", 9000, &[16..24], &patch)
            .unwrap();
        let (_, wire) = w.finish().unwrap();
        let mut sink = t
            .begin_raw(RawRecordKind::MasterDelta { seq: 1 }, wire.len() as u64)
            .unwrap();
        for chunk in wire.chunks(11) {
            sink.write_chunk(chunk).unwrap();
        }
        sink.commit().unwrap();
        let merged = t.read_merged_master().unwrap().unwrap();
        assert_eq!(merged.count, 20);
        assert_eq!(&merged.field("G").unwrap()[16..24], &patch);

        // Wrong seq routing is rejected.
        let mut sink = t
            .begin_raw(RawRecordKind::MasterDelta { seq: 3 }, 0)
            .unwrap();
        sink.write_chunk(&wire).unwrap();
        assert!(sink.commit().is_err());
    }

    proptest::proptest! {
        /// The acceptance-criterion property: for random field mixes, the
        /// in-memory transport round-trip is byte-identical to a file-backed
        /// save + load of the same content (shared golden encoder on the
        /// way in, shared reader + chain rules on the way out).
        #[test]
        fn prop_mem_roundtrip_matches_file_roundtrip(
            fields in proptest::collection::vec(
                ("[a-z]{1,8}", proptest::collection::vec(proptest::prelude::any::<u8>(), 0..600)),
                0..6,
            ),
            count in 0u64..1_000_000,
        ) {
            let dir = tmpdir("prop");
            let store = CheckpointStore::new(&dir).unwrap();
            let mem = MemTransport::new();
            let m = SnapshotMeta { mode_tag: "hyb2x4".into(), count, rank: None, nranks: 2 };
            let refs: Vec<(&str, FieldSource<'_>)> = fields
                .iter()
                .map(|(n, b)| (n.as_str(), FieldSource::Bytes(b.as_slice())))
                .collect();
            store.put_master(&m, &refs, &mut Vec::new()).unwrap();
            mem.put_master(&m, &refs, &mut Vec::new()).unwrap();

            // Byte-identical records modulo the CRC trailer (zero in
            // memory; the shared golden encoder produced everything else)...
            let file = std::fs::read(dir.join("ckpt_master.bin")).unwrap();
            let record = mem.master_bytes().unwrap();
            proptest::prop_assert_eq!(record.len(), file.len());
            proptest::prop_assert_eq!(&record[..record.len() - 4], &file[..file.len() - 4]);
            // ...and identical decoded snapshots through each side's reader:
            // the round-trip is byte-identical per field.
            let from_file = store.read_merged_master().unwrap().unwrap();
            let from_mem = mem.read_merged_master().unwrap().unwrap();
            proptest::prop_assert_eq!(from_file, from_mem);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}
