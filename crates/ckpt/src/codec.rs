//! Portable binary serde codec for checkpoint payloads.
//!
//! Application-level checkpointing demands a format that is (a) portable
//! across heterogeneous Grid resources and (b) minimal — "the amount of
//! saved information must be minimal, as Grids have dedicated remote storage
//! elements" (§I). This codec is a compact, non-self-describing binary
//! encoding in the spirit of bincode, written from scratch:
//!
//! * fixed-width integers and floats, little-endian;
//! * `bool` as one byte (0/1), `char` as its `u32` scalar value;
//! * strings/byte-slices/sequences/maps prefixed by a `u64` length;
//! * `Option` as a one-byte tag followed by the value;
//! * structs/tuples as their fields in order, no framing;
//! * enum variants as a `u32` variant index followed by the content.
//!
//! Because the encoding is not self-describing, `deserialize_any` is
//! unsupported — exactly like the wire formats used by MPI-era checkpoint
//! libraries. Round-tripping is guaranteed for any type whose `Deserialize`
//! mirrors its `Serialize` (all derived impls).

use std::fmt::{self, Display};

use serde::de::{self, DeserializeOwned, IntoDeserializer, Visitor};
use serde::ser::{self, Serialize};

use ppar_core::error::PparError;

/// Codec error (wraps into [`PparError::Codec`]).
#[derive(Debug)]
pub struct CodecError(pub String);

impl Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CodecError {}

impl ser::Error for CodecError {
    fn custom<T: Display>(msg: T) -> Self {
        CodecError(msg.to_string())
    }
}

impl de::Error for CodecError {
    fn custom<T: Display>(msg: T) -> Self {
        CodecError(msg.to_string())
    }
}

impl From<CodecError> for PparError {
    fn from(e: CodecError) -> Self {
        PparError::Codec(e.0)
    }
}

/// Serialize `value` to bytes.
pub fn to_bytes<T: Serialize>(value: &T) -> Result<Vec<u8>, PparError> {
    let mut out = Vec::with_capacity(128);
    to_bytes_into(value, &mut out)?;
    Ok(out)
}

/// Serialize `value` appending into `out` (capacity-reusing form of
/// [`to_bytes`]; lets snapshot writers serialize serde state straight into
/// a persistent scratch buffer with no intermediate allocation).
pub fn to_bytes_into<T: Serialize>(value: &T, out: &mut Vec<u8>) -> Result<(), PparError> {
    let mut ser = Serializer { out };
    value.serialize(&mut ser).map_err(PparError::from)
}

/// Deserialize a value from bytes produced by [`to_bytes`]. Fails on
/// trailing garbage.
pub fn from_bytes<T: DeserializeOwned>(bytes: &[u8]) -> Result<T, PparError> {
    let mut de = Deserializer { input: bytes };
    let value = T::deserialize(&mut de).map_err(PparError::from)?;
    if !de.input.is_empty() {
        return Err(PparError::Codec(format!(
            "{} trailing bytes after value",
            de.input.len()
        )));
    }
    Ok(value)
}

// ---------------------------------------------------------------------------
// Serializer
// ---------------------------------------------------------------------------

struct Serializer<'b> {
    out: &'b mut Vec<u8>,
}

impl Serializer<'_> {
    fn put(&mut self, bytes: &[u8]) {
        self.out.extend_from_slice(bytes);
    }

    fn put_len(&mut self, len: usize) {
        self.put(&(len as u64).to_le_bytes());
    }
}

impl<'a, 'b> ser::Serializer for &'a mut Serializer<'b> {
    type Ok = ();
    type Error = CodecError;
    type SerializeSeq = Compound<'a, 'b>;
    type SerializeTuple = Compound<'a, 'b>;
    type SerializeTupleStruct = Compound<'a, 'b>;
    type SerializeTupleVariant = Compound<'a, 'b>;
    type SerializeMap = Compound<'a, 'b>;
    type SerializeStruct = Compound<'a, 'b>;
    type SerializeStructVariant = Compound<'a, 'b>;

    fn serialize_bool(self, v: bool) -> Result<(), CodecError> {
        self.put(&[v as u8]);
        Ok(())
    }

    fn serialize_i8(self, v: i8) -> Result<(), CodecError> {
        self.put(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_i16(self, v: i16) -> Result<(), CodecError> {
        self.put(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_i32(self, v: i32) -> Result<(), CodecError> {
        self.put(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_i64(self, v: i64) -> Result<(), CodecError> {
        self.put(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_u8(self, v: u8) -> Result<(), CodecError> {
        self.put(&[v]);
        Ok(())
    }

    fn serialize_u16(self, v: u16) -> Result<(), CodecError> {
        self.put(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_u32(self, v: u32) -> Result<(), CodecError> {
        self.put(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_u64(self, v: u64) -> Result<(), CodecError> {
        self.put(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_f32(self, v: f32) -> Result<(), CodecError> {
        self.put(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_f64(self, v: f64) -> Result<(), CodecError> {
        self.put(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_char(self, v: char) -> Result<(), CodecError> {
        self.serialize_u32(v as u32)
    }

    fn serialize_str(self, v: &str) -> Result<(), CodecError> {
        // One up-front reservation for prefix + payload instead of letting
        // the two `put`s grow the buffer separately.
        self.out.reserve(8 + v.len());
        self.put_len(v.len());
        self.put(v.as_bytes());
        Ok(())
    }

    fn serialize_bytes(self, v: &[u8]) -> Result<(), CodecError> {
        self.out.reserve(8 + v.len());
        self.put_len(v.len());
        self.put(v);
        Ok(())
    }

    fn serialize_none(self) -> Result<(), CodecError> {
        self.put(&[0]);
        Ok(())
    }

    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), CodecError> {
        self.put(&[1]);
        value.serialize(self)
    }

    fn serialize_unit(self) -> Result<(), CodecError> {
        Ok(())
    }

    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), CodecError> {
        Ok(())
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
    ) -> Result<(), CodecError> {
        self.serialize_u32(variant_index)
    }

    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        value.serialize(self)
    }

    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        self.serialize_u32(variant_index)?;
        value.serialize(self)
    }

    fn serialize_seq(self, len: Option<usize>) -> Result<Compound<'a, 'b>, CodecError> {
        let len =
            len.ok_or_else(|| CodecError("sequences must have a known length".to_string()))?;
        // Every element contributes at least one byte; reserving the prefix
        // plus that floor avoids per-element re-allocation for the common
        // numeric payloads (which reserve the rest on their first element).
        self.out.reserve(8 + len);
        self.put_len(len);
        Ok(Compound { ser: self })
    }

    fn serialize_tuple(self, _len: usize) -> Result<Compound<'a, 'b>, CodecError> {
        Ok(Compound { ser: self })
    }

    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> Result<Compound<'a, 'b>, CodecError> {
        Ok(Compound { ser: self })
    }

    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Compound<'a, 'b>, CodecError> {
        self.serialize_u32(variant_index)?;
        Ok(Compound { ser: self })
    }

    fn serialize_map(self, len: Option<usize>) -> Result<Compound<'a, 'b>, CodecError> {
        let len = len.ok_or_else(|| CodecError("maps must have a known length".to_string()))?;
        // Key + value: at least two bytes per entry.
        self.out.reserve(8 + len.saturating_mul(2));
        self.put_len(len);
        Ok(Compound { ser: self })
    }

    fn serialize_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> Result<Compound<'a, 'b>, CodecError> {
        Ok(Compound { ser: self })
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Compound<'a, 'b>, CodecError> {
        self.serialize_u32(variant_index)?;
        Ok(Compound { ser: self })
    }

    fn is_human_readable(&self) -> bool {
        false
    }
}

struct Compound<'a, 'b> {
    ser: &'a mut Serializer<'b>,
}

macro_rules! impl_compound {
    ($trait:ident, $method:ident) => {
        impl ser::$trait for Compound<'_, '_> {
            type Ok = ();
            type Error = CodecError;

            fn $method<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CodecError> {
                value.serialize(&mut *self.ser)
            }

            fn end(self) -> Result<(), CodecError> {
                Ok(())
            }
        }
    };
}

impl_compound!(SerializeSeq, serialize_element);
impl_compound!(SerializeTuple, serialize_element);
impl_compound!(SerializeTupleStruct, serialize_field);
impl_compound!(SerializeTupleVariant, serialize_field);

impl ser::SerializeMap for Compound<'_, '_> {
    type Ok = ();
    type Error = CodecError;

    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), CodecError> {
        key.serialize(&mut *self.ser)
    }

    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CodecError> {
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

impl ser::SerializeStruct for Compound<'_, '_> {
    type Ok = ();
    type Error = CodecError;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

impl ser::SerializeStructVariant for Compound<'_, '_> {
    type Ok = ();
    type Error = CodecError;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Deserializer
// ---------------------------------------------------------------------------

struct Deserializer<'de> {
    input: &'de [u8],
}

impl<'de> Deserializer<'de> {
    fn take(&mut self, n: usize) -> Result<&'de [u8], CodecError> {
        if self.input.len() < n {
            return Err(CodecError(format!(
                "unexpected end of input: wanted {n} bytes, have {}",
                self.input.len()
            )));
        }
        let (head, tail) = self.input.split_at(n);
        self.input = tail;
        Ok(head)
    }

    fn take_array<const N: usize>(&mut self) -> Result<[u8; N], CodecError> {
        Ok(self.take(N)?.try_into().expect("exact length"))
    }

    fn take_len(&mut self) -> Result<usize, CodecError> {
        let len = u64::from_le_bytes(self.take_array::<8>()?);
        usize::try_from(len).map_err(|_| CodecError(format!("length {len} overflows usize")))
    }
}

macro_rules! de_num {
    ($method:ident, $visit:ident, $t:ty, $n:expr) => {
        fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
            visitor.$visit(<$t>::from_le_bytes(self.take_array::<$n>()?))
        }
    };
}

impl<'de> de::Deserializer<'de> for &mut Deserializer<'de> {
    type Error = CodecError;

    fn deserialize_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, CodecError> {
        Err(CodecError(
            "ppar checkpoint codec is not self-describing; deserialize_any unsupported".to_string(),
        ))
    }

    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        match self.take(1)?[0] {
            0 => visitor.visit_bool(false),
            1 => visitor.visit_bool(true),
            b => Err(CodecError(format!("invalid bool byte {b}"))),
        }
    }

    de_num!(deserialize_i8, visit_i8, i8, 1);
    de_num!(deserialize_i16, visit_i16, i16, 2);
    de_num!(deserialize_i32, visit_i32, i32, 4);
    de_num!(deserialize_i64, visit_i64, i64, 8);
    de_num!(deserialize_u16, visit_u16, u16, 2);
    de_num!(deserialize_u32, visit_u32, u32, 4);
    de_num!(deserialize_u64, visit_u64, u64, 8);
    de_num!(deserialize_f32, visit_f32, f32, 4);
    de_num!(deserialize_f64, visit_f64, f64, 8);

    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        visitor.visit_u8(self.take(1)?[0])
    }

    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let code = u32::from_le_bytes(self.take_array::<4>()?);
        let c = char::from_u32(code)
            .ok_or_else(|| CodecError(format!("invalid char scalar {code:#x}")))?;
        visitor.visit_char(c)
    }

    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let len = self.take_len()?;
        let bytes = self.take(len)?;
        let s = std::str::from_utf8(bytes)
            .map_err(|e| CodecError(format!("invalid utf-8 in string: {e}")))?;
        visitor.visit_borrowed_str(s)
    }

    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        self.deserialize_str(visitor)
    }

    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let len = self.take_len()?;
        visitor.visit_borrowed_bytes(self.take(len)?)
    }

    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        self.deserialize_bytes(visitor)
    }

    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        match self.take(1)?[0] {
            0 => visitor.visit_none(),
            1 => visitor.visit_some(self),
            b => Err(CodecError(format!("invalid option tag {b}"))),
        }
    }

    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        visitor.visit_unit()
    }

    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_unit()
    }

    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_newtype_struct(self)
    }

    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let len = self.take_len()?;
        self.deserialize_counted(len, visitor)
    }

    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        self.deserialize_counted(len, visitor)
    }

    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        self.deserialize_counted(len, visitor)
    }

    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let len = self.take_len()?;
        visitor.visit_map(CountedAccess {
            de: self,
            remaining: len,
        })
    }

    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        self.deserialize_counted(fields.len(), visitor)
    }

    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_enum(EnumAccess { de: self })
    }

    fn deserialize_identifier<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, CodecError> {
        Err(CodecError("identifiers are not encoded".to_string()))
    }

    fn deserialize_ignored_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, CodecError> {
        Err(CodecError(
            "cannot skip values in a non-self-describing format".to_string(),
        ))
    }

    fn is_human_readable(&self) -> bool {
        false
    }
}

impl<'de> Deserializer<'de> {
    fn deserialize_counted<V: Visitor<'de>>(
        &mut self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_seq(CountedAccess {
            de: self,
            remaining: len,
        })
    }
}

struct CountedAccess<'a, 'de> {
    de: &'a mut Deserializer<'de>,
    remaining: usize,
}

impl<'de> de::SeqAccess<'de> for CountedAccess<'_, 'de> {
    type Error = CodecError;

    fn next_element_seed<T: de::DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, CodecError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

impl<'de> de::MapAccess<'de> for CountedAccess<'_, 'de> {
    type Error = CodecError;

    fn next_key_seed<K: de::DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, CodecError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn next_value_seed<V: de::DeserializeSeed<'de>>(
        &mut self,
        seed: V,
    ) -> Result<V::Value, CodecError> {
        seed.deserialize(&mut *self.de)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

struct EnumAccess<'a, 'de> {
    de: &'a mut Deserializer<'de>,
}

impl<'de> de::EnumAccess<'de> for EnumAccess<'_, 'de> {
    type Error = CodecError;
    type Variant = Self;

    fn variant_seed<V: de::DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self), CodecError> {
        let index = u32::from_le_bytes(self.de.take_array::<4>()?);
        let value = seed.deserialize(index.into_deserializer())?;
        Ok((value, self))
    }
}

impl<'de> de::VariantAccess<'de> for EnumAccess<'_, 'de> {
    type Error = CodecError;

    fn unit_variant(self) -> Result<(), CodecError> {
        Ok(())
    }

    fn newtype_variant_seed<T: de::DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, CodecError> {
        seed.deserialize(self.de)
    }

    fn tuple_variant<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        self.de.deserialize_counted(len, visitor)
    }

    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        self.de.deserialize_counted(fields.len(), visitor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use serde::{Deserialize, Serialize};
    use std::collections::BTreeMap;

    fn roundtrip<T: Serialize + DeserializeOwned + PartialEq + std::fmt::Debug>(v: &T) {
        let bytes = to_bytes(v).expect("serialize");
        let back: T = from_bytes(&bytes).expect("deserialize");
        assert_eq!(&back, v);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(&true);
        roundtrip(&false);
        roundtrip(&0xABu8);
        roundtrip(&-7i8);
        roundtrip(&1234u16);
        roundtrip(&-30000i16);
        roundtrip(&0xDEADBEEFu32);
        roundtrip(&i32::MIN);
        roundtrip(&u64::MAX);
        roundtrip(&i64::MIN);
        roundtrip(&3.5f32);
        roundtrip(&-std::f64::consts::E);
        roundtrip(&'λ');
        roundtrip(&"hello grid".to_string());
        roundtrip(&());
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(&vec![1.0f64, 2.0, 3.0]);
        roundtrip(&Some(42i32));
        roundtrip(&Option::<i32>::None);
        roundtrip(&(1u8, "two".to_string(), 3.0f64));
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), vec![1u32, 2]);
        m.insert("b".to_string(), vec![]);
        roundtrip(&m);
        roundtrip(&vec![vec![1i64], vec![], vec![2, 3]]);
    }

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    struct Particle {
        pos: [f64; 3],
        vel: [f64; 3],
        id: u64,
        tag: Option<String>,
    }

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    enum Event {
        Start,
        Step { dt: f64, n: u32 },
        Done(String),
        Pair(u32, u32),
    }

    #[test]
    fn derived_types_roundtrip() {
        roundtrip(&Particle {
            pos: [1.0, 2.0, 3.0],
            vel: [-0.5, 0.0, 0.5],
            id: 99,
            tag: Some("p1".to_string()),
        });
        roundtrip(&Event::Start);
        roundtrip(&Event::Step { dt: 0.01, n: 1000 });
        roundtrip(&Event::Done("ok".to_string()));
        roundtrip(&Event::Pair(3, 4));
        roundtrip(&vec![Event::Start, Event::Pair(1, 2)]);
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = to_bytes(&7u32).unwrap();
        bytes.push(0);
        assert!(from_bytes::<u32>(&bytes).is_err());
    }

    #[test]
    fn truncation_rejected() {
        let bytes = to_bytes(&vec![1u64, 2, 3]).unwrap();
        assert!(from_bytes::<Vec<u64>>(&bytes[..bytes.len() - 1]).is_err());
        assert!(from_bytes::<Vec<u64>>(&bytes[..4]).is_err());
    }

    #[test]
    fn invalid_bool_and_option_tags_rejected() {
        assert!(from_bytes::<bool>(&[2]).is_err());
        assert!(from_bytes::<Option<u8>>(&[9, 1]).is_err());
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut bytes = to_bytes(&"ab".to_string()).unwrap();
        let n = bytes.len();
        bytes[n - 1] = 0xFF;
        bytes[n - 2] = 0xFE;
        assert!(from_bytes::<String>(&bytes).is_err());
    }

    #[test]
    fn encoding_is_compact() {
        // 3 f64s: 8-byte length prefix + 24 payload bytes.
        assert_eq!(to_bytes(&vec![1.0f64, 2.0, 3.0]).unwrap().len(), 32);
        // Struct fields carry zero framing.
        #[derive(Serialize)]
        struct S {
            a: u32,
            b: u32,
        }
        assert_eq!(to_bytes(&S { a: 1, b: 2 }).unwrap().len(), 8);
    }

    proptest! {
        #[test]
        fn prop_vec_f64_roundtrip(v in proptest::collection::vec(any::<f64>(), 0..200)) {
            let bytes = to_bytes(&v).unwrap();
            let back: Vec<f64> = from_bytes(&bytes).unwrap();
            prop_assert_eq!(v.len(), back.len());
            for (a, b) in v.iter().zip(back.iter()) {
                prop_assert!(a == b || (a.is_nan() && b.is_nan()));
            }
        }

        #[test]
        fn prop_string_map_roundtrip(
            m in proptest::collection::btree_map(".*", any::<i64>(), 0..20)
        ) {
            let bytes = to_bytes(&m).unwrap();
            let back: BTreeMap<String, i64> = from_bytes(&bytes).unwrap();
            prop_assert_eq!(m, back);
        }

        #[test]
        fn prop_nested_roundtrip(
            v in proptest::collection::vec(
                (any::<u32>(), proptest::collection::vec(any::<f32>(), 0..8)),
                0..30
            )
        ) {
            let bytes = to_bytes(&v).unwrap();
            let back: Vec<(u32, Vec<f32>)> = from_bytes(&bytes).unwrap();
            prop_assert_eq!(format!("{v:?}"), format!("{back:?}"));
        }
    }
}
