//! Content-addressed checkpoint storage: chunk objects, record manifests
//! and the journaled promote transaction.
//!
//! The flat layout ([`crate::store`]) rewrites every byte of every record
//! on every save. Steady-state checkpoints of a converging computation are
//! mostly identical to the previous generation, so the dominant cost is
//! rewriting bytes that did not change. The content-addressed store (CAS)
//! splits each encoded record into chunks at the dirty-tracking boundary
//! ([`ppar_core::shared::DIRTY_CHUNK_BYTES`]), keys every chunk by a fast
//! 128-bit content digest ([`crate::digest::ChunkDigest`]) and stores each
//! distinct chunk **once**. A record becomes a *manifest*: the ordered
//! list of chunk references. Saving an unchanged page costs one digest and
//! one 20-byte manifest entry instead of one page write — repeated
//! snapshots degrade to metadata writes, and identical chunks dedupe
//! across iterations, ranks and jobs sharing one directory.
//!
//! ## On-disk layout
//!
//! ```text
//! <dir>/
//!   objects/<hh>/<32-hex>   # one chunk, named by its content digest
//!                           # (hh = first two hex digits); immutable
//!   manifests/<record>      # promoted manifest per record name
//!                           # (ckpt_master.bin, ckpt_rank_3_delta_2.bin…)
//!   journal/<pid>_<n>.mft   # staging manifests of in-flight transactions
//! ```
//!
//! ## Manifest format (all integers little-endian)
//!
//! ```text
//! magic       8B  "PPARMFT1"
//! version     u32  1
//! chunk_size  u32  nominal chunk boundary at write time
//! entries     n × { digest 16B, len u32 }
//! total_len   u64  record byte length (sum of entry lens)
//! nchunks     u32  n
//! crc         u32  CRC-32 of every preceding byte
//! ```
//!
//! The counts live in the *trailer* so a transaction can append entries as
//! the record streams through it without knowing the total up front.
//!
//! ## Transaction protocol (stage → fsync → rename)
//!
//! A write stages chunks into `objects/` (tmp file + rename, idempotent —
//! two writers racing on the same content both succeed) while appending
//! entries to its private `journal/` staging file. Commit seals the
//! trailer, fsyncs the staging manifest and atomically renames it into
//! `manifests/`. A crash anywhere before the rename leaves the previous
//! record generation untouched and only an orphaned journal file behind;
//! reopening the store ignores journal files, so recovery is rollback by
//! construction. The journal file doubles as the GC pin for chunks the
//! transaction references but has not yet promoted.
//!
//! ## Garbage collection
//!
//! [`CasStore::gc`] is mark-and-sweep: mark every chunk referenced by any
//! manifest **or any journal file** (in-flight transactions are live
//! roots), then sweep unreferenced objects older than the grace window.
//! Journal files older than the grace window are crashed transactions and
//! are rolled back (deleted). The grace window (`PPAR_STORE_GC_GRACE_SECS`)
//! keeps a sweeper in one process from collecting a chunk that a writer in
//! *another* process observed as present a moment before its journal entry
//! hit the directory; within one process the global GC lock closes that
//! window exactly. GC runs on demand and automatically after a commit when
//! `PPAR_STORE_QUOTA_BYTES` is set and the object volume exceeds it.
//!
//! ## Environment
//!
//! | variable                   | effect                                       |
//! |----------------------------|----------------------------------------------|
//! | `PPAR_STORE_LAYOUT`        | `cas` selects this layout for new stores     |
//! | `PPAR_STORE_QUOTA_BYTES`   | object-volume quota that triggers GC         |
//! | `PPAR_STORE_GC_GRACE_SECS` | GC grace window (default 60)                 |
//! | `PPAR_STORE_SYNC`          | `1` fsyncs novel chunk objects at commit     |

use std::fs;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, SystemTime};

use parking_lot::{Mutex, RwLock};
use ppar_core::error::{PparError, Result};
use ppar_core::shared::DIRTY_CHUNK_BYTES;

use crate::crc::{crc32, Crc32};
use crate::digest::ChunkDigest;

const MANIFEST_MAGIC: &[u8; 8] = b"PPARMFT1";
const MANIFEST_VERSION: u32 = 1;
/// Bytes per manifest entry: 16-byte digest + u32 length.
const ENTRY_BYTES: usize = 20;
/// Manifest header bytes: magic + version + chunk_size.
const HEADER_BYTES: usize = 16;
/// Manifest trailer bytes: total_len + nchunks + crc.
const TRAILER_BYTES: usize = 16;

/// Serializes sweeps against in-process writers: GC takes the write side,
/// transactions hold the read side across the has-chunk check and the
/// journal-entry append, so a chunk observed as present cannot vanish
/// before its pin is visible. Process-wide on purpose — several
/// [`CasStore`] handles (or several stores in one test process) share one
/// filesystem.
static GC_LOCK: RwLock<()> = RwLock::new(());

/// One manifest entry: a chunk's content key and byte length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkRef {
    /// Content digest keying the chunk in `objects/`.
    pub digest: ChunkDigest,
    /// Chunk byte length (≤ the store's chunk size).
    pub len: u32,
}

/// Dedup counters accumulated by the store's write paths, drained through
/// [`crate::transport::CkptTransport::take_put_stats`] into
/// [`crate::CkptStats`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PutStats {
    /// Novel chunks written to the object store.
    pub chunks_written: u64,
    /// Chunks found already present (store-level dedup hits).
    pub chunks_deduped: u64,
    /// Record bytes those dedup hits avoided rewriting.
    pub bytes_deduped: u64,
    /// Chunks the network dedup handshake kept off the wire (client-side
    /// counter; zero for local stores).
    pub wire_chunks_skipped: u64,
    /// Bytes that physically hit the store: novel chunk payloads plus
    /// manifest metadata.
    pub bytes_stored: u64,
}

impl PutStats {
    /// Fold `other` into `self`.
    pub fn merge(&mut self, other: &PutStats) {
        self.chunks_written += other.chunks_written;
        self.chunks_deduped += other.chunks_deduped;
        self.bytes_deduped += other.bytes_deduped;
        self.wire_chunks_skipped += other.wire_chunks_skipped;
        self.bytes_stored += other.bytes_stored;
    }
}

/// What one [`CasStore::gc`] sweep reclaimed.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct GcStats {
    /// Unreferenced chunk objects removed.
    pub objects_swept: u64,
    /// Bytes those objects held.
    pub bytes_reclaimed: u64,
    /// Crashed-transaction journal files rolled back.
    pub journals_discarded: u64,
}

/// Tuning knobs for a [`CasStore`] (see the module docs for the
/// corresponding `PPAR_STORE_*` environment variables).
#[derive(Debug, Clone)]
pub struct CasConfig {
    /// Chunk boundary for streaming writes. Defaults to
    /// [`DIRTY_CHUNK_BYTES`] so store chunks line up with the dirty
    /// tracker *and* with the wire-dedup chunking, which is what lets a
    /// clean page cost one manifest entry end to end.
    pub chunk_size: usize,
    /// Object-volume quota; exceeding it after a commit triggers GC.
    pub quota_bytes: Option<u64>,
    /// Age below which GC will not sweep objects or roll back journals.
    pub gc_grace: Duration,
    /// Fsync novel chunk objects at commit (the staged manifest is always
    /// fsynced before promote).
    pub sync_objects: bool,
}

impl Default for CasConfig {
    fn default() -> CasConfig {
        CasConfig {
            chunk_size: DIRTY_CHUNK_BYTES,
            quota_bytes: None,
            gc_grace: Duration::from_secs(60),
            sync_objects: false,
        }
    }
}

impl CasConfig {
    /// Configuration from `PPAR_STORE_*` environment variables (defaults
    /// where unset or unparsable).
    pub fn from_env() -> CasConfig {
        let mut cfg = CasConfig::default();
        if let Ok(v) = std::env::var("PPAR_STORE_QUOTA_BYTES") {
            cfg.quota_bytes = v.parse().ok();
        }
        if let Some(secs) = std::env::var("PPAR_STORE_GC_GRACE_SECS")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            cfg.gc_grace = Duration::from_secs(secs);
        }
        if std::env::var("PPAR_STORE_SYNC").is_ok_and(|v| v == "1") {
            cfg.sync_objects = true;
        }
        cfg
    }
}

/// State shared by every clone of one [`CasStore`] handle.
#[derive(Debug)]
struct CasShared {
    stats: Mutex<PutStats>,
    /// Recycled chunk-assembly buffers (manifest staging reuses them too).
    pool: Mutex<Vec<Vec<u8>>>,
    /// Journal file name counter (unique per in-flight transaction).
    seq: AtomicU64,
    /// Running estimate of `objects/` volume for the quota check, seeded
    /// by a walk at open and maintained by writes and sweeps.
    object_bytes: AtomicU64,
}

const POOL_CAP: usize = 8;

/// A content-addressed checkpoint store rooted at one directory. Cheap to
/// clone; clones share stats, buffer pool and the quota estimate.
#[derive(Debug, Clone)]
pub struct CasStore {
    root: PathBuf,
    cfg: CasConfig,
    shared: Arc<CasShared>,
}

impl CasStore {
    /// Open (creating if needed) a content-addressed store under `root`
    /// with configuration from the environment.
    pub fn open(root: impl AsRef<Path>) -> Result<CasStore> {
        CasStore::open_with(root, CasConfig::from_env())
    }

    /// [`CasStore::open`] with an explicit configuration.
    pub fn open_with(root: impl AsRef<Path>, cfg: CasConfig) -> Result<CasStore> {
        let root = root.as_ref().to_path_buf();
        fs::create_dir_all(root.join("objects"))?;
        fs::create_dir_all(root.join("manifests"))?;
        fs::create_dir_all(root.join("journal"))?;
        let store = CasStore {
            root,
            cfg,
            shared: Arc::new(CasShared {
                stats: Mutex::new(PutStats::default()),
                pool: Mutex::new(Vec::new()),
                seq: AtomicU64::new(0),
                object_bytes: AtomicU64::new(0),
            }),
        };
        store
            .shared
            .object_bytes
            .store(store.walk_object_bytes()?, Ordering::Relaxed);
        Ok(store)
    }

    /// Does `root` already hold a content-addressed store? (Layout
    /// auto-detection: reopening an existing CAS directory must not
    /// silently fall back to flat files.)
    pub fn detect(root: impl AsRef<Path>) -> bool {
        root.as_ref().join("manifests").is_dir()
    }

    /// The store's configuration.
    pub fn config(&self) -> &CasConfig {
        &self.cfg
    }

    fn object_path(&self, digest: &ChunkDigest) -> PathBuf {
        let hex = digest.to_hex();
        self.root.join("objects").join(&hex[..2]).join(hex)
    }

    fn manifest_path(&self, name: &str) -> PathBuf {
        self.root.join("manifests").join(name)
    }

    fn journal_dir(&self) -> PathBuf {
        self.root.join("journal")
    }

    fn next_journal_path(&self) -> PathBuf {
        let n = self.shared.seq.fetch_add(1, Ordering::Relaxed);
        self.journal_dir()
            .join(format!("{}_{n}.mft", std::process::id()))
    }

    /// Is the chunk keyed by `digest` present?
    pub fn has_chunk(&self, digest: &ChunkDigest) -> bool {
        self.object_path(digest).exists()
    }

    /// Write one chunk object if absent; returns `true` when the chunk was
    /// novel (written), `false` on a dedup hit. Idempotent under races:
    /// both writers rename identical content onto the same name.
    fn put_chunk(&self, digest: &ChunkDigest, bytes: &[u8]) -> Result<bool> {
        let path = self.object_path(digest);
        if path.exists() {
            return Ok(false);
        }
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let tmp = path.with_extension(format!(
            "tmp{}_{}",
            std::process::id(),
            self.shared.seq.fetch_add(1, Ordering::Relaxed)
        ));
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        if self.cfg.sync_objects {
            f.sync_data()?;
        }
        drop(f);
        fs::rename(&tmp, &path)?;
        self.shared
            .object_bytes
            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
        Ok(true)
    }

    /// Read the chunk for `entry`, verifying its stored length. The chunk
    /// digest is not recomputed here: record-level integrity is enforced
    /// by the snapshot CRC at decode time, and objects are immutable once
    /// promoted.
    pub fn read_chunk(&self, entry: &ChunkRef) -> Result<Vec<u8>> {
        let bytes = fs::read(self.object_path(&entry.digest))?;
        if bytes.len() != entry.len as usize {
            return Err(PparError::CorruptCheckpoint(format!(
                "chunk {} holds {} bytes, manifest expects {}",
                entry.digest.to_hex(),
                bytes.len(),
                entry.len
            )));
        }
        Ok(bytes)
    }

    /// Does a promoted manifest for record `name` exist?
    pub fn manifest_exists(&self, name: &str) -> bool {
        self.manifest_path(name).exists()
    }

    /// Load and verify the promoted manifest for record `name`.
    pub fn read_manifest(&self, name: &str) -> Result<Option<Manifest>> {
        match fs::read(self.manifest_path(name)) {
            Ok(bytes) => Manifest::decode(&bytes).map(Some),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    /// Materialize record `name` (chunks reassembled in manifest order).
    pub fn read_record(&self, name: &str) -> Result<Option<Vec<u8>>> {
        let Some(m) = self.read_manifest(name)? else {
            return Ok(None);
        };
        let mut out = Vec::with_capacity(m.total_len as usize);
        for entry in &m.chunks {
            out.extend_from_slice(&self.read_chunk(entry)?);
        }
        Ok(Some(out))
    }

    /// The first `max` bytes of record `name` (header peeks).
    pub fn read_head(&self, name: &str, max: usize) -> Result<Option<Vec<u8>>> {
        let Some(m) = self.read_manifest(name)? else {
            return Ok(None);
        };
        let mut out = Vec::with_capacity(max.min(m.total_len as usize));
        for entry in &m.chunks {
            if out.len() >= max {
                break;
            }
            let chunk = self.read_chunk(entry)?;
            let want = max - out.len();
            out.extend_from_slice(&chunk[..chunk.len().min(want)]);
        }
        Ok(Some(out))
    }

    /// Stream record `name` into `out`; returns bytes written, `None` when
    /// no manifest exists.
    pub fn write_record_to(&self, name: &str, out: &mut dyn Write) -> Result<Option<u64>> {
        let Some(m) = self.read_manifest(name)? else {
            return Ok(None);
        };
        let mut written = 0u64;
        for entry in &m.chunks {
            let chunk = self.read_chunk(entry)?;
            out.write_all(&chunk)?;
            written += chunk.len() as u64;
        }
        Ok(Some(written))
    }

    /// Rename record `from` → `to` (manifest-level: chunk objects are
    /// shared and untouched). Missing `from` is an error, matching
    /// [`std::fs::rename`].
    pub fn rename_manifest(&self, from: &str, to: &str) -> Result<()> {
        fs::rename(self.manifest_path(from), self.manifest_path(to))?;
        Ok(())
    }

    /// Remove record `name`'s manifest (missing is fine — several group
    /// members may purge concurrently). Its chunks become garbage unless
    /// still referenced elsewhere; the next sweep reclaims them.
    pub fn remove_manifest(&self, name: &str) -> Result<()> {
        match fs::remove_file(self.manifest_path(name)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    /// Names of all promoted manifests.
    pub fn list_manifests(&self) -> Result<Vec<String>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(self.root.join("manifests"))? {
            out.push(entry?.file_name().to_string_lossy().into_owned());
        }
        Ok(out)
    }

    /// Drain the accumulated dedup counters.
    pub fn take_put_stats(&self) -> PutStats {
        std::mem::take(&mut self.shared.stats.lock())
    }

    /// Current `objects/` volume estimate (exact after open or GC, drifts
    /// only by concurrent external writers).
    pub fn object_bytes(&self) -> u64 {
        self.shared.object_bytes.load(Ordering::Relaxed)
    }

    fn walk_object_bytes(&self) -> Result<u64> {
        let mut total = 0u64;
        for shard in fs::read_dir(self.root.join("objects"))? {
            let shard = shard?;
            if !shard.file_type()?.is_dir() {
                continue;
            }
            for obj in fs::read_dir(shard.path())? {
                total += obj?.metadata()?.len();
            }
        }
        Ok(total)
    }

    /// Begin a streaming write transaction. Bytes appended through the
    /// returned [`CasTxn`] are chunked, deduped and staged; nothing is
    /// visible under any record name until [`CasTxn::commit`].
    pub fn begin(&self) -> Result<CasTxn> {
        let journal_path = self.next_journal_path();
        let file = fs::File::create(&journal_path)?;
        let mut txn = CasTxn {
            store: self.clone(),
            buf: self.take_buf(),
            journal_path,
            journal: Some(BufWriter::new(file)),
            crc: Crc32::new(),
            chunks: 0,
            total: 0,
            meta_bytes: 0,
            stats: PutStats::default(),
            staged: false,
        };
        txn.put_meta(MANIFEST_MAGIC)?;
        txn.put_meta(&MANIFEST_VERSION.to_le_bytes())?;
        txn.put_meta(&(self.cfg.chunk_size as u32).to_le_bytes())?;
        Ok(txn)
    }

    /// Begin a dedup-handshake transaction for a record whose chunk
    /// references are already known (the network wire path): the staging
    /// manifest is written and fsynced immediately — pinning every
    /// referenced chunk against GC — and [`DedupTxn::missing`] lists the
    /// chunks the caller must supply before commit.
    pub fn begin_dedup(&self, refs: &[ChunkRef], total_len: u64) -> Result<DedupTxn> {
        let sum: u64 = refs.iter().map(|r| r.len as u64).sum();
        if sum != total_len {
            return Err(PparError::InvalidPlan(format!(
                "dedup manifest announces {total_len} bytes but chunk lens sum to {sum}"
            )));
        }
        let manifest = Manifest {
            chunk_size: self.cfg.chunk_size as u32,
            total_len,
            chunks: refs.to_vec(),
        };
        let journal_path = self.next_journal_path();
        let encoded = manifest.encode();
        let mut missing = Vec::new();
        let mut stats = PutStats::default();
        {
            // Pin-before-skip: the journal must be on disk before we trust
            // any "already present" observation (see GC_LOCK).
            let _pin = GC_LOCK.read();
            fs::write(&journal_path, &encoded)?;
            let f = fs::File::open(&journal_path)?;
            f.sync_data()?;
            for (i, r) in refs.iter().enumerate() {
                if self.has_chunk(&r.digest) {
                    stats.chunks_deduped += 1;
                    stats.bytes_deduped += r.len as u64;
                } else {
                    missing.push(i as u32);
                }
            }
        }
        stats.bytes_stored += encoded.len() as u64;
        Ok(DedupTxn {
            store: self.clone(),
            journal_path,
            manifest,
            missing,
            next: 0,
            stats,
        })
    }

    fn take_buf(&self) -> Vec<u8> {
        let mut buf = self.shared.pool.lock().pop().unwrap_or_default();
        buf.clear();
        buf.reserve(self.cfg.chunk_size);
        buf
    }

    fn recycle_buf(&self, buf: Vec<u8>) {
        // Chunk buffers are uniformly chunk-sized, so a count bound is a
        // bytes bound too.
        let mut pool = self.shared.pool.lock();
        if pool.len() < POOL_CAP && buf.capacity() <= 2 * self.cfg.chunk_size {
            pool.push(buf);
        }
    }

    fn merge_stats(&self, stats: &PutStats) {
        self.shared.stats.lock().merge(stats);
    }

    /// Run GC if a quota is configured and the object volume exceeds it.
    pub fn maybe_gc(&self) -> Result<Option<GcStats>> {
        match self.cfg.quota_bytes {
            Some(quota) if self.object_bytes() > quota => self.gc().map(Some),
            _ => Ok(None),
        }
    }

    /// Mark-and-sweep garbage collection. Marks every chunk referenced by
    /// any promoted manifest or any in-flight journal file, rolls back
    /// journal files older than the grace window, then sweeps unmarked
    /// objects older than the grace window. A chunk referenced by a live
    /// manifest can never be collected: manifests are read under the
    /// exclusive GC lock, and a manifest only ever enters `manifests/` by
    /// rename from a journal file that already pinned its chunks.
    pub fn gc(&self) -> Result<GcStats> {
        let _guard = GC_LOCK.write();
        let now = SystemTime::now();
        let old_enough = |meta: &fs::Metadata| -> bool {
            match meta.modified() {
                Ok(t) => now
                    .duration_since(t)
                    .is_ok_and(|age| age >= self.cfg.gc_grace),
                Err(_) => false,
            }
        };

        let mut live = std::collections::HashSet::new();
        for entry in fs::read_dir(self.root.join("manifests"))? {
            let entry = entry?;
            // Lenient parse: a manifest that fails full verification still
            // marks every parseable entry — GC must only ever over-mark.
            for r in parse_entries_lenient(&fs::read(entry.path())?) {
                live.insert(r.digest);
            }
        }

        let mut stats = GcStats::default();
        for entry in fs::read_dir(self.journal_dir())? {
            let entry = entry?;
            if old_enough(&entry.metadata()?) {
                // A journal this old is a crashed transaction: roll back.
                let _ = fs::remove_file(entry.path());
                stats.journals_discarded += 1;
            } else {
                for r in parse_entries_lenient(&fs::read(entry.path())?) {
                    live.insert(r.digest);
                }
            }
        }

        for shard in fs::read_dir(self.root.join("objects"))? {
            let shard = shard?;
            if !shard.file_type()?.is_dir() {
                continue;
            }
            for obj in fs::read_dir(shard.path())? {
                let obj = obj?;
                let name = obj.file_name();
                let name = name.to_string_lossy();
                let meta = obj.metadata()?;
                let keep = match ChunkDigest::from_hex(&name) {
                    Some(d) => live.contains(&d),
                    // Stray temp from a crashed chunk write.
                    None => false,
                };
                if !keep && old_enough(&meta) && fs::remove_file(obj.path()).is_ok() {
                    stats.objects_swept += 1;
                    stats.bytes_reclaimed += meta.len();
                }
            }
        }
        let reclaimed = stats.bytes_reclaimed;
        let _ = self
            .shared
            .object_bytes
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(reclaimed))
            });
        Ok(stats)
    }
}

/// Best-effort entry extraction from manifest/journal bytes: whatever
/// complete 20-byte entries lie between the header and EOF. Used only for
/// GC *marking*, where over-marking (e.g. reading a trailer as a partial
/// entry) is safe and under-marking would be a correctness bug.
fn parse_entries_lenient(bytes: &[u8]) -> Vec<ChunkRef> {
    if bytes.len() < HEADER_BYTES || &bytes[..8] != MANIFEST_MAGIC {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut i = HEADER_BYTES;
    while i + ENTRY_BYTES <= bytes.len() {
        let mut digest = [0u8; 16];
        digest.copy_from_slice(&bytes[i..i + 16]);
        out.push(ChunkRef {
            digest: ChunkDigest(digest),
            len: u32::from_le_bytes(bytes[i + 16..i + 20].try_into().unwrap()),
        });
        i += ENTRY_BYTES;
    }
    out
}

/// A decoded record manifest: the ordered chunk references that reassemble
/// one record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Nominal chunk boundary at write time (informative; entry lens are
    /// authoritative).
    pub chunk_size: u32,
    /// Record byte length (always the sum of entry lens).
    pub total_len: u64,
    /// Ordered chunk references.
    pub chunks: Vec<ChunkRef>,
}

impl Manifest {
    /// Encode to the on-disk manifest format (see the module docs).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_BYTES + self.chunks.len() * ENTRY_BYTES + 16);
        out.extend_from_slice(MANIFEST_MAGIC);
        out.extend_from_slice(&MANIFEST_VERSION.to_le_bytes());
        out.extend_from_slice(&self.chunk_size.to_le_bytes());
        for r in &self.chunks {
            out.extend_from_slice(&r.digest.0);
            out.extend_from_slice(&r.len.to_le_bytes());
        }
        out.extend_from_slice(&self.total_len.to_le_bytes());
        out.extend_from_slice(&(self.chunks.len() as u32).to_le_bytes());
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decode and fully verify one manifest (magic, version, CRC, entry
    /// count and length consistency).
    pub fn decode(bytes: &[u8]) -> Result<Manifest> {
        if bytes.len() < HEADER_BYTES + TRAILER_BYTES {
            return Err(PparError::CorruptCheckpoint("manifest too short".into()));
        }
        if &bytes[..8] != MANIFEST_MAGIC {
            return Err(PparError::FormatMismatch {
                expected: String::from_utf8_lossy(MANIFEST_MAGIC).into_owned(),
                found: String::from_utf8_lossy(&bytes[..8]).into_owned(),
            });
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version != MANIFEST_VERSION {
            return Err(PparError::CorruptCheckpoint(format!(
                "manifest version {version}, expected {MANIFEST_VERSION}"
            )));
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(crc_bytes.try_into().unwrap());
        if crc32(body) != stored {
            return Err(PparError::CorruptCheckpoint(format!(
                "manifest CRC mismatch: stored {stored:#010x}, computed {:#010x}",
                crc32(body)
            )));
        }
        let chunk_size = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
        let tail = bytes.len() - TRAILER_BYTES;
        let total_len = u64::from_le_bytes(bytes[tail..tail + 8].try_into().unwrap());
        let nchunks = u32::from_le_bytes(bytes[tail + 8..tail + 12].try_into().unwrap()) as usize;
        let region = &bytes[HEADER_BYTES..tail];
        if region.len() != nchunks * ENTRY_BYTES {
            return Err(PparError::CorruptCheckpoint(format!(
                "manifest announces {nchunks} chunks but entry region holds {} bytes",
                region.len()
            )));
        }
        let mut chunks = Vec::with_capacity(nchunks);
        let mut sum = 0u64;
        for e in region.chunks_exact(ENTRY_BYTES) {
            let mut digest = [0u8; 16];
            digest.copy_from_slice(&e[..16]);
            let len = u32::from_le_bytes(e[16..20].try_into().unwrap());
            sum += len as u64;
            chunks.push(ChunkRef {
                digest: ChunkDigest(digest),
                len,
            });
        }
        if sum != total_len {
            return Err(PparError::CorruptCheckpoint(format!(
                "manifest total_len {total_len} but entry lens sum to {sum}"
            )));
        }
        Ok(Manifest {
            chunk_size,
            total_len,
            chunks,
        })
    }
}

/// An in-flight streaming write transaction (see [`CasStore::begin`]).
/// Implements [`std::io::Write`] so a
/// [`crate::store::SnapshotWriter`] can encode straight into the store
/// with no whole-record buffer.
pub struct CasTxn {
    store: CasStore,
    /// Partial-chunk accumulator (pooled).
    buf: Vec<u8>,
    journal_path: PathBuf,
    journal: Option<BufWriter<fs::File>>,
    /// Running CRC over the staged manifest bytes (header + entries).
    crc: Crc32,
    chunks: u32,
    total: u64,
    meta_bytes: u64,
    stats: PutStats,
    /// Set by [`CasTxn::stage`]: ownership of the journal file has moved
    /// to the [`StagedTxn`], so Drop must not roll it back.
    staged: bool,
}

impl CasTxn {
    fn put_meta(&mut self, bytes: &[u8]) -> Result<()> {
        self.crc.update(bytes);
        self.meta_bytes += bytes.len() as u64;
        self.journal
            .as_mut()
            .expect("transaction already finished")
            .write_all(bytes)?;
        Ok(())
    }

    /// Append record bytes (chunked at the store's boundary).
    pub fn append(&mut self, mut bytes: &[u8]) -> Result<()> {
        let chunk_size = self.store.cfg.chunk_size;
        while !bytes.is_empty() {
            let want = chunk_size - self.buf.len();
            let take = want.min(bytes.len());
            self.buf.extend_from_slice(&bytes[..take]);
            bytes = &bytes[take..];
            if self.buf.len() == chunk_size {
                self.seal_chunk()?;
            }
        }
        Ok(())
    }

    /// Seal the accumulated chunk: digest, dedup-or-write the object, and
    /// append its manifest entry to the journal so GC sees the pin before
    /// the dedup decision is acted on.
    fn seal_chunk(&mut self) -> Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let digest = ChunkDigest::of(&self.buf);
        let len = self.buf.len() as u32;
        {
            let _pin = GC_LOCK.read();
            let mut entry = [0u8; ENTRY_BYTES];
            entry[..16].copy_from_slice(&digest.0);
            entry[16..].copy_from_slice(&len.to_le_bytes());
            self.crc.update(&entry);
            self.meta_bytes += ENTRY_BYTES as u64;
            let journal = self.journal.as_mut().expect("transaction already finished");
            journal.write_all(&entry)?;
            // Entry must be visible to a cross-handle sweeper before the
            // "already present" observation below is trusted.
            journal.flush()?;
            if self.store.put_chunk(&digest, &self.buf)? {
                self.stats.chunks_written += 1;
                self.stats.bytes_stored += len as u64;
            } else {
                self.stats.chunks_deduped += 1;
                self.stats.bytes_deduped += len as u64;
            }
        }
        self.chunks += 1;
        self.total += len as u64;
        self.buf.clear();
        Ok(())
    }

    /// Stage everything for record `name`: seal the tail chunk, write the
    /// manifest trailer and fsync the staging file. The transaction is
    /// durable but **not yet visible** — [`StagedTxn::promote`] performs
    /// the atomic rename. Split out so crash injection (and the recovery
    /// proptest) can stop exactly between stage and promote.
    pub fn stage(mut self, name: &str) -> Result<StagedTxn> {
        self.seal_chunk()?;
        let mut trailer = [0u8; 12];
        trailer[..8].copy_from_slice(&self.total.to_le_bytes());
        trailer[8..].copy_from_slice(&self.chunks.to_le_bytes());
        self.crc.update(&trailer);
        let crc = self.crc.finish();
        let mut journal = self.journal.take().expect("transaction already finished");
        journal.write_all(&trailer)?;
        journal.write_all(&crc.to_le_bytes())?;
        journal.flush()?;
        journal.get_ref().sync_data()?;
        drop(journal);
        self.meta_bytes += TRAILER_BYTES as u64;
        let mut stats = self.stats;
        stats.bytes_stored += self.meta_bytes;
        let staged = StagedTxn {
            store: self.store.clone(),
            journal_path: self.journal_path.clone(),
            dst: self.store.manifest_path(name),
            total: self.total,
            stats,
        };
        // Ownership of the staged journal file moves to the StagedTxn.
        self.staged = true;
        Ok(staged)
    }

    /// Stage and promote in one step; returns the record's byte length.
    pub fn commit(self, name: &str) -> Result<u64> {
        self.stage(name)?.promote()
    }

    /// Discard the transaction (explicit form of dropping it).
    pub fn abort(self) {}
}

impl Drop for CasTxn {
    fn drop(&mut self) {
        self.journal = None;
        if !self.staged {
            // Abort or error path: roll back the staging file.
            let _ = fs::remove_file(&self.journal_path);
        }
        self.store.recycle_buf(std::mem::take(&mut self.buf));
    }
}

impl Write for CasTxn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.append(buf)
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// A staged (durable, invisible) transaction awaiting its atomic rename.
pub struct StagedTxn {
    store: CasStore,
    journal_path: PathBuf,
    dst: PathBuf,
    total: u64,
    stats: PutStats,
}

impl StagedTxn {
    /// Atomically promote the staged manifest under its record name, fold
    /// the dedup counters into the store and run the quota check. Returns
    /// the record's byte length.
    pub fn promote(self) -> Result<u64> {
        fs::rename(&self.journal_path, &self.dst)?;
        self.store.merge_stats(&self.stats);
        self.store.maybe_gc()?;
        Ok(self.total)
    }

    /// Abandon the staged transaction *without* cleaning up — exactly what
    /// a crash between stage and promote leaves behind. Test hook for the
    /// recovery proptest; the orphaned journal file is GC'd as a crashed
    /// transaction.
    pub fn simulate_crash(self) {
        // Leak nothing in-process, leave the journal file on disk.
    }
}

/// An in-flight dedup-handshake transaction (see [`CasStore::begin_dedup`]).
pub struct DedupTxn {
    store: CasStore,
    journal_path: PathBuf,
    manifest: Manifest,
    missing: Vec<u32>,
    next: usize,
    stats: PutStats,
}

impl DedupTxn {
    /// Indexes (into the manifest's chunk list) the caller must supply via
    /// [`DedupTxn::supply_chunk`], in this order, before commit.
    pub fn missing(&self) -> &[u32] {
        &self.missing
    }

    /// Supply the bytes of the next missing chunk. The content is verified
    /// against the announced digest — a transport that delivers the wrong
    /// bytes cannot poison the store.
    pub fn supply_chunk(&mut self, bytes: &[u8]) -> Result<()> {
        let Some(&idx) = self.missing.get(self.next) else {
            return Err(PparError::InvalidPlan(
                "dedup transaction: more chunks supplied than missing".into(),
            ));
        };
        let want = self.manifest.chunks[idx as usize];
        if bytes.len() != want.len as usize {
            return Err(PparError::CorruptCheckpoint(format!(
                "dedup chunk {idx}: got {} bytes, manifest expects {}",
                bytes.len(),
                want.len
            )));
        }
        let digest = ChunkDigest::of(bytes);
        if digest != want.digest {
            return Err(PparError::CorruptCheckpoint(format!(
                "dedup chunk {idx}: content digest {} does not match announced {}",
                digest.to_hex(),
                want.digest.to_hex()
            )));
        }
        if self.store.put_chunk(&digest, bytes)? {
            self.stats.chunks_written += 1;
            self.stats.bytes_stored += bytes.len() as u64;
        } else {
            // Raced with another writer staging identical content — the
            // bytes still crossed the wire, so this is not a wire skip.
            self.stats.chunks_deduped += 1;
        }
        self.next += 1;
        Ok(())
    }

    /// Promote the record once every missing chunk has been supplied;
    /// returns the record's byte length.
    pub fn commit(mut self, name: &str) -> Result<u64> {
        if self.next != self.missing.len() {
            return Err(PparError::InvalidPlan(format!(
                "dedup transaction committed with {} of {} missing chunks supplied",
                self.next,
                self.missing.len()
            )));
        }
        let dst = self.store.manifest_path(name);
        fs::rename(&self.journal_path, &dst)?;
        self.store.merge_stats(&self.stats);
        self.store.maybe_gc()?;
        let total = self.manifest.total_len;
        // Rename consumed the journal file; Drop must not remove `dst`.
        self.journal_path = dst.with_extension("committed.nonexistent");
        Ok(total)
    }

    /// Discard the transaction (explicit form of dropping it).
    pub fn abort(self) {}
}

impl Drop for DedupTxn {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.journal_path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ppar_cas_test_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn cfg_now() -> CasConfig {
        CasConfig {
            gc_grace: Duration::ZERO,
            ..CasConfig::default()
        }
    }

    #[test]
    fn roundtrip_and_dedup() {
        let store = CasStore::open_with(tmp("rt"), cfg_now()).unwrap();
        // Aperiodic over the chunk size, so no two chunks dedupe by accident.
        let record: Vec<u8> = (0..3 * DIRTY_CHUNK_BYTES + 100)
            .map(|i| (i ^ (i >> 8)) as u8)
            .collect();
        let mut t = store.begin().unwrap();
        t.append(&record).unwrap();
        assert_eq!(t.commit("rec_a").unwrap(), record.len() as u64);
        assert_eq!(store.read_record("rec_a").unwrap().unwrap(), record);
        let s1 = store.take_put_stats();
        assert_eq!(s1.chunks_written, 4);
        assert_eq!(s1.chunks_deduped, 0);

        // Identical content under a second name: all chunks dedupe.
        let mut t = store.begin().unwrap();
        t.append(&record).unwrap();
        t.commit("rec_b").unwrap();
        let s2 = store.take_put_stats();
        assert_eq!(s2.chunks_written, 0);
        assert_eq!(s2.chunks_deduped, 4);
        assert_eq!(s2.bytes_deduped, record.len() as u64);
        assert_eq!(store.read_record("rec_b").unwrap().unwrap(), record);
    }

    #[test]
    fn manifest_encode_decode() {
        let m = Manifest {
            chunk_size: 8192,
            total_len: 8192 + 77,
            chunks: vec![
                ChunkRef {
                    digest: ChunkDigest::of(b"x"),
                    len: 8192,
                },
                ChunkRef {
                    digest: ChunkDigest::of(b"y"),
                    len: 77,
                },
            ],
        };
        let bytes = m.encode();
        assert_eq!(Manifest::decode(&bytes).unwrap(), m);
        let mut bad = bytes.clone();
        *bad.last_mut().unwrap() ^= 1;
        assert!(Manifest::decode(&bad).is_err());
    }

    #[test]
    fn gc_sweeps_unreferenced_only() {
        let store = CasStore::open_with(tmp("gc"), cfg_now()).unwrap();
        let rec_a: Vec<u8> = vec![1; 2 * DIRTY_CHUNK_BYTES];
        let rec_b: Vec<u8> = vec![2; 2 * DIRTY_CHUNK_BYTES];
        let mut t = store.begin().unwrap();
        t.append(&rec_a).unwrap();
        t.commit("a").unwrap();
        let mut t = store.begin().unwrap();
        t.append(&rec_b).unwrap();
        t.commit("b").unwrap();
        store.remove_manifest("b").unwrap();
        let gc = store.gc().unwrap();
        assert_eq!(gc.objects_swept, 1, "rec_b's single distinct chunk");
        assert_eq!(store.read_record("a").unwrap().unwrap(), rec_a);
        // Nothing left to sweep.
        assert_eq!(store.gc().unwrap().objects_swept, 0);
    }

    #[test]
    fn crash_between_stage_and_promote_rolls_back() {
        let dir = tmp("crash");
        let store = CasStore::open_with(&dir, cfg_now()).unwrap();
        let gen1: Vec<u8> = vec![7; DIRTY_CHUNK_BYTES + 5];
        let mut t = store.begin().unwrap();
        t.append(&gen1).unwrap();
        t.commit("rec").unwrap();

        let gen2: Vec<u8> = vec![9; DIRTY_CHUNK_BYTES + 5];
        let mut t = store.begin().unwrap();
        t.append(&gen2).unwrap();
        t.stage("rec").unwrap().simulate_crash();

        // Reopen: previous generation intact, orphan journal present.
        let store = CasStore::open_with(&dir, cfg_now()).unwrap();
        assert_eq!(store.read_record("rec").unwrap().unwrap(), gen1);
        let gc = store.gc().unwrap();
        assert_eq!(gc.journals_discarded, 1);
        // gen2's chunks are garbage once the journal is gone.
        assert!(store.gc().unwrap().objects_swept > 0 || gc.objects_swept > 0);
        assert_eq!(store.read_record("rec").unwrap().unwrap(), gen1);
    }

    #[test]
    fn dedup_txn_supplies_only_missing() {
        let store = CasStore::open_with(tmp("dedup"), cfg_now()).unwrap();
        let base: Vec<u8> = (0..4 * DIRTY_CHUNK_BYTES).map(|i| (i / 7) as u8).collect();
        let mut t = store.begin().unwrap();
        t.append(&base).unwrap();
        t.commit("base").unwrap();
        store.take_put_stats();

        // One chunk mutated: the handshake must ask for exactly that one.
        let mut next = base.clone();
        next[2 * DIRTY_CHUNK_BYTES + 3] ^= 0xFF;
        let refs: Vec<ChunkRef> = next
            .chunks(DIRTY_CHUNK_BYTES)
            .map(|c| ChunkRef {
                digest: ChunkDigest::of(c),
                len: c.len() as u32,
            })
            .collect();
        let mut txn = store.begin_dedup(&refs, next.len() as u64).unwrap();
        assert_eq!(txn.missing(), &[2]);
        txn.supply_chunk(&next[2 * DIRTY_CHUNK_BYTES..3 * DIRTY_CHUNK_BYTES])
            .unwrap();
        assert_eq!(txn.commit("next").unwrap(), next.len() as u64);
        assert_eq!(store.read_record("next").unwrap().unwrap(), next);
        let s = store.take_put_stats();
        assert_eq!(s.chunks_written, 1);
        assert_eq!(s.chunks_deduped, 3);
    }

    #[test]
    fn dedup_txn_rejects_wrong_content() {
        let store = CasStore::open_with(tmp("dedup_bad"), cfg_now()).unwrap();
        let chunk = vec![5u8; DIRTY_CHUNK_BYTES];
        let refs = [ChunkRef {
            digest: ChunkDigest::of(&chunk),
            len: chunk.len() as u32,
        }];
        let mut txn = store.begin_dedup(&refs, chunk.len() as u64).unwrap();
        let wrong = vec![6u8; DIRTY_CHUNK_BYTES];
        assert!(txn.supply_chunk(&wrong).is_err());
    }

    #[test]
    fn quota_triggers_gc() {
        let dir = tmp("quota");
        let cfg = CasConfig {
            quota_bytes: Some((DIRTY_CHUNK_BYTES as u64) * 3),
            gc_grace: Duration::ZERO,
            ..CasConfig::default()
        };
        let store = CasStore::open_with(&dir, cfg).unwrap();
        for gen in 0..4u8 {
            let rec = vec![gen; 2 * DIRTY_CHUNK_BYTES];
            let mut t = store.begin().unwrap();
            t.append(&rec).unwrap();
            t.commit("rec").unwrap();
        }
        // Each generation replaces the manifest, orphaning the previous
        // generation's chunks; the quota sweep must have kept volume near
        // one live record, not four.
        assert!(
            store.object_bytes() <= (DIRTY_CHUNK_BYTES as u64) * 4,
            "quota GC did not bound the store: {} bytes",
            store.object_bytes()
        );
        assert_eq!(
            store.read_record("rec").unwrap().unwrap(),
            vec![3u8; 2 * DIRTY_CHUNK_BYTES]
        );
    }
}
