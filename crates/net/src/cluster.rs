//! The local-cluster driver: launch N copies of a binary as real OS
//! processes wired to one rendezvous address — the "mpirun" of this repo —
//! plus the process-level crash/restart loop.
//!
//! The driver owns nothing but PIDs: each rank process bootstraps itself
//! through [`crate::tcp::TcpFabric::connect`] from the environment
//! contract the driver sets ([`crate::tcp::ENV_RANK`] /
//! [`crate::tcp::ENV_NRANKS`] / [`crate::tcp::ENV_ROOT`]). When a rank
//! dies, its peers fail out of their blocked collectives and exit nonzero;
//! [`run_cluster_until_complete`] then relaunches the whole job, and the
//! checkpoint layer's start-up failure detection replays it from the last
//! durable snapshot.

use std::io;
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::{Child, Command, ExitStatus, Stdio};
use std::time::{Duration, Instant};

use crate::tcp::{ENV_NRANKS, ENV_RANK, ENV_ROOT};

/// Reserve a fresh loopback `host:port` for a rendezvous listener: bind an
/// ephemeral port, read the address back, release it.
///
/// This is inherently reserve-then-rebind: another process *could* grab
/// the port in the instant between release and the rank-0 child's bind.
/// The kernel's ephemeral allocator avoids recently used ports, so the
/// window is minute; when it does fire, the job fails loudly within the
/// bootstrap deadline (rank 0 cannot bind, its peers time out of the
/// rendezvous) and [`run_cluster_until_complete`] retries the next
/// attempt with a freshly reserved address.
pub fn free_loopback_addr() -> io::Result<String> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    Ok(listener.local_addr()?.to_string())
}

/// What to launch, N times.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Number of rank processes.
    pub nranks: usize,
    /// Binary to execute for every rank.
    pub exe: PathBuf,
    /// Arguments passed to every rank.
    pub args: Vec<String>,
    /// Extra environment variables set for every rank (on top of the
    /// `PPAR_*` contract).
    pub envs: Vec<(String, String)>,
    /// Silence the children's stdout/stderr (noise control for benches;
    /// tests keep them inherited for diagnosability).
    pub quiet: bool,
}

impl ClusterSpec {
    /// Launch `nranks` copies of `exe` with `args`.
    pub fn new(nranks: usize, exe: impl Into<PathBuf>, args: Vec<String>) -> ClusterSpec {
        ClusterSpec {
            nranks,
            exe: exe.into(),
            args,
            envs: Vec::new(),
            quiet: false,
        }
    }

    /// Launch `nranks` copies of the *current* binary with `args` — the
    /// self-spawn pattern tests and benches use to become their own
    /// workers.
    pub fn current_exe(nranks: usize, args: Vec<String>) -> io::Result<ClusterSpec> {
        Ok(ClusterSpec::new(nranks, std::env::current_exe()?, args))
    }

    /// Add an environment variable for every rank.
    pub fn env(mut self, key: impl Into<String>, value: impl Into<String>) -> ClusterSpec {
        self.envs.push((key.into(), value.into()));
        self
    }
}

/// A running cluster of rank processes.
pub struct LocalCluster {
    root: String,
    children: Vec<Option<Child>>,
}

/// Spawn one process per rank (rank 0 first, so the rendezvous listener
/// comes up promptly), all pointed at a freshly reserved loopback
/// rendezvous address.
pub fn spawn_local_cluster(spec: &ClusterSpec) -> io::Result<LocalCluster> {
    assert!(spec.nranks >= 1, "need at least one rank");
    let root = free_loopback_addr()?;
    let mut children: Vec<Option<Child>> = Vec::with_capacity(spec.nranks);
    for rank in 0..spec.nranks {
        let mut cmd = Command::new(&spec.exe);
        cmd.args(&spec.args)
            .env(ENV_RANK, rank.to_string())
            .env(ENV_NRANKS, spec.nranks.to_string())
            .env(ENV_ROOT, &root);
        for (k, v) in &spec.envs {
            cmd.env(k, v);
        }
        if spec.quiet {
            cmd.stdout(Stdio::null()).stderr(Stdio::null());
        }
        match cmd.spawn() {
            Ok(child) => children.push(Some(child)),
            Err(e) => {
                // Reap what already started before reporting.
                let mut started = LocalCluster { root, children };
                started.kill_all();
                return Err(e);
            }
        }
    }
    Ok(LocalCluster { root, children })
}

impl LocalCluster {
    /// The rendezvous address the ranks were pointed at.
    pub fn root_addr(&self) -> &str {
        &self.root
    }

    /// Number of ranks launched.
    pub fn nranks(&self) -> usize {
        self.children.len()
    }

    /// Kill one rank process (SIGKILL — the crash-recovery scenario's
    /// "machine loss") and reap it. No-op if it already exited.
    pub fn kill_rank(&mut self, rank: usize) -> io::Result<()> {
        if let Some(child) = self.children[rank].as_mut() {
            let _ = child.kill();
            let _ = child.wait();
            self.children[rank] = None;
        }
        Ok(())
    }

    /// Kill and reap every remaining rank.
    pub fn kill_all(&mut self) {
        for rank in 0..self.children.len() {
            let _ = self.kill_rank(rank);
        }
    }

    /// Wait (polling) until every rank exits or `deadline` passes; on
    /// expiry the stragglers are killed and a `TimedOut` error returns.
    /// Exit statuses come back rank-indexed; ranks already reaped by
    /// [`LocalCluster::kill_rank`] report `None`.
    pub fn wait_all(&mut self, deadline: Duration) -> io::Result<Vec<Option<ExitStatus>>> {
        let end = Instant::now() + deadline;
        let mut statuses: Vec<Option<ExitStatus>> = vec![None; self.children.len()];
        loop {
            let mut pending = false;
            for (rank, slot) in self.children.iter_mut().enumerate() {
                if statuses[rank].is_some() {
                    continue;
                }
                match slot {
                    None => {}
                    Some(child) => match child.try_wait()? {
                        Some(status) => {
                            statuses[rank] = Some(status);
                            *slot = None;
                        }
                        None => pending = true,
                    },
                }
            }
            if !pending {
                return Ok(statuses);
            }
            if Instant::now() >= end {
                self.kill_all();
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("cluster did not exit within {deadline:?}"),
                ));
            }
            std::thread::sleep(Duration::from_millis(15));
        }
    }
}

impl Drop for LocalCluster {
    fn drop(&mut self) {
        // Never leak rank processes past the driver.
        self.kill_all();
    }
}

/// Launch `spec` until every rank exits successfully, relaunching the
/// whole job after any failure (the process-level restart path: the
/// checkpoint layer detects the dead run at start-up and replays it from
/// the last durable snapshot). Returns the number of launches it took.
pub fn run_cluster_until_complete(
    spec: &ClusterSpec,
    attempt_timeout: Duration,
    max_attempts: usize,
) -> io::Result<usize> {
    for attempt in 1..=max_attempts {
        let mut cluster = spawn_local_cluster(spec)?;
        match cluster.wait_all(attempt_timeout) {
            Ok(statuses)
                if statuses
                    .iter()
                    .all(|s| s.map(|s| s.success()).unwrap_or(false)) =>
            {
                return Ok(attempt)
            }
            Ok(_) | Err(_) => {}
        }
    }
    Err(io::Error::other(format!(
        "cluster did not complete within {max_attempts} attempts"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_addr_is_loopback_with_port() {
        let addr = free_loopback_addr().unwrap();
        assert!(addr.starts_with("127.0.0.1:"), "{addr}");
        let port: u16 = addr.rsplit_once(':').unwrap().1.parse().unwrap();
        assert_ne!(port, 0);
    }

    #[test]
    fn spec_builder_accumulates_env() {
        let spec = ClusterSpec::new(2, "/bin/true", vec!["x".into()])
            .env("A", "1")
            .env("B", "2");
        assert_eq!(spec.envs.len(), 2);
        assert_eq!(spec.nranks, 2);
    }

    #[cfg(unix)]
    #[test]
    fn wait_all_reaps_and_reports() {
        // `true` exits 0 immediately; no fabric involved — this exercises
        // only the process plumbing.
        let spec = ClusterSpec::new(3, "/bin/true", vec![]);
        let mut cluster = spawn_local_cluster(&spec).unwrap();
        let statuses = cluster.wait_all(Duration::from_secs(10)).unwrap();
        assert_eq!(statuses.len(), 3);
        assert!(statuses.iter().all(|s| s.unwrap().success()));
    }

    #[cfg(unix)]
    #[test]
    fn wait_all_times_out_on_stragglers() {
        let spec = ClusterSpec::new(1, "/bin/sleep", vec!["30".into()]).env("X", "1");
        let mut cluster = spawn_local_cluster(&spec).unwrap();
        let err = cluster.wait_all(Duration::from_millis(200)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
    }

    #[cfg(unix)]
    #[test]
    fn restart_driver_counts_attempts() {
        // `false` always fails: the driver retries to its cap.
        let spec = ClusterSpec::new(1, "/bin/false", vec![]);
        let err = run_cluster_until_complete(&spec, Duration::from_secs(5), 2).unwrap_err();
        assert!(err.to_string().contains("2 attempts"), "{err}");
        let ok = ClusterSpec::new(2, "/bin/true", vec![]);
        assert_eq!(
            run_cluster_until_complete(&ok, Duration::from_secs(5), 3).unwrap(),
            1
        );
    }
}
