//! The local-cluster driver: launch N copies of a binary as real OS
//! processes wired to one rendezvous address — the "mpirun" of this repo —
//! plus the process-level crash/restart loop.
//!
//! The driver owns nothing but PIDs: each rank process bootstraps itself
//! through [`crate::tcp::TcpFabric::connect`] from the environment
//! contract the driver sets ([`crate::tcp::ENV_RANK`] /
//! [`crate::tcp::ENV_NRANKS`] / [`crate::tcp::ENV_ROOT`]). When a rank
//! dies, its peers fail out of their blocked collectives and exit nonzero;
//! [`run_cluster_until_complete`] then relaunches the whole job, and the
//! checkpoint layer's start-up failure detection replays it from the last
//! durable snapshot.

use std::io;
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::{Child, Command, ExitStatus, Stdio};
use std::time::{Duration, Instant};

use crate::tcp::{ENV_NRANKS, ENV_RANK, ENV_REJOIN, ENV_RESILIENT, ENV_ROOT};

/// Reserve a fresh loopback `host:port` for a rendezvous listener: bind an
/// ephemeral port, read the address back, release it.
///
/// This is inherently reserve-then-rebind: another process *could* grab
/// the port in the instant between release and the rank-0 child's bind.
/// The kernel's ephemeral allocator avoids recently used ports, so the
/// window is minute; when it does fire, the job fails loudly within the
/// bootstrap deadline (rank 0 cannot bind, its peers time out of the
/// rendezvous) and [`run_cluster_until_complete`] retries the next
/// attempt with a freshly reserved address.
pub fn free_loopback_addr() -> io::Result<String> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    Ok(listener.local_addr()?.to_string())
}

/// What to launch, N times.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Number of rank processes.
    pub nranks: usize,
    /// Binary to execute for every rank.
    pub exe: PathBuf,
    /// Arguments passed to every rank.
    pub args: Vec<String>,
    /// Extra environment variables set for every rank (on top of the
    /// `PPAR_*` contract).
    pub envs: Vec<(String, String)>,
    /// Silence the children's stdout/stderr (noise control for benches;
    /// tests keep them inherited for diagnosability).
    pub quiet: bool,
}

impl ClusterSpec {
    /// Launch `nranks` copies of `exe` with `args`.
    pub fn new(nranks: usize, exe: impl Into<PathBuf>, args: Vec<String>) -> ClusterSpec {
        ClusterSpec {
            nranks,
            exe: exe.into(),
            args,
            envs: Vec::new(),
            quiet: false,
        }
    }

    /// Launch `nranks` copies of the *current* binary with `args` — the
    /// self-spawn pattern tests and benches use to become their own
    /// workers.
    pub fn current_exe(nranks: usize, args: Vec<String>) -> io::Result<ClusterSpec> {
        Ok(ClusterSpec::new(nranks, std::env::current_exe()?, args))
    }

    /// Add an environment variable for every rank.
    pub fn env(mut self, key: impl Into<String>, value: impl Into<String>) -> ClusterSpec {
        self.envs.push((key.into(), value.into()));
        self
    }
}

/// A running cluster of rank processes.
pub struct LocalCluster {
    root: String,
    children: Vec<Option<Child>>,
}

/// Spawn one process per rank (rank 0 first, so the rendezvous listener
/// comes up promptly), all pointed at a freshly reserved loopback
/// rendezvous address.
pub fn spawn_local_cluster(spec: &ClusterSpec) -> io::Result<LocalCluster> {
    assert!(spec.nranks >= 1, "need at least one rank");
    let root = free_loopback_addr()?;
    let mut children: Vec<Option<Child>> = Vec::with_capacity(spec.nranks);
    for rank in 0..spec.nranks {
        let mut cmd = Command::new(&spec.exe);
        cmd.args(&spec.args)
            .env(ENV_RANK, rank.to_string())
            .env(ENV_NRANKS, spec.nranks.to_string())
            .env(ENV_ROOT, &root);
        for (k, v) in &spec.envs {
            cmd.env(k, v);
        }
        if spec.quiet {
            cmd.stdout(Stdio::null()).stderr(Stdio::null());
        }
        match cmd.spawn() {
            Ok(child) => children.push(Some(child)),
            Err(e) => {
                // Reap what already started before reporting.
                let mut started = LocalCluster { root, children };
                started.kill_all();
                return Err(e);
            }
        }
    }
    Ok(LocalCluster { root, children })
}

impl LocalCluster {
    /// The rendezvous address the ranks were pointed at.
    pub fn root_addr(&self) -> &str {
        &self.root
    }

    /// Number of ranks launched.
    pub fn nranks(&self) -> usize {
        self.children.len()
    }

    /// Current OS PID of each rank process (`None` once reaped).
    pub fn pids(&self) -> Vec<Option<u32>> {
        self.children
            .iter()
            .map(|c| c.as_ref().map(|c| c.id()))
            .collect()
    }

    /// Relaunch one (dead, already-reaped) rank into the existing mesh:
    /// same binary, same contract, same rendezvous address, plus
    /// [`ENV_REJOIN`] so the newcomer takes the rejoin bootstrap path
    /// instead of the full rendezvous. Returns the new PID.
    pub fn respawn_rank(&mut self, spec: &ClusterSpec, rank: usize) -> io::Result<u32> {
        assert!(rank != 0, "rank 0 owns the rendezvous and cannot rejoin");
        let mut cmd = Command::new(&spec.exe);
        cmd.args(&spec.args)
            .env(ENV_RANK, rank.to_string())
            .env(ENV_NRANKS, self.children.len().to_string())
            .env(ENV_ROOT, &self.root)
            .env(ENV_RESILIENT, "1")
            .env(ENV_REJOIN, "1");
        for (k, v) in &spec.envs {
            cmd.env(k, v);
        }
        if spec.quiet {
            cmd.stdout(Stdio::null()).stderr(Stdio::null());
        }
        let child = cmd.spawn()?;
        let pid = child.id();
        self.children[rank] = Some(child);
        Ok(pid)
    }

    /// Poll one rank: reaps and returns the exit status if the process
    /// has exited, `None` while it is still running (or was already
    /// reaped). External supervisors — e.g. the recovery bench, which
    /// timestamps the death it is about to heal — build on this.
    pub fn try_wait_rank(&mut self, rank: usize) -> io::Result<Option<ExitStatus>> {
        let Some(child) = self.children[rank].as_mut() else {
            return Ok(None);
        };
        match child.try_wait()? {
            Some(status) => {
                self.children[rank] = None;
                Ok(Some(status))
            }
            None => Ok(None),
        }
    }

    /// Kill one rank process (SIGKILL — the crash-recovery scenario's
    /// "machine loss") and reap it. No-op if it already exited.
    pub fn kill_rank(&mut self, rank: usize) -> io::Result<()> {
        if let Some(child) = self.children[rank].as_mut() {
            let _ = child.kill();
            let _ = child.wait();
            self.children[rank] = None;
        }
        Ok(())
    }

    /// Kill and reap every remaining rank.
    pub fn kill_all(&mut self) {
        for rank in 0..self.children.len() {
            let _ = self.kill_rank(rank);
        }
    }

    /// Wait (polling) until every rank exits or `deadline` passes; on
    /// expiry the stragglers are killed and a `TimedOut` error returns.
    /// Exit statuses come back rank-indexed; ranks already reaped by
    /// [`LocalCluster::kill_rank`] report `None`.
    pub fn wait_all(&mut self, deadline: Duration) -> io::Result<Vec<Option<ExitStatus>>> {
        let end = Instant::now() + deadline;
        let mut statuses: Vec<Option<ExitStatus>> = vec![None; self.children.len()];
        loop {
            let mut pending = false;
            for (rank, slot) in self.children.iter_mut().enumerate() {
                if statuses[rank].is_some() {
                    continue;
                }
                match slot {
                    None => {}
                    Some(child) => match child.try_wait()? {
                        Some(status) => {
                            statuses[rank] = Some(status);
                            *slot = None;
                        }
                        None => pending = true,
                    },
                }
            }
            if !pending {
                return Ok(statuses);
            }
            if Instant::now() >= end {
                self.kill_all();
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("cluster did not exit within {deadline:?}"),
                ));
            }
            std::thread::sleep(Duration::from_millis(15));
        }
    }
}

impl Drop for LocalCluster {
    fn drop(&mut self) {
        // Never leak rank processes past the driver.
        self.kill_all();
    }
}

/// Launch `spec` until every rank exits successfully, relaunching the
/// whole job after any failure (the process-level restart path: the
/// checkpoint layer detects the dead run at start-up and replays it from
/// the last durable snapshot). Returns the number of launches it took.
pub fn run_cluster_until_complete(
    spec: &ClusterSpec,
    attempt_timeout: Duration,
    max_attempts: usize,
) -> io::Result<usize> {
    for attempt in 1..=max_attempts {
        let mut cluster = spawn_local_cluster(spec)?;
        match cluster.wait_all(attempt_timeout) {
            Ok(statuses)
                if statuses
                    .iter()
                    .all(|s| s.map(|s| s.success()).unwrap_or(false)) =>
            {
                return Ok(attempt)
            }
            Ok(_) | Err(_) => {}
        }
    }
    Err(io::Error::other(format!(
        "cluster did not complete within {max_attempts} attempts"
    )))
}

/// Knobs for [`run_cluster_supervised`] — the self-healing driver.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Wall-clock budget for one launch (including any respawns inside
    /// it); on expiry the launch is killed and escalates to a relaunch.
    pub attempt_timeout: Duration,
    /// Full-job launches before giving up (the escalation ladder's last
    /// rung, matching [`run_cluster_until_complete`]'s `max_attempts`).
    pub max_launches: usize,
    /// Single-rank respawns allowed within one launch before the
    /// supervisor escalates to a full relaunch.
    pub max_respawns: usize,
    /// Child poll interval.
    pub poll: Duration,
}

impl Default for SupervisorConfig {
    fn default() -> SupervisorConfig {
        SupervisorConfig {
            attempt_timeout: Duration::from_secs(120),
            max_launches: 3,
            max_respawns: 4,
            poll: Duration::from_millis(15),
        }
    }
}

/// What [`run_cluster_supervised`] did to finish the job.
#[derive(Debug, Clone)]
pub struct SupervisorReport {
    /// Full-job launches used (1 = no escalation).
    pub launches: usize,
    /// Single-rank respawns across all launches.
    pub single_respawns: usize,
    /// Every PID each rank ran under during the final (successful)
    /// launch, in spawn order — a survivor has exactly one entry, a
    /// recovered rank two or more. This is how tests prove recovery did
    /// *not* relaunch the survivors.
    pub pid_history: Vec<Vec<u32>>,
}

/// Launch `spec` under the **self-healing supervisor**: every rank runs
/// resilient ([`ENV_RESILIENT`]), and when a non-root rank dies the
/// supervisor respawns *only that rank* ([`LocalCluster::respawn_rank`])
/// while the survivors hold at their next safe point and re-admit it
/// (the in-job recovery path). Rank-0 death, respawn-budget exhaustion,
/// or a launch timeout escalate to a full relaunch (the
/// [`run_cluster_until_complete`] path); `max_launches` bounds those.
pub fn run_cluster_supervised(
    spec: &ClusterSpec,
    cfg: &SupervisorConfig,
) -> io::Result<SupervisorReport> {
    let resilient_spec = spec.clone().env(ENV_RESILIENT, "1");
    let mut single_respawns = 0usize;
    for launch in 1..=cfg.max_launches {
        let mut cluster = spawn_local_cluster(&resilient_spec)?;
        let mut pid_history: Vec<Vec<u32>> = cluster
            .pids()
            .into_iter()
            .map(|p| p.into_iter().collect())
            .collect();
        let mut statuses: Vec<Option<ExitStatus>> = vec![None; cluster.nranks()];
        let mut respawns_left = cfg.max_respawns;
        let deadline = Instant::now() + cfg.attempt_timeout;
        'poll: loop {
            for rank in 0..cluster.nranks() {
                if statuses[rank].is_some() {
                    continue;
                }
                let Some(status) = cluster.try_wait_rank(rank)? else {
                    continue;
                };
                if status.success() {
                    statuses[rank] = Some(status);
                } else if rank == 0 || respawns_left == 0 {
                    // Rank 0 owns the rendezvous (nobody to rejoin
                    // through), and a respawn budget run dry means the
                    // failure is not confined to one rank: relaunch.
                    break 'poll;
                } else {
                    respawns_left -= 1;
                    single_respawns += 1;
                    let pid = cluster.respawn_rank(&resilient_spec, rank)?;
                    pid_history[rank].push(pid);
                }
            }
            if statuses.iter().all(|s| s.is_some()) {
                return Ok(SupervisorReport {
                    launches: launch,
                    single_respawns,
                    pid_history,
                });
            }
            if Instant::now() >= deadline {
                break 'poll;
            }
            std::thread::sleep(cfg.poll);
        }
        // Escalation: this launch is unrecoverable in place.
        cluster.kill_all();
    }
    Err(io::Error::other(format!(
        "supervised cluster did not complete within {} launches",
        cfg.max_launches
    )))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_addr_is_loopback_with_port() {
        let addr = free_loopback_addr().unwrap();
        assert!(addr.starts_with("127.0.0.1:"), "{addr}");
        let port: u16 = addr.rsplit_once(':').unwrap().1.parse().unwrap();
        assert_ne!(port, 0);
    }

    #[test]
    fn spec_builder_accumulates_env() {
        let spec = ClusterSpec::new(2, "/bin/true", vec!["x".into()])
            .env("A", "1")
            .env("B", "2");
        assert_eq!(spec.envs.len(), 2);
        assert_eq!(spec.nranks, 2);
    }

    #[cfg(unix)]
    #[test]
    fn wait_all_reaps_and_reports() {
        // `true` exits 0 immediately; no fabric involved — this exercises
        // only the process plumbing.
        let spec = ClusterSpec::new(3, "/bin/true", vec![]);
        let mut cluster = spawn_local_cluster(&spec).unwrap();
        let statuses = cluster.wait_all(Duration::from_secs(10)).unwrap();
        assert_eq!(statuses.len(), 3);
        assert!(statuses.iter().all(|s| s.unwrap().success()));
    }

    #[cfg(unix)]
    #[test]
    fn wait_all_times_out_on_stragglers() {
        let spec = ClusterSpec::new(1, "/bin/sleep", vec!["30".into()]).env("X", "1");
        let mut cluster = spawn_local_cluster(&spec).unwrap();
        let err = cluster.wait_all(Duration::from_millis(200)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
    }

    #[cfg(unix)]
    #[test]
    fn restart_driver_counts_attempts() {
        // `false` always fails: the driver retries to its cap.
        let spec = ClusterSpec::new(1, "/bin/false", vec![]);
        let err = run_cluster_until_complete(&spec, Duration::from_secs(5), 2).unwrap_err();
        assert!(err.to_string().contains("2 attempts"), "{err}");
        let ok = ClusterSpec::new(2, "/bin/true", vec![]);
        assert_eq!(
            run_cluster_until_complete(&ok, Duration::from_secs(5), 3).unwrap(),
            1
        );
    }
}
