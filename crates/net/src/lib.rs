//! # ppar-net — the real multi-process distributed backend
//!
//! Everything "distributed" in the lower crates is expressed against the
//! [`fabric::Fabric`] trait: a tag-matched, rank-addressed message
//! transport. Two implementations exist:
//!
//! * `ppar_dsm::SimNet` — the cost-modelled **simulated** interconnect
//!   (aggregate elements are threads of one process), unchanged;
//! * [`tcp::TcpFabric`] (this crate) — a **real TCP mesh** between OS
//!   processes: one process per rank, a rendezvous bootstrap driven by the
//!   `PPAR_RANK` / `PPAR_NRANKS` / `PPAR_ROOT` environment contract, one
//!   socket per peer with dedicated send and receive threads, and
//!   length-prefixed CRC-framed messages ([`frame`]).
//!
//! Because the `DsmEngine`, the collectives and both checkpoint strategies
//! are written against the trait, the same application binary runs
//! unmodified over either fabric — threads under `SimNet`, real processes
//! under `TcpFabric` — and produces bitwise-identical results.
//!
//! On top of the fabric sit:
//!
//! * [`cluster`] — `spawn_local_cluster`: launch N copies of a binary as
//!   real OS processes wired to one rendezvous address (the "mpirun" of
//!   this repo), plus a process-level crash/restart driver;
//! * [`transport`] — [`transport::NetTransport`], a
//!   `ppar_ckpt::CkptTransport` that streams full/delta checkpoint records
//!   rank → root (and root → rank on restart) as bounded-window chunk
//!   streams: the encoder writes straight into wire frames, the root's
//!   per-rank service lanes install records *while they arrive*, and no
//!   whole-record buffer exists anywhere on the path — so per-rank shard
//!   persistence and gigabyte-scale rank-state migration work when ranks
//!   no longer share an address space (or a disk), in memory bounded by
//!   the stream window rather than the record.
//!
//! Process death is a first-class event: a closed or corrupted peer
//! connection marks the peer *down*, every receive blocked on it fails
//! with [`ppar_core::error::PparError::Network`], and the surviving
//! processes exit so the cluster driver can restart the job from its last
//! durable checkpoint.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod chaos;
pub mod cluster;
pub mod fabric;
pub mod frame;
pub mod mirror;
pub mod retry;
pub mod tcp;
pub mod transport;

pub use chaos::{ChaosConfig, ChaosFabric};
pub use cluster::{
    free_loopback_addr, run_cluster_supervised, run_cluster_until_complete, spawn_local_cluster,
    ClusterSpec, LocalCluster, SupervisorConfig, SupervisorReport,
};
pub use fabric::{Fabric, Payload, Traffic};
pub use mirror::MirrorTransport;
pub use retry::RetryPolicy;
pub use tcp::{NetConfig, TcpFabric, ENV_NRANKS, ENV_RANK, ENV_ROOT};
pub use transport::{CkptService, NetTransport};
