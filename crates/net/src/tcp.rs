//! The real TCP fabric: one OS process per rank, a full socket mesh, and
//! the rendezvous bootstrap that builds it.
//!
//! ## Bootstrap (the `PPAR_*` environment contract)
//!
//! Every rank process is launched with three environment variables (see
//! [`crate::cluster::spawn_local_cluster`]):
//!
//! | variable      | meaning                                             |
//! |---------------|-----------------------------------------------------|
//! | `PPAR_RANK`   | this process's rank (0-based)                       |
//! | `PPAR_NRANKS` | aggregate size                                      |
//! | `PPAR_ROOT`   | `host:port` of rank 0's rendezvous listener         |
//!
//! Rank 0 listens on `PPAR_ROOT`. Every other rank binds its own
//! ephemeral listener, connects to the root with retry, and sends a HELLO
//! frame carrying its rank and listener address. Once all ranks have
//! reported, the root broadcasts the address table and the mesh completes
//! pairwise: rank *j* connects to every lower rank *i* (`0 < i < j`) and
//! accepts from every higher one, identifying itself with a MESH frame.
//! The root↔rank link reuses the HELLO connection. All sockets run with
//! `TCP_NODELAY` (collective messages are small and latency-bound).
//!
//! ## Data plane
//!
//! Each peer link gets a dedicated **send thread** (draining an unbounded
//! queue through a `BufWriter`, coalescing bursts into single flushes) and
//! a dedicated **receive thread** (decoding [`crate::frame`] frames into
//! the shared tag-matched mailbox). Sends never block the caller and never
//! fail; a dead peer surfaces on `recv`.
//!
//! ## Failure semantics
//!
//! EOF, an I/O error or a corrupt frame on a peer link marks that peer
//! **down** and wakes every blocked receiver. `recv` first drains messages
//! that already arrived, then fails with
//! [`PparError::Network`]. A crashed rank therefore cascades: its peers
//! fail out of their blocked collectives, exit nonzero, and the cluster
//! driver restarts the job from the last durable checkpoint.

use std::collections::{HashMap, VecDeque};
use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use ppar_core::error::{PparError, Result};

use crate::fabric::{Fabric, Payload, Traffic};
use crate::frame::{read_frame, write_frame, write_frame_vectored};

/// Environment variable naming this process's rank.
pub const ENV_RANK: &str = "PPAR_RANK";
/// Environment variable naming the aggregate size.
pub const ENV_NRANKS: &str = "PPAR_NRANKS";
/// Environment variable naming rank 0's rendezvous `host:port`.
pub const ENV_ROOT: &str = "PPAR_ROOT";
/// Optional override (seconds) for both bootstrap and receive timeouts.
pub const ENV_TIMEOUT: &str = "PPAR_NET_TIMEOUT_SECS";

/// Handshake frame tags (used only on the raw streams before the data
/// plane starts, so they cannot collide with fabric traffic).
const HELLO_TAG: u64 = 0x7070_6172_0001;
const TABLE_TAG: u64 = 0x7070_6172_0002;
const MESH_TAG: u64 = 0x7070_6172_0003;

/// One rank's view of the job, resolved from the environment contract.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// This process's rank.
    pub rank: usize,
    /// Aggregate size.
    pub nranks: usize,
    /// Rank 0's rendezvous address (`host:port`).
    pub root: String,
    /// How long bootstrap connects retry before giving up.
    pub connect_timeout: Duration,
    /// How long a `recv` waits without progress before reporting a hang
    /// (guards CI against silent deadlocks when a peer wedges rather than
    /// dies).
    pub recv_timeout: Duration,
}

impl NetConfig {
    /// A config with the default timeouts (20 s bootstrap, 120 s receive).
    pub fn new(rank: usize, nranks: usize, root: impl Into<String>) -> NetConfig {
        NetConfig {
            rank,
            nranks,
            root: root.into(),
            connect_timeout: Duration::from_secs(20),
            recv_timeout: Duration::from_secs(120),
        }
    }

    /// Resolve the `PPAR_RANK` / `PPAR_NRANKS` / `PPAR_ROOT` contract.
    /// Returns `Ok(None)` when `PPAR_RANK` is unset (the process was not
    /// launched as a cluster rank); malformed values are errors.
    pub fn from_env() -> Result<Option<NetConfig>> {
        NetConfig::from_lookup(|name| std::env::var(name).ok())
    }

    /// [`NetConfig::from_env`] over an injectable variable lookup (reads
    /// only — tests exercise the contract without mutating the
    /// process-global environment, which is not thread-safe to write).
    fn from_lookup(get: impl Fn(&str) -> Option<String>) -> Result<Option<NetConfig>> {
        let Some(rank) = get(ENV_RANK) else {
            return Ok(None);
        };
        let parse = |name: &str, v: &str| {
            v.parse::<usize>()
                .map_err(|_| PparError::Network(format!("{name}={v:?} is not a number")))
        };
        let rank = parse(ENV_RANK, &rank)?;
        let nranks = get(ENV_NRANKS)
            .ok_or_else(|| PparError::Network(format!("{ENV_RANK} set but {ENV_NRANKS} missing")))
            .and_then(|v| parse(ENV_NRANKS, &v))?;
        let root = get(ENV_ROOT)
            .ok_or_else(|| PparError::Network(format!("{ENV_RANK} set but {ENV_ROOT} missing")))?;
        if rank >= nranks {
            return Err(PparError::Network(format!(
                "{ENV_RANK}={rank} out of range for {ENV_NRANKS}={nranks}"
            )));
        }
        let mut cfg = NetConfig::new(rank, nranks, root);
        if let Some(secs) = get(ENV_TIMEOUT) {
            let secs = secs.parse::<u64>().map_err(|_| {
                PparError::Network(format!("{ENV_TIMEOUT}={secs:?} is not a number"))
            })?;
            cfg.connect_timeout = Duration::from_secs(secs);
            cfg.recv_timeout = Duration::from_secs(secs);
        }
        Ok(Some(cfg))
    }
}

/// Per-peer link state.
struct Peer {
    /// Queue into the peer's send thread; `None` for self and after
    /// shutdown.
    tx: Mutex<Option<mpsc::Sender<(u64, Payload)>>>,
    /// The socket, kept so an orderly [`TcpFabric::shutdown`] can
    /// half-close it (send FIN) once the send thread has flushed — the
    /// peer's receiver then sees a clean EOF.
    sock: Mutex<Option<TcpStream>>,
    /// Set (with a reason) when the link died; receives from this peer
    /// fail once their queues drain.
    down: Mutex<Option<String>>,
    sent_msgs: AtomicU64,
    sent_bytes: AtomicU64,
    recv_msgs: AtomicU64,
    recv_bytes: AtomicU64,
}

impl Peer {
    fn idle() -> Peer {
        Peer {
            tx: Mutex::new(None),
            sock: Mutex::new(None),
            down: Mutex::new(None),
            sent_msgs: AtomicU64::new(0),
            sent_bytes: AtomicU64::new(0),
            recv_msgs: AtomicU64::new(0),
            recv_bytes: AtomicU64::new(0),
        }
    }
}

/// Per-peer traffic counters of a [`TcpFabric`] (this rank's view).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PeerTraffic {
    /// Frames sent to this peer.
    pub sent_msgs: u64,
    /// Payload bytes sent to this peer.
    pub sent_bytes: u64,
    /// Frames received from this peer.
    pub recv_msgs: u64,
    /// Payload bytes received from this peer.
    pub recv_bytes: u64,
}

/// The real TCP message fabric for one rank process. Build with
/// [`TcpFabric::connect`]; see the [module docs](self) for the bootstrap
/// and failure semantics.
pub struct TcpFabric {
    rank: usize,
    nranks: usize,
    recv_timeout: Duration,
    mailbox: Mutex<HashMap<(usize, u64), VecDeque<Payload>>>,
    cv: Condvar,
    peers: Vec<Peer>,
    /// Send threads, joined on shutdown so every queued frame flushes.
    senders: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl TcpFabric {
    /// Run the rendezvous bootstrap and bring up the data plane. Blocks
    /// until the full mesh is connected (or `cfg.connect_timeout` expires).
    pub fn connect(cfg: &NetConfig) -> Result<Arc<TcpFabric>> {
        if cfg.nranks == 0 || cfg.rank >= cfg.nranks {
            return Err(PparError::Network(format!(
                "invalid rank {} for {} ranks",
                cfg.rank, cfg.nranks
            )));
        }
        let streams = rendezvous(cfg).map_err(|e| {
            PparError::Network(format!(
                "rank {} bootstrap via {} failed: {e}",
                cfg.rank, cfg.root
            ))
        })?;
        let fabric = Arc::new(TcpFabric {
            rank: cfg.rank,
            nranks: cfg.nranks,
            recv_timeout: cfg.recv_timeout,
            mailbox: Mutex::new(HashMap::new()),
            cv: Condvar::new(),
            peers: (0..cfg.nranks).map(|_| Peer::idle()).collect(),
            senders: Mutex::new(Vec::new()),
        });
        let mut senders = Vec::new();
        for (peer_rank, stream) in streams.into_iter().enumerate() {
            let Some(stream) = stream else { continue };
            let clone_err = |e: std::io::Error| {
                PparError::Network(format!("rank {}: socket clone failed: {e}", cfg.rank))
            };
            let reader = stream.try_clone().map_err(clone_err)?;
            *fabric.peers[peer_rank].sock.lock() = Some(stream.try_clone().map_err(clone_err)?);
            let (tx, rx) = mpsc::channel::<(u64, Payload)>();
            *fabric.peers[peer_rank].tx.lock() = Some(tx);
            let my_rank = cfg.rank;
            senders.push(
                std::thread::Builder::new()
                    .name(format!("ppar-net-send-{my_rank}-{peer_rank}"))
                    .spawn(move || sender_loop(rx, stream))
                    .expect("spawn fabric send thread"),
            );
            let weak = Arc::downgrade(&fabric);
            std::thread::Builder::new()
                .name(format!("ppar-net-recv-{my_rank}-{peer_rank}"))
                .spawn(move || receiver_loop(weak, peer_rank, reader))
                .expect("spawn fabric recv thread");
        }
        *fabric.senders.lock() = senders;
        Ok(fabric)
    }

    /// This process's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Per-peer traffic counters, rank-indexed (the self slot stays zero
    /// except for loopback self-sends, which count as sent only).
    pub fn per_peer_traffic(&self) -> Vec<PeerTraffic> {
        self.peers
            .iter()
            .map(|p| PeerTraffic {
                sent_msgs: p.sent_msgs.load(Ordering::Relaxed),
                sent_bytes: p.sent_bytes.load(Ordering::Relaxed),
                recv_msgs: p.recv_msgs.load(Ordering::Relaxed),
                recv_bytes: p.recv_bytes.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Close every send queue, join the send threads (guaranteeing all
    /// queued frames reached the kernel), then half-close each socket so
    /// peers observe a clean EOF. Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        for peer in &self.peers {
            *peer.tx.lock() = None;
        }
        let handles = std::mem::take(&mut *self.senders.lock());
        for h in handles {
            let _ = h.join();
        }
        for peer in &self.peers {
            if let Some(sock) = peer.sock.lock().take() {
                let _ = sock.shutdown(std::net::Shutdown::Write);
            }
        }
    }

    fn deposit(&self, src: usize, tag: u64, payload: Payload) {
        let mut mbox = self.mailbox.lock();
        mbox.entry((src, tag)).or_default().push_back(payload);
        self.cv.notify_all();
    }

    fn mark_down(&self, peer: usize, reason: String) {
        let mut down = self.peers[peer].down.lock();
        if down.is_none() {
            *down = Some(reason);
        }
        drop(down);
        // Wake blocked receivers so they observe the failure.
        let _guard = self.mailbox.lock();
        self.cv.notify_all();
    }

    fn peer_down(&self, peer: usize) -> Option<String> {
        self.peers[peer].down.lock().clone()
    }
}

impl Drop for TcpFabric {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl Fabric for TcpFabric {
    fn describe(&self) -> &'static str {
        "tcp"
    }

    fn nranks(&self) -> usize {
        self.nranks
    }

    fn send(&self, src: usize, dst: usize, tag: u64, payload: Payload) {
        assert_eq!(
            src, self.rank,
            "a TCP fabric handle sends only as its own rank"
        );
        assert!(dst < self.nranks, "rank out of range");
        let peer = &self.peers[dst];
        peer.sent_msgs.fetch_add(1, Ordering::Relaxed);
        peer.sent_bytes
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        if dst == self.rank {
            // Loopback: straight into the mailbox, no socket.
            self.deposit(src, tag, payload);
            return;
        }
        if let Some(tx) = &*peer.tx.lock() {
            // A send to a dead peer (send thread gone) is dropped, like a
            // datagram into a dead NIC: the failure surfaces on receive.
            let _ = tx.send((tag, payload));
        }
    }

    fn recv(&self, dst: usize, src: usize, tag: u64) -> Result<Payload> {
        assert_eq!(
            dst, self.rank,
            "a TCP fabric handle receives only as its own rank"
        );
        assert!(src < self.nranks, "rank out of range");
        let deadline = Instant::now() + self.recv_timeout;
        let mut mbox = self.mailbox.lock();
        let mut timed_out = false;
        loop {
            // The queue check runs once more *after* a timed-out wait: a
            // frame deposited in the same instant the deadline expired must
            // be delivered, not thrown away with a fatal timeout (which
            // would tear the whole job down for nothing).
            if let Some(q) = mbox.get_mut(&(src, tag)) {
                if let Some(payload) = q.pop_front() {
                    return Ok(payload);
                }
            }
            // Delivered-then-died messages above drain first; only then is
            // the peer's death observable.
            if let Some(reason) = self.peer_down(src) {
                return Err(PparError::Network(format!(
                    "rank {dst}: peer rank {src} is down ({reason}) while waiting on tag {tag:#x}"
                )));
            }
            if timed_out {
                return Err(PparError::Network(format!(
                    "rank {dst}: timed out after {:?} waiting for rank {src} tag {tag:#x}",
                    self.recv_timeout
                )));
            }
            timed_out = self.cv.wait_until(&mut mbox, deadline).timed_out();
        }
    }

    fn recv_any(&self, dst: usize, tag: u64) -> Result<(usize, Payload)> {
        assert_eq!(
            dst, self.rank,
            "a TCP fabric handle receives only as its own rank"
        );
        let mut mbox = self.mailbox.lock();
        loop {
            // Lowest source first, for determinism under load.
            let key = mbox
                .iter()
                .filter(|((_, t), q)| *t == tag && !q.is_empty())
                .map(|((s, _), _)| *s)
                .min();
            if let Some(src) = key {
                let payload = mbox
                    .get_mut(&(src, tag))
                    .and_then(|q| q.pop_front())
                    .expect("non-empty queue just observed");
                return Ok((src, payload));
            }
            let all_down = (0..self.nranks)
                .filter(|&r| r != self.rank)
                .all(|r| self.peer_down(r).is_some());
            if self.nranks > 1 && all_down {
                return Err(PparError::Network(format!(
                    "rank {dst}: every peer is down while waiting on tag {tag:#x}"
                )));
            }
            // No timeout: this is the service channel — it legitimately
            // idles between checkpoints and is woken by a stop frame.
            self.cv.wait(&mut mbox);
        }
    }

    fn probe(&self, dst: usize, src: usize, tag: u64) -> bool {
        assert_eq!(
            dst, self.rank,
            "a TCP fabric handle probes only as its own rank"
        );
        self.mailbox
            .lock()
            .get(&(src, tag))
            .map(|q| !q.is_empty())
            .unwrap_or(false)
    }

    fn traffic(&self) -> Traffic {
        // Real network: everything is "inter". Counted at the sender, like
        // the simulated fabric, so aggregating per-rank counters across a
        // job never double-counts a message.
        let mut t = Traffic::default();
        for p in &self.peers {
            t.inter_msgs += p.sent_msgs.load(Ordering::Relaxed);
            t.inter_bytes += p.sent_bytes.load(Ordering::Relaxed);
        }
        t
    }
}

/// Send-thread body: drain the queue through a buffered writer, coalescing
/// bursts into one flush. Exits when the queue closes (shutdown) or the
/// socket dies (the peer's receive side reports that).
/// Payloads at or above this size bypass the sender's `BufWriter`: the
/// buffered path would memcpy the whole payload into the 64 KiB buffer in
/// slices; instead we flush what is pending and hand header + payload to
/// the kernel as one scatter-gather `writev`. Below it, small frames still
/// coalesce into single flushes.
const VECTORED_SEND_MIN: usize = 32 << 10;

/// Write one frame, choosing the buffered or scatter-gather path by size.
fn send_frame(w: &mut BufWriter<TcpStream>, tag: u64, payload: &[u8]) -> std::io::Result<()> {
    if payload.len() >= VECTORED_SEND_MIN {
        w.flush()?;
        write_frame_vectored(w.get_mut(), tag, payload)
    } else {
        write_frame(w, tag, payload)
    }
}

fn sender_loop(rx: mpsc::Receiver<(u64, Payload)>, stream: TcpStream) {
    let mut w = BufWriter::with_capacity(64 << 10, stream);
    'outer: while let Ok((tag, payload)) = rx.recv() {
        if send_frame(&mut w, tag, &payload).is_err() {
            break;
        }
        // Coalesce whatever queued behind this frame before flushing once.
        loop {
            match rx.try_recv() {
                Ok((tag, payload)) => {
                    if send_frame(&mut w, tag, &payload).is_err() {
                        break 'outer;
                    }
                }
                Err(mpsc::TryRecvError::Empty) => break,
                Err(mpsc::TryRecvError::Disconnected) => {
                    let _ = w.flush();
                    return;
                }
            }
        }
        if w.flush().is_err() {
            break;
        }
    }
    let _ = w.flush();
}

/// Receive-thread body: decode frames into the mailbox until EOF, error or
/// fabric teardown; then mark the peer down.
fn receiver_loop(fabric: Weak<TcpFabric>, peer: usize, stream: TcpStream) {
    let mut r = BufReader::with_capacity(64 << 10, stream);
    let reason = loop {
        match read_frame(&mut r) {
            Ok(Some((tag, payload))) => {
                let Some(fabric) = fabric.upgrade() else {
                    return; // fabric gone: the job is over
                };
                let p = &fabric.peers[peer];
                p.recv_msgs.fetch_add(1, Ordering::Relaxed);
                p.recv_bytes
                    .fetch_add(payload.len() as u64, Ordering::Relaxed);
                fabric.deposit(peer, tag, Arc::new(payload));
            }
            Ok(None) => break "connection closed".to_string(),
            Err(e) => break format!("stream error: {e}"),
        }
    };
    if let Some(fabric) = fabric.upgrade() {
        fabric.mark_down(peer, reason);
    }
}

// ---------------------------------------------------------------------------
// rendezvous bootstrap
// ---------------------------------------------------------------------------

/// Establish the full mesh; returns one stream per peer (self slot `None`).
///
/// The whole bootstrap is bounded by one `cfg.connect_timeout` deadline:
/// accepts poll a non-blocking listener against it and every handshake
/// read carries a socket read timeout, so a rank that dies before (or
/// during) its HELLO/MESH exchange surfaces as a loud bootstrap error on
/// every peer instead of an indefinite hang — the same no-hangs property
/// the data plane's peer-down detection gives after the mesh is up. A
/// connection that closes before completing its handshake (a port
/// prober, or a rank that crashed right after `connect`) is skipped, not
/// fatal. Read timeouts are cleared before the streams are handed to the
/// data plane, whose receive threads must block indefinitely.
fn rendezvous(cfg: &NetConfig) -> std::io::Result<Vec<Option<TcpStream>>> {
    let n = cfg.nranks;
    let deadline = Instant::now() + cfg.connect_timeout;
    let mut peers: Vec<Option<TcpStream>> = (0..n).map(|_| None).collect();
    if n == 1 {
        return Ok(peers);
    }
    if cfg.rank == 0 {
        let listener = TcpListener::bind(&cfg.root)?;
        let mut addrs: Vec<String> = vec![String::new(); n];
        let mut reported = 0;
        while reported + 1 < n {
            let mut stream = accept_until(&listener, deadline)?;
            stream.set_nodelay(true)?;
            let Some((_, payload)) = handshake_frame(&mut stream, HELLO_TAG, deadline)? else {
                continue; // closed before HELLO: not one of ours
            };
            if payload.len() < 4 {
                return Err(bad_handshake("short HELLO"));
            }
            let rank = u32::from_le_bytes(payload[0..4].try_into().unwrap()) as usize;
            if rank == 0 || rank >= n || peers[rank].is_some() {
                return Err(bad_handshake("HELLO with invalid or duplicate rank"));
            }
            addrs[rank] = String::from_utf8(payload[4..].to_vec())
                .map_err(|_| bad_handshake("HELLO address not UTF-8"))?;
            peers[rank] = Some(stream);
            reported += 1;
        }
        // Broadcast the address table so ranks can complete the mesh.
        let mut table = Vec::new();
        table.extend_from_slice(&(n as u32).to_le_bytes());
        for addr in &addrs {
            table.extend_from_slice(&(addr.len() as u32).to_le_bytes());
            table.extend_from_slice(addr.as_bytes());
        }
        for stream in peers.iter_mut().flatten() {
            write_frame(stream, TABLE_TAG, &table)?;
            stream.flush()?;
        }
    } else {
        // Bind this rank's own listener on the root's interface.
        let host = cfg
            .root
            .rsplit_once(':')
            .map(|(h, _)| h)
            .unwrap_or("127.0.0.1");
        let listener = TcpListener::bind(format!("{host}:0"))?;
        let my_addr = listener.local_addr()?.to_string();
        // Report in at the root (it may still be starting: retry).
        let mut root = connect_retry(&cfg.root, cfg.connect_timeout)?;
        root.set_nodelay(true)?;
        let mut hello = Vec::with_capacity(4 + my_addr.len());
        hello.extend_from_slice(&(cfg.rank as u32).to_le_bytes());
        hello.extend_from_slice(my_addr.as_bytes());
        write_frame(&mut root, HELLO_TAG, &hello)?;
        root.flush()?;
        let (_, table) = handshake_frame(&mut root, TABLE_TAG, deadline)?
            .ok_or_else(|| bad_handshake("root closed before sending the address table"))?;
        let addrs = parse_table(&table, n)?;
        peers[0] = Some(root);
        // Pairwise mesh: connect downward, accept from above.
        for (j, addr) in addrs.iter().enumerate().take(cfg.rank).skip(1) {
            let mut s = connect_retry(addr, cfg.connect_timeout)?;
            s.set_nodelay(true)?;
            write_frame(&mut s, MESH_TAG, &(cfg.rank as u32).to_le_bytes())?;
            s.flush()?;
            peers[j] = Some(s);
        }
        let mut accepted = 0;
        while accepted < n - 1 - cfg.rank {
            let mut s = accept_until(&listener, deadline)?;
            s.set_nodelay(true)?;
            let Some((_, payload)) = handshake_frame(&mut s, MESH_TAG, deadline)? else {
                continue; // closed before MESH: not one of ours
            };
            if payload.len() != 4 {
                return Err(bad_handshake("short MESH"));
            }
            let j = u32::from_le_bytes(payload.as_slice().try_into().unwrap()) as usize;
            if j <= cfg.rank || j >= n || peers[j].is_some() {
                return Err(bad_handshake("MESH with invalid or duplicate rank"));
            }
            peers[j] = Some(s);
            accepted += 1;
        }
    }
    // Hand indefinitely-blocking streams to the data plane.
    for stream in peers.iter().flatten() {
        stream.set_read_timeout(None)?;
    }
    Ok(peers)
}

/// Accept one connection, polling a non-blocking listener against the
/// bootstrap deadline.
fn accept_until(listener: &TcpListener, deadline: Instant) -> std::io::Result<TcpStream> {
    listener.set_nonblocking(true)?;
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false)?;
                return Ok(stream);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        "bootstrap deadline passed while waiting for a peer to connect",
                    ));
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

/// Read one handshake frame under the bootstrap deadline. `Ok(None)` means
/// the peer closed before completing the handshake (skippable); a wrong
/// tag, a timeout or a corrupt frame is an error.
fn handshake_frame(
    stream: &mut TcpStream,
    want: u64,
    deadline: Instant,
) -> std::io::Result<Option<(u64, Vec<u8>)>> {
    let remaining = deadline
        .checked_duration_since(Instant::now())
        .filter(|d| !d.is_zero())
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "bootstrap deadline passed mid-handshake",
            )
        })?;
    stream.set_read_timeout(Some(remaining))?;
    match read_frame(stream) {
        Ok(Some((tag, payload))) if tag == want => Ok(Some((tag, payload))),
        Ok(Some((tag, _))) => Err(bad_handshake(&format!(
            "expected frame tag {want:#x}, got {tag:#x}"
        ))),
        Ok(None) => Ok(None),
        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Err(std::io::Error::new(
            std::io::ErrorKind::TimedOut,
            "bootstrap deadline passed mid-handshake",
        )),
        Err(e) => Err(e),
    }
}

fn bad_handshake(msg: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, format!("handshake: {msg}"))
}

fn parse_table(table: &[u8], n: usize) -> std::io::Result<Vec<String>> {
    let mut pos = 4usize;
    if table.len() < 4 || u32::from_le_bytes(table[0..4].try_into().unwrap()) as usize != n {
        return Err(bad_handshake("address table size mismatch"));
    }
    let mut addrs = Vec::with_capacity(n);
    for _ in 0..n {
        if pos + 4 > table.len() {
            return Err(bad_handshake("truncated address table"));
        }
        let len = u32::from_le_bytes(table[pos..pos + 4].try_into().unwrap()) as usize;
        pos += 4;
        if pos + len > table.len() {
            return Err(bad_handshake("truncated address table entry"));
        }
        addrs.push(
            String::from_utf8(table[pos..pos + len].to_vec())
                .map_err(|_| bad_handshake("address not UTF-8"))?,
        );
        pos += len;
    }
    Ok(addrs)
}

fn connect_retry(addr: &str, timeout: Duration) -> std::io::Result<TcpStream> {
    let deadline = Instant::now() + timeout;
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(std::io::Error::new(
                        e.kind(),
                        format!("connect to {addr} failed after {timeout:?}: {e}"),
                    ));
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::free_loopback_addr;

    /// Bring up an n-rank mesh inside one process (one thread per rank —
    /// exactly what the bootstrap does across processes) and run `f` per
    /// rank.
    fn mesh<R: Send>(n: usize, f: impl Fn(Arc<TcpFabric>) -> R + Sync) -> Vec<R> {
        let root = free_loopback_addr().unwrap();
        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        std::thread::scope(|scope| {
            for (rank, slot) in out.iter_mut().enumerate() {
                let root = root.clone();
                let f = &f;
                scope.spawn(move || {
                    let mut cfg = NetConfig::new(rank, n, root);
                    cfg.recv_timeout = Duration::from_secs(10);
                    let fabric = TcpFabric::connect(&cfg).unwrap();
                    *slot = Some(f(fabric));
                });
            }
        });
        out.into_iter().map(|o| o.unwrap()).collect()
    }

    #[test]
    fn two_rank_roundtrip_and_tags() {
        mesh(2, |fabric| {
            let me = fabric.rank();
            let other = 1 - me;
            fabric.send(me, other, 7, Arc::new(vec![me as u8; 3]));
            fabric.send(me, other, 9, Arc::new(vec![0xEE]));
            // Tag-matched: tag 9 first, then 7, regardless of send order.
            assert_eq!(&*fabric.recv(me, other, 9).unwrap(), &[0xEE]);
            assert_eq!(&*fabric.recv(me, other, 7).unwrap(), &[other as u8; 3]);
        });
    }

    #[test]
    fn per_channel_fifo_under_burst() {
        mesh(2, |fabric| {
            let me = fabric.rank();
            let other = 1 - me;
            if me == 0 {
                for i in 0..200u32 {
                    fabric.send(0, 1, 5, Arc::new(i.to_le_bytes().to_vec()));
                }
                assert_eq!(&*fabric.recv(0, 1, 6).unwrap(), b"done");
            } else {
                for i in 0..200u32 {
                    let p = fabric.recv(1, 0, 5).unwrap();
                    assert_eq!(u32::from_le_bytes(p.as_slice().try_into().unwrap()), i);
                }
                fabric.send(1, other, 6, Arc::new(b"done".to_vec()));
            }
        });
    }

    #[test]
    fn four_rank_mesh_all_pairs() {
        let results = mesh(4, |fabric| {
            let me = fabric.rank();
            for dst in 0..4 {
                if dst != me {
                    fabric.send(me, dst, 11, Arc::new(vec![me as u8]));
                }
            }
            let mut got = Vec::new();
            for src in 0..4 {
                if src != me {
                    got.push(fabric.recv(me, src, 11).unwrap()[0]);
                }
            }
            got
        });
        for (rank, got) in results.iter().enumerate() {
            let expected: Vec<u8> = (0..4u8).filter(|&r| r as usize != rank).collect();
            assert_eq!(got, &expected);
        }
    }

    #[test]
    fn self_send_loops_back() {
        mesh(1, |fabric| {
            fabric.send(0, 0, 3, Arc::new(vec![1, 2]));
            assert_eq!(&*fabric.recv(0, 0, 3).unwrap(), &[1, 2]);
        });
    }

    #[test]
    fn traffic_counts_sent_frames() {
        let traffic = mesh(2, |fabric| {
            let me = fabric.rank();
            if me == 0 {
                fabric.send(0, 1, 1, Arc::new(vec![0; 100]));
                fabric.send(0, 1, 1, Arc::new(vec![0; 28]));
            }
            // Both ranks must see the data before counters are read.
            if me == 1 {
                fabric.recv(1, 0, 1).unwrap();
                fabric.recv(1, 0, 1).unwrap();
            }
            (fabric.traffic(), fabric.per_peer_traffic())
        });
        let (t0, _) = &traffic[0];
        assert_eq!(t0.msgs(), 2);
        assert_eq!(t0.bytes(), 128);
        assert_eq!(t0.intra_msgs, 0, "tcp counts as inter");
        let (_, per1) = &traffic[1];
        assert_eq!(per1[0].recv_msgs, 2);
        assert_eq!(per1[0].recv_bytes, 128);
    }

    #[test]
    fn peer_death_fails_blocked_recv_but_drains_delivered_messages() {
        let root = free_loopback_addr().unwrap();
        let root2 = root.clone();
        let survivor = std::thread::spawn(move || {
            let mut cfg = NetConfig::new(0, 2, root2);
            cfg.recv_timeout = Duration::from_secs(10);
            let fabric = TcpFabric::connect(&cfg).unwrap();
            // The message sent before death must still be deliverable...
            assert_eq!(&*fabric.recv(0, 1, 1).unwrap(), &[42]);
            // ...then the death becomes observable.
            let err = fabric.recv(0, 1, 2).unwrap_err();
            let msg = err.to_string();
            assert!(msg.contains("down"), "unexpected error: {msg}");
        });
        {
            let mut cfg = NetConfig::new(1, 2, root);
            cfg.recv_timeout = Duration::from_secs(10);
            let fabric = TcpFabric::connect(&cfg).unwrap();
            fabric.send(1, 0, 1, Arc::new(vec![42]));
            fabric.shutdown();
            // Dropping the fabric closes the sockets: a simulated process
            // death as far as rank 0 can observe.
        }
        survivor.join().unwrap();
    }

    #[test]
    fn recv_timeout_reports_instead_of_hanging() {
        mesh(2, |fabric| {
            let me = fabric.rank();
            if me == 0 {
                let mut cfg_err = fabric.recv(0, 1, 999);
                // The peer never sends on tag 999; once it exits the link
                // drops, so we accept either a timeout or a down report —
                // both are loud failures, never a hang.
                let msg = loop {
                    match cfg_err {
                        Err(e) => break e.to_string(),
                        Ok(_) => cfg_err = fabric.recv(0, 1, 999),
                    }
                };
                assert!(msg.contains("down") || msg.contains("timed out"), "{msg}");
            }
        });
    }

    #[test]
    fn bootstrap_times_out_loudly_when_a_rank_never_reports() {
        // Rank 0 of a "2-rank" job whose worker never starts: the
        // rendezvous must fail within the bootstrap deadline, not hang.
        let root = free_loopback_addr().unwrap();
        let mut cfg = NetConfig::new(0, 2, root);
        cfg.connect_timeout = Duration::from_millis(300);
        let t0 = std::time::Instant::now();
        let err = match TcpFabric::connect(&cfg) {
            Err(e) => e,
            Ok(_) => panic!("bootstrap must fail with no worker"),
        };
        assert!(t0.elapsed() < Duration::from_secs(5));
        assert!(err.to_string().contains("bootstrap"), "{err}");
    }

    #[test]
    fn bootstrap_skips_connections_that_close_before_hello() {
        // A port prober (or a rank that died right after connect) must not
        // poison the rendezvous: the root skips it and still completes.
        let root = free_loopback_addr().unwrap();
        let probe_addr = root.clone();
        let prober = std::thread::spawn(move || {
            // Poke the rendezvous port until it exists, then hang up
            // without sending anything.
            loop {
                match std::net::TcpStream::connect(&probe_addr) {
                    Ok(s) => {
                        drop(s);
                        break;
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(5)),
                }
            }
        });
        let results = {
            let root0 = root.clone();
            let h0 = std::thread::spawn(move || {
                let cfg = NetConfig::new(0, 2, root0);
                TcpFabric::connect(&cfg).map(|f| f.nranks())
            });
            let h1 = std::thread::spawn(move || {
                // Give the prober a head start at the listener.
                std::thread::sleep(Duration::from_millis(50));
                let cfg = NetConfig::new(1, 2, root);
                TcpFabric::connect(&cfg).map(|f| f.nranks())
            });
            (h0.join().unwrap(), h1.join().unwrap())
        };
        prober.join().unwrap();
        assert_eq!(results.0.unwrap(), 2);
        assert_eq!(results.1.unwrap(), 2);
    }

    #[test]
    fn config_from_env_contract() {
        // Exercised through the injectable lookup: writing the real
        // process environment from a test would race sibling tests that
        // spawn processes (concurrent setenv/getenv is UB on glibc).
        let vars = |pairs: &[(&str, &str)]| {
            let owned: Vec<(String, String)> = pairs
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect();
            move |name: &str| {
                owned
                    .iter()
                    .find(|(k, _)| k == name)
                    .map(|(_, v)| v.clone())
            }
        };
        // Not launched as a rank: None.
        assert!(NetConfig::from_lookup(vars(&[])).unwrap().is_none());
        let cfg = NetConfig::from_lookup(vars(&[
            (ENV_RANK, "1"),
            (ENV_NRANKS, "4"),
            (ENV_ROOT, "127.0.0.1:9"),
            (ENV_TIMEOUT, "3"),
        ]))
        .unwrap()
        .unwrap();
        assert_eq!((cfg.rank, cfg.nranks), (1, 4));
        assert_eq!(cfg.root, "127.0.0.1:9");
        assert_eq!(cfg.recv_timeout, Duration::from_secs(3));
        assert_eq!(cfg.connect_timeout, Duration::from_secs(3));
        // Malformed contracts are loud errors, not silent non-worker mode.
        assert!(
            NetConfig::from_lookup(vars(&[
                (ENV_RANK, "9"),
                (ENV_NRANKS, "4"),
                (ENV_ROOT, "127.0.0.1:9"),
            ]))
            .is_err(),
            "rank out of range"
        );
        assert!(NetConfig::from_lookup(vars(&[(ENV_RANK, "0")])).is_err());
        assert!(NetConfig::from_lookup(vars(&[(ENV_RANK, "zero"), (ENV_NRANKS, "2")])).is_err());
    }
}
