//! The real TCP fabric: one OS process per rank, a full socket mesh, and
//! the rendezvous bootstrap that builds it.
//!
//! ## Bootstrap (the `PPAR_*` environment contract)
//!
//! Every rank process is launched with three environment variables (see
//! [`crate::cluster::spawn_local_cluster`]):
//!
//! | variable      | meaning                                             |
//! |---------------|-----------------------------------------------------|
//! | `PPAR_RANK`   | this process's rank (0-based)                       |
//! | `PPAR_NRANKS` | aggregate size                                      |
//! | `PPAR_ROOT`   | `host:port` of rank 0's rendezvous listener         |
//!
//! Rank 0 listens on `PPAR_ROOT`. Every other rank binds its own
//! ephemeral listener, connects to the root with retry, and sends a HELLO
//! frame carrying its rank and listener address. Once all ranks have
//! reported, the root broadcasts the address table and the mesh completes
//! pairwise: rank *j* connects to every lower rank *i* (`0 < i < j`) and
//! accepts from every higher one, identifying itself with a MESH frame.
//! The root↔rank link reuses the HELLO connection. All sockets run with
//! `TCP_NODELAY` (collective messages are small and latency-bound).
//!
//! ## Data plane
//!
//! Each peer link gets a dedicated **send thread** (draining an unbounded
//! queue through a `BufWriter`, coalescing bursts into single flushes) and
//! a dedicated **receive thread** (decoding [`crate::frame`] frames into
//! the shared tag-matched mailbox). Sends never block the caller and never
//! fail; a dead peer surfaces on `recv`.
//!
//! ## Failure semantics
//!
//! EOF, an I/O error or a corrupt frame on a peer link marks that peer
//! **down** and wakes every blocked receiver. `recv` first drains messages
//! that already arrived, then fails with
//! [`PparError::Network`]. In the default (fail-fast) mode a crashed rank
//! therefore cascades: its peers fail out of their blocked collectives,
//! exit nonzero, and the cluster driver restarts the job from the last
//! durable checkpoint.
//!
//! ## Resilient mode (`PPAR_NET_RESILIENT=1`)
//!
//! Under [`crate::cluster::run_cluster_supervised`] the fabric instead
//! *contains* a failure: every rank keeps its bootstrap listener alive,
//! runs a heartbeat failure detector, and distinguishes a clean peer
//! shutdown (a BYE control frame precedes the FIN) from a crash (EOF with
//! no BYE). A crash raises the rank-local **fault flag** —
//! [`Fabric::fault_pending`] — which the engine polls at every safe point
//! so survivors unwind their current attempt instead of wedging. The
//! supervisor respawns only the dead rank with `PPAR_REJOIN=1`; the
//! newcomer re-rendezvouses into the existing mesh (REJOIN at the root's
//! retained listener, REJOIN_MESH at every survivor's), each survivor
//! **re-arms** the peer link in place — purging stale frames and bumping
//! the link generation so receives blocked on the dead incarnation fail
//! with "restarted" instead of wedging — and everyone meets in
//! [`TcpFabric::recover`]: a two-round READY/GO barrier that flushes
//! in-flight traffic of the aborted attempt, after which the job resumes
//! from its last durable checkpoint with the surviving processes intact.

use std::collections::{HashMap, VecDeque};
use std::io::{BufReader, BufWriter, Write};
use std::net::{Shutdown, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use ppar_core::error::{PparError, Result};

use crate::fabric::{Fabric, Payload, Traffic};
use crate::frame::{read_frame, write_frame, write_frame_vectored};
use crate::retry::RetryPolicy;
use crate::transport::CKPT_TAG_BIT;

/// Environment variable naming this process's rank.
pub const ENV_RANK: &str = "PPAR_RANK";
/// Environment variable naming the aggregate size.
pub const ENV_NRANKS: &str = "PPAR_NRANKS";
/// Environment variable naming rank 0's rendezvous `host:port`.
pub const ENV_ROOT: &str = "PPAR_ROOT";
/// Optional override (seconds) for both bootstrap and receive timeouts.
pub const ENV_TIMEOUT: &str = "PPAR_NET_TIMEOUT_SECS";
/// Set (to `1`) by the supervisor: run the fabric in resilient mode
/// (retained listeners, failure detector, single-rank rejoin).
pub const ENV_RESILIENT: &str = "PPAR_NET_RESILIENT";
/// Set (to `1`) on a respawned rank: rejoin the existing mesh instead of
/// bootstrapping a fresh one (also disarms [`crate::chaos::kill_point`]).
pub const ENV_REJOIN: &str = "PPAR_REJOIN";

/// Handshake frame tags (used only on the raw streams before the data
/// plane starts, so they cannot collide with fabric traffic).
const HELLO_TAG: u64 = 0x7070_6172_0001;
const TABLE_TAG: u64 = 0x7070_6172_0002;
const MESH_TAG: u64 = 0x7070_6172_0003;
/// Rejoin handshakes (resilient mode): a respawned rank reporting in at
/// the root's retained listener, and at each survivor's.
const REJOIN_TAG: u64 = 0x7070_6172_0004;
const REJOIN_MESH_TAG: u64 = 0x7070_6172_0005;

/// Control frames own tag bit 60 (user traffic owns 63, checkpoint
/// traffic 62/61): heartbeats and clean-shutdown markers are intercepted
/// by the receive threads, READY/GO recovery-barrier frames flow through
/// the mailbox but are exempt from the recovery purge and from fail-fast.
const CTRL_TAG_BIT: u64 = 1 << 60;
const HB_TAG: u64 = CTRL_TAG_BIT | 1;
const READY_TAG: u64 = CTRL_TAG_BIT | 2;
const GO_TAG: u64 = CTRL_TAG_BIT | 3;
const BYE_TAG: u64 = CTRL_TAG_BIT | 4;

/// Tags allowed to keep flowing while a fault is pending: checkpoint
/// streams (recovery reads them) and the recovery barrier itself.
const FAULT_EXEMPT_MASK: u64 = CKPT_TAG_BIT | CTRL_TAG_BIT;

/// Heartbeat cadence and the silence threshold that declares a peer dead.
/// EOF detection catches clean crashes instantly; the detector covers
/// wedged links (a partition, a SIGSTOPped peer) where no FIN ever comes.
const HB_PERIOD: Duration = Duration::from_millis(200);
const HB_TIMEOUT: Duration = Duration::from_secs(10);

/// One rank's view of the job, resolved from the environment contract.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// This process's rank.
    pub rank: usize,
    /// Aggregate size.
    pub nranks: usize,
    /// Rank 0's rendezvous address (`host:port`).
    pub root: String,
    /// How long bootstrap connects retry before giving up.
    pub connect_timeout: Duration,
    /// How long a `recv` waits without progress before reporting a hang
    /// (guards CI against silent deadlocks when a peer wedges rather than
    /// dies).
    pub recv_timeout: Duration,
    /// Resilient mode: keep listeners alive, run the failure detector,
    /// accept rejoining ranks (see the [module docs](self)).
    pub resilient: bool,
    /// This process is a respawned rank rejoining an existing mesh.
    pub rejoin: bool,
}

impl NetConfig {
    /// A config with the default timeouts (20 s bootstrap, 120 s receive).
    pub fn new(rank: usize, nranks: usize, root: impl Into<String>) -> NetConfig {
        NetConfig {
            rank,
            nranks,
            root: root.into(),
            connect_timeout: Duration::from_secs(20),
            recv_timeout: Duration::from_secs(120),
            resilient: false,
            rejoin: false,
        }
    }

    /// Resolve the `PPAR_RANK` / `PPAR_NRANKS` / `PPAR_ROOT` contract.
    /// Returns `Ok(None)` when `PPAR_RANK` is unset (the process was not
    /// launched as a cluster rank); malformed values are errors.
    pub fn from_env() -> Result<Option<NetConfig>> {
        NetConfig::from_lookup(|name| std::env::var(name).ok())
    }

    /// [`NetConfig::from_env`] over an injectable variable lookup (reads
    /// only — tests exercise the contract without mutating the
    /// process-global environment, which is not thread-safe to write).
    fn from_lookup(get: impl Fn(&str) -> Option<String>) -> Result<Option<NetConfig>> {
        let Some(rank) = get(ENV_RANK) else {
            return Ok(None);
        };
        let parse = |name: &str, v: &str| {
            v.parse::<usize>()
                .map_err(|_| PparError::Network(format!("{name}={v:?} is not a number")))
        };
        let rank = parse(ENV_RANK, &rank)?;
        let nranks = get(ENV_NRANKS)
            .ok_or_else(|| PparError::Network(format!("{ENV_RANK} set but {ENV_NRANKS} missing")))
            .and_then(|v| parse(ENV_NRANKS, &v))?;
        let root = get(ENV_ROOT)
            .ok_or_else(|| PparError::Network(format!("{ENV_RANK} set but {ENV_ROOT} missing")))?;
        if rank >= nranks {
            return Err(PparError::Network(format!(
                "{ENV_RANK}={rank} out of range for {ENV_NRANKS}={nranks}"
            )));
        }
        let mut cfg = NetConfig::new(rank, nranks, root);
        if let Some(secs) = get(ENV_TIMEOUT) {
            let secs = secs.parse::<u64>().map_err(|_| {
                PparError::Network(format!("{ENV_TIMEOUT}={secs:?} is not a number"))
            })?;
            cfg.connect_timeout = Duration::from_secs(secs);
            cfg.recv_timeout = Duration::from_secs(secs);
        }
        let flag = |name: &str| get(name).is_some_and(|v| v == "1" || v == "true");
        cfg.resilient = flag(ENV_RESILIENT);
        cfg.rejoin = flag(ENV_REJOIN);
        if cfg.rejoin {
            // A rejoining rank only makes sense inside a resilient job.
            cfg.resilient = true;
        }
        Ok(Some(cfg))
    }
}

/// Per-peer link state.
struct Peer {
    /// Queue into the peer's send thread; `None` for self and after
    /// shutdown.
    tx: Mutex<Option<mpsc::Sender<(u64, Payload)>>>,
    /// The socket, kept so an orderly [`TcpFabric::shutdown`] can
    /// half-close it (send FIN) once the send thread has flushed — the
    /// peer's receiver then sees a clean EOF.
    sock: Mutex<Option<TcpStream>>,
    /// Set (with a reason) when the link died; receives from this peer
    /// fail once their queues drain.
    down: Mutex<Option<String>>,
    /// Link incarnation, bumped on every re-arm. Receive threads and
    /// blocked receives capture it at entry: a bump tells them the peer
    /// they were talking to is gone (even though a new one took its slot).
    generation: AtomicU64,
    /// Last time any frame arrived from this peer (failure detector).
    last_rx: Mutex<Instant>,
    sent_msgs: AtomicU64,
    sent_bytes: AtomicU64,
    recv_msgs: AtomicU64,
    recv_bytes: AtomicU64,
}

impl Peer {
    fn idle() -> Peer {
        Peer {
            tx: Mutex::new(None),
            sock: Mutex::new(None),
            down: Mutex::new(None),
            generation: AtomicU64::new(0),
            last_rx: Mutex::new(Instant::now()),
            sent_msgs: AtomicU64::new(0),
            sent_bytes: AtomicU64::new(0),
            recv_msgs: AtomicU64::new(0),
            recv_bytes: AtomicU64::new(0),
        }
    }
}

/// Per-peer traffic counters of a [`TcpFabric`] (this rank's view).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PeerTraffic {
    /// Frames sent to this peer.
    pub sent_msgs: u64,
    /// Payload bytes sent to this peer.
    pub sent_bytes: u64,
    /// Frames received from this peer.
    pub recv_msgs: u64,
    /// Payload bytes received from this peer.
    pub recv_bytes: u64,
}

/// The real TCP message fabric for one rank process. Build with
/// [`TcpFabric::connect`]; see the [module docs](self) for the bootstrap
/// and failure semantics.
pub struct TcpFabric {
    rank: usize,
    nranks: usize,
    recv_timeout: Duration,
    resilient: bool,
    /// A peer crashed (EOF with no BYE, heartbeat silence, or a rejoin
    /// arrived) and the application has not yet run [`TcpFabric::recover`].
    fault: AtomicBool,
    /// Current listener address of every rank (maintained by the root in
    /// resilient mode so it can hand rejoining ranks a fresh table).
    addrs: Mutex<Vec<String>>,
    mailbox: Mutex<HashMap<(usize, u64), VecDeque<Payload>>>,
    cv: Condvar,
    peers: Vec<Peer>,
    /// Send threads, joined on shutdown so every queued frame flushes.
    senders: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl TcpFabric {
    /// Run the rendezvous bootstrap and bring up the data plane. Blocks
    /// until the full mesh is connected (or `cfg.connect_timeout` expires).
    /// With `cfg.rejoin` the process instead re-rendezvouses into an
    /// already-running mesh through the peers' retained listeners.
    pub fn connect(cfg: &NetConfig) -> Result<Arc<TcpFabric>> {
        if cfg.nranks == 0 || cfg.rank >= cfg.nranks {
            return Err(PparError::Network(format!(
                "invalid rank {} for {} ranks",
                cfg.rank, cfg.nranks
            )));
        }
        let boot = if cfg.rejoin {
            rejoin_rendezvous(cfg)
        } else {
            rendezvous(cfg)
        }
        .map_err(|e| {
            PparError::Network(format!(
                "rank {} bootstrap via {} failed: {e}",
                cfg.rank, cfg.root
            ))
        })?;
        let fabric = Arc::new(TcpFabric {
            rank: cfg.rank,
            nranks: cfg.nranks,
            recv_timeout: cfg.recv_timeout,
            resilient: cfg.resilient,
            fault: AtomicBool::new(false),
            addrs: Mutex::new(boot.addrs),
            mailbox: Mutex::new(HashMap::new()),
            cv: Condvar::new(),
            peers: (0..cfg.nranks).map(|_| Peer::idle()).collect(),
            senders: Mutex::new(Vec::new()),
        });
        for (peer_rank, stream) in boot.streams.into_iter().enumerate() {
            let Some(stream) = stream else { continue };
            fabric.arm_link(peer_rank, stream)?;
        }
        if cfg.resilient {
            if let Some(listener) = boot.listener {
                let weak = Arc::downgrade(&fabric);
                let root = cfg.root.clone();
                std::thread::Builder::new()
                    .name(format!("ppar-net-accept-{}", cfg.rank))
                    .spawn(move || acceptor_loop(weak, listener, root))
                    .map_err(|e| PparError::Network(format!("spawn acceptor: {e}")))?;
            }
            let weak = Arc::downgrade(&fabric);
            std::thread::Builder::new()
                .name(format!("ppar-net-hb-{}", cfg.rank))
                .spawn(move || heartbeat_loop(weak))
                .map_err(|e| PparError::Network(format!("spawn heartbeat: {e}")))?;
        }
        Ok(fabric)
    }

    /// This process's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Is the fabric running resiliently (supervised, rejoinable)?
    pub fn resilient(&self) -> bool {
        self.resilient
    }

    /// Per-peer traffic counters, rank-indexed (the self slot stays zero
    /// except for loopback self-sends, which count as sent only).
    pub fn per_peer_traffic(&self) -> Vec<PeerTraffic> {
        self.peers
            .iter()
            .map(|p| PeerTraffic {
                sent_msgs: p.sent_msgs.load(Ordering::Relaxed),
                sent_bytes: p.sent_bytes.load(Ordering::Relaxed),
                recv_msgs: p.recv_msgs.load(Ordering::Relaxed),
                recv_bytes: p.recv_bytes.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Close every send queue, join the send threads (guaranteeing all
    /// queued frames reached the kernel), then half-close each socket so
    /// peers observe a clean EOF. A BYE control frame precedes the FIN so
    /// resilient peers classify this as a finished rank, not a crash.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        for peer in self.peers.iter() {
            let mut tx = peer.tx.lock();
            if let Some(q) = &*tx {
                let _ = q.send((BYE_TAG, Arc::new(Vec::new())));
            }
            *tx = None;
        }
        let handles = std::mem::take(&mut *self.senders.lock());
        for h in handles {
            let _ = h.join();
        }
        for peer in &self.peers {
            if let Some(sock) = peer.sock.lock().take() {
                let _ = sock.shutdown(Shutdown::Write);
            }
        }
    }

    fn deposit(&self, src: usize, tag: u64, payload: Payload) {
        let mut mbox = self.mailbox.lock();
        mbox.entry((src, tag)).or_default().push_back(payload);
        self.cv.notify_all();
    }

    /// Mark a peer dead. `clean` distinguishes an announced shutdown (BYE
    /// received) from a crash; only a crash raises the fault flag that
    /// triggers recovery. `gen` guards against a superseded receive thread
    /// (one whose link was re-armed underneath it) poisoning the new link.
    fn mark_down(&self, peer: usize, gen: u64, reason: String, clean: bool) {
        if self.peers[peer].generation.load(Ordering::SeqCst) != gen {
            return;
        }
        let mut down = self.peers[peer].down.lock();
        if down.is_none() {
            *down = Some(reason);
            if !clean {
                self.fault.store(true, Ordering::SeqCst);
            }
        }
        drop(down);
        // Wake blocked receivers so they observe the failure.
        let _guard = self.mailbox.lock();
        self.cv.notify_all();
    }

    fn peer_down(&self, peer: usize) -> Option<String> {
        self.peers[peer].down.lock().clone()
    }

    /// Attach a connected stream as the live link to `peer_rank`: clone it
    /// for the dedicated send and receive threads and register the queue.
    fn arm_link(self: &Arc<TcpFabric>, peer_rank: usize, stream: TcpStream) -> Result<()> {
        let my_rank = self.rank;
        let clone_err = |e: std::io::Error| {
            PparError::Network(format!("rank {my_rank}: socket clone failed: {e}"))
        };
        stream.set_read_timeout(None).map_err(clone_err)?;
        let reader = stream.try_clone().map_err(clone_err)?;
        let peer = &self.peers[peer_rank];
        let gen = peer.generation.load(Ordering::SeqCst);
        *peer.sock.lock() = Some(stream.try_clone().map_err(clone_err)?);
        let (tx, rx) = mpsc::channel::<(u64, Payload)>();
        *peer.tx.lock() = Some(tx);
        *peer.last_rx.lock() = Instant::now();
        let sender = std::thread::Builder::new()
            .name(format!("ppar-net-send-{my_rank}-{peer_rank}"))
            .spawn(move || sender_loop(rx, stream))
            .map_err(|e| PparError::Network(format!("spawn fabric send thread: {e}")))?;
        self.senders.lock().push(sender);
        let weak = Arc::downgrade(self);
        std::thread::Builder::new()
            .name(format!("ppar-net-recv-{my_rank}-{peer_rank}"))
            .spawn(move || receiver_loop(weak, peer_rank, reader, gen))
            .map_err(|e| PparError::Network(format!("spawn fabric recv thread: {e}")))?;
        Ok(())
    }

    /// Replace the link to `rank` with a fresh connection from its respawn
    /// (resilient mode). Purges every stale frame of the dead incarnation
    /// (its streams and tags would collide with the newcomer's), bumps the
    /// link generation so anything still blocked on the old link fails
    /// loudly, and raises the fault flag: a rejoin *implies* a failure,
    /// and the application must run [`TcpFabric::recover`] even if it
    /// never observed the death itself.
    fn rearm_peer(self: &Arc<TcpFabric>, rank: usize, stream: TcpStream) -> Result<()> {
        let peer = &self.peers[rank];
        peer.generation.fetch_add(1, Ordering::SeqCst);
        self.fault.store(true, Ordering::SeqCst);
        {
            let mut mbox = self.mailbox.lock();
            mbox.retain(|(src, _), _| *src != rank);
        }
        if let Some(old) = peer.sock.lock().take() {
            let _ = old.shutdown(Shutdown::Both);
        }
        *peer.tx.lock() = None; // the old send thread drains out and exits
        stream
            .set_nodelay(true)
            .map_err(|e| PparError::Network(format!("rejoin nodelay: {e}")))?;
        self.arm_link(rank, stream)?;
        *peer.down.lock() = None;
        let _guard = self.mailbox.lock();
        self.cv.notify_all();
        Ok(())
    }

    /// Synchronise the surviving ranks (and any rejoined newcomer) after a
    /// failure, then clear the fault flag. Two rounds over every live
    /// link:
    ///
    /// 1. **READY** — once a peer's READY arrives, per-link FIFO
    ///    guarantees every frame of its aborted attempt has arrived too,
    ///    so the mailbox purge below removes *all* stale collective/user
    ///    traffic (checkpoint streams and control frames are exempt:
    ///    recovery is about to read the former).
    /// 2. **GO** — no rank starts its next attempt until every other rank
    ///    has purged, so no new-attempt frame can be swept by a straggling
    ///    purge.
    ///
    /// Blocks until every peer marked down has been re-armed by a rejoin,
    /// up to `deadline`; any error (a second failure mid-recovery, the
    /// deadline passing) aborts recovery — the caller exits and the
    /// supervisor escalates to a full relaunch.
    pub fn recover(&self, deadline: Duration) -> Result<()> {
        let end = Instant::now() + deadline;
        {
            let mut mbox = self.mailbox.lock();
            loop {
                let down: Vec<usize> = (0..self.nranks)
                    .filter(|&r| r != self.rank && self.peer_down(r).is_some())
                    .collect();
                if down.is_empty() {
                    break;
                }
                if self.cv.wait_until(&mut mbox, end).timed_out() {
                    return Err(PparError::Network(format!(
                        "rank {}: peers {down:?} still down after {deadline:?}; \
                         escalating to full relaunch",
                        self.rank
                    )));
                }
            }
        }
        let others: Vec<usize> = (0..self.nranks).filter(|&r| r != self.rank).collect();
        for &r in &others {
            self.ctrl_send(r, READY_TAG);
        }
        for &r in &others {
            self.recv(self.rank, r, READY_TAG)?;
        }
        {
            let mut mbox = self.mailbox.lock();
            mbox.retain(|(_, tag), _| tag & FAULT_EXEMPT_MASK != 0);
        }
        for &r in &others {
            self.ctrl_send(r, GO_TAG);
        }
        for &r in &others {
            self.recv(self.rank, r, GO_TAG)?;
        }
        self.fault.store(false, Ordering::SeqCst);
        Ok(())
    }

    /// Enqueue a control frame, bypassing the traffic counters (control
    /// traffic would skew the sim-vs-real comparison the counters exist
    /// for).
    fn ctrl_send(&self, dst: usize, tag: u64) {
        if let Some(tx) = &*self.peers[dst].tx.lock() {
            let _ = tx.send((tag, Arc::new(Vec::new())));
        }
    }
}

impl Drop for TcpFabric {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl Fabric for TcpFabric {
    fn describe(&self) -> &'static str {
        "tcp"
    }

    fn nranks(&self) -> usize {
        self.nranks
    }

    fn send(&self, src: usize, dst: usize, tag: u64, payload: Payload) {
        assert_eq!(
            src, self.rank,
            "a TCP fabric handle sends only as its own rank"
        );
        assert!(dst < self.nranks, "rank out of range");
        let peer = &self.peers[dst];
        peer.sent_msgs.fetch_add(1, Ordering::Relaxed);
        peer.sent_bytes
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        if dst == self.rank {
            // Loopback: straight into the mailbox, no socket.
            self.deposit(src, tag, payload);
            return;
        }
        if let Some(tx) = &*peer.tx.lock() {
            // A send to a dead peer (send thread gone) is dropped, like a
            // datagram into a dead NIC: the failure surfaces on receive.
            let _ = tx.send((tag, payload));
        }
    }

    fn recv(&self, dst: usize, src: usize, tag: u64) -> Result<Payload> {
        assert_eq!(
            dst, self.rank,
            "a TCP fabric handle receives only as its own rank"
        );
        assert!(src < self.nranks, "rank out of range");
        let deadline = Instant::now() + self.recv_timeout;
        let entry_gen = self.peers[src].generation.load(Ordering::SeqCst);
        let mut mbox = self.mailbox.lock();
        let mut timed_out = false;
        loop {
            // The queue check runs once more *after* a timed-out wait: a
            // frame deposited in the same instant the deadline expired must
            // be delivered, not thrown away with a fatal timeout (which
            // would tear the whole job down for nothing).
            if let Some(q) = mbox.get_mut(&(src, tag)) {
                if let Some(payload) = q.pop_front() {
                    return Ok(payload);
                }
            }
            // Delivered-then-died messages above drain first; only then is
            // the peer's death observable.
            if let Some(reason) = self.peer_down(src) {
                return Err(PparError::Network(format!(
                    "rank {dst}: peer rank {src} is down ({reason}) while waiting on tag {tag:#x}"
                )));
            }
            // A re-arm swept this channel: whatever the old incarnation
            // was going to send is never coming.
            if self.peers[src].generation.load(Ordering::SeqCst) != entry_gen {
                return Err(PparError::Network(format!(
                    "rank {dst}: peer rank {src} restarted while waiting on tag {tag:#x}"
                )));
            }
            // In resilient mode, application traffic stops flowing the
            // moment a fault is pending: the attempt is doomed, and a
            // survivor blocked on a *live* peer (that has already unwound)
            // must not sit out the full receive timeout.
            if self.resilient && tag & FAULT_EXEMPT_MASK == 0 && self.fault.load(Ordering::SeqCst) {
                return Err(PparError::Network(format!(
                    "rank {dst}: peer failure pending; abandoning wait for rank {src} \
                     tag {tag:#x} until recovery"
                )));
            }
            if timed_out {
                return Err(PparError::Network(format!(
                    "rank {dst}: timed out after {:?} waiting for rank {src} tag {tag:#x}",
                    self.recv_timeout
                )));
            }
            timed_out = self.cv.wait_until(&mut mbox, deadline).timed_out();
        }
    }

    fn recv_any(&self, dst: usize, tag: u64) -> Result<(usize, Payload)> {
        assert_eq!(
            dst, self.rank,
            "a TCP fabric handle receives only as its own rank"
        );
        let mut mbox = self.mailbox.lock();
        loop {
            // Lowest source first, for determinism under load.
            let key = mbox
                .iter()
                .filter(|((_, t), q)| *t == tag && !q.is_empty())
                .map(|((s, _), _)| *s)
                .min();
            if let Some(src) = key {
                let payload = mbox
                    .get_mut(&(src, tag))
                    .and_then(|q| q.pop_front())
                    .expect("non-empty queue just observed");
                return Ok((src, payload));
            }
            let all_down = (0..self.nranks)
                .filter(|&r| r != self.rank)
                .all(|r| self.peer_down(r).is_some());
            if self.nranks > 1 && all_down && !self.resilient {
                // Resilient mode keeps waiting: a down peer may rejoin,
                // and the service channel must survive the outage.
                return Err(PparError::Network(format!(
                    "rank {dst}: every peer is down while waiting on tag {tag:#x}"
                )));
            }
            // No timeout: this is the service channel — it legitimately
            // idles between checkpoints and is woken by a stop frame.
            self.cv.wait(&mut mbox);
        }
    }

    fn probe(&self, dst: usize, src: usize, tag: u64) -> bool {
        assert_eq!(
            dst, self.rank,
            "a TCP fabric handle probes only as its own rank"
        );
        self.mailbox
            .lock()
            .get(&(src, tag))
            .map(|q| !q.is_empty())
            .unwrap_or(false)
    }

    fn traffic(&self) -> Traffic {
        // Real network: everything is "inter". Counted at the sender, like
        // the simulated fabric, so aggregating per-rank counters across a
        // job never double-counts a message.
        let mut t = Traffic::default();
        for p in &self.peers {
            t.inter_msgs += p.sent_msgs.load(Ordering::Relaxed);
            t.inter_bytes += p.sent_bytes.load(Ordering::Relaxed);
        }
        t
    }

    fn fault_pending(&self) -> bool {
        self.resilient && self.fault.load(Ordering::SeqCst)
    }
}

/// Send-thread body: drain the queue through a buffered writer, coalescing
/// bursts into one flush. Exits when the queue closes (shutdown) or the
/// socket dies (the peer's receive side reports that).
/// Payloads at or above this size bypass the sender's `BufWriter`: the
/// buffered path would memcpy the whole payload into the 64 KiB buffer in
/// slices; instead we flush what is pending and hand header + payload to
/// the kernel as one scatter-gather `writev`. Below it, small frames still
/// coalesce into single flushes.
const VECTORED_SEND_MIN: usize = 32 << 10;

/// Write one frame, choosing the buffered or scatter-gather path by size.
fn send_frame(w: &mut BufWriter<TcpStream>, tag: u64, payload: &[u8]) -> std::io::Result<()> {
    if payload.len() >= VECTORED_SEND_MIN {
        w.flush()?;
        write_frame_vectored(w.get_mut(), tag, payload)
    } else {
        write_frame(w, tag, payload)
    }
}

fn sender_loop(rx: mpsc::Receiver<(u64, Payload)>, stream: TcpStream) {
    let mut w = BufWriter::with_capacity(64 << 10, stream);
    'outer: while let Ok((tag, payload)) = rx.recv() {
        if send_frame(&mut w, tag, &payload).is_err() {
            break;
        }
        // Coalesce whatever queued behind this frame before flushing once.
        loop {
            match rx.try_recv() {
                Ok((tag, payload)) => {
                    if send_frame(&mut w, tag, &payload).is_err() {
                        break 'outer;
                    }
                }
                Err(mpsc::TryRecvError::Empty) => break,
                Err(mpsc::TryRecvError::Disconnected) => {
                    let _ = w.flush();
                    return;
                }
            }
        }
        if w.flush().is_err() {
            break;
        }
    }
    let _ = w.flush();
}

/// Receive-thread body: decode frames into the mailbox until EOF, error or
/// fabric teardown; then mark the peer down. `my_gen` is the link
/// generation this thread serves: once a re-arm bumps it, the thread is
/// superseded and must neither deposit nor mark anything.
fn receiver_loop(fabric: Weak<TcpFabric>, peer: usize, stream: TcpStream, my_gen: u64) {
    let mut r = BufReader::with_capacity(64 << 10, stream);
    let mut clean = false;
    let reason = loop {
        match read_frame(&mut r) {
            Ok(Some((tag, payload))) => {
                let Some(fabric) = fabric.upgrade() else {
                    return; // fabric gone: the job is over
                };
                let p = &fabric.peers[peer];
                if p.generation.load(Ordering::SeqCst) != my_gen {
                    return; // superseded by a re-arm
                }
                *p.last_rx.lock() = Instant::now();
                match tag {
                    HB_TAG => continue, // failure-detector keepalive
                    BYE_TAG => {
                        // Announced shutdown: the EOF that follows is not
                        // a crash.
                        clean = true;
                        continue;
                    }
                    _ => {}
                }
                if tag & CTRL_TAG_BIT == 0 {
                    p.recv_msgs.fetch_add(1, Ordering::Relaxed);
                    p.recv_bytes
                        .fetch_add(payload.len() as u64, Ordering::Relaxed);
                }
                fabric.deposit(peer, tag, Arc::new(payload));
            }
            Ok(None) => {
                break if clean {
                    "finished and shut down".to_string()
                } else {
                    "connection closed".to_string()
                }
            }
            Err(e) => break format!("stream error: {e}"),
        }
    };
    if let Some(fabric) = fabric.upgrade() {
        fabric.mark_down(peer, my_gen, reason, clean);
    }
}

/// Failure-detector body (resilient mode): heartbeat every live link and
/// declare a peer down after [`HB_TIMEOUT`] of silence. EOF detection
/// handles ordinary crashes; this catches wedges where no FIN arrives.
fn heartbeat_loop(fabric: Weak<TcpFabric>) {
    loop {
        std::thread::sleep(HB_PERIOD);
        let Some(fabric) = fabric.upgrade() else {
            return;
        };
        let now = Instant::now();
        for (r, peer) in fabric.peers.iter().enumerate() {
            if r == fabric.rank || peer.down.lock().is_some() {
                continue;
            }
            let armed = {
                if let Some(tx) = &*peer.tx.lock() {
                    let _ = tx.send((HB_TAG, Arc::new(Vec::new())));
                    true
                } else {
                    false
                }
            };
            if !armed {
                continue; // shutdown in progress
            }
            let silent = now.saturating_duration_since(*peer.last_rx.lock());
            if silent > HB_TIMEOUT {
                let gen = peer.generation.load(Ordering::SeqCst);
                fabric.mark_down(
                    r,
                    gen,
                    format!("no traffic for {silent:?} (failure detector)"),
                    false,
                );
            }
        }
    }
}

/// Rejoin acceptor body (resilient mode): every rank keeps its bootstrap
/// listener and accepts respawned ranks for the rest of the job. The root
/// additionally answers REJOIN with the current address table (updating it
/// with the newcomer's fresh listener first). Junk connections — port
/// probers, a rank that died mid-dial — are skipped, never fatal.
fn acceptor_loop(fabric: Weak<TcpFabric>, listener: TcpListener, root_addr: String) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    loop {
        let Some(fabric) = fabric.upgrade() else {
            return;
        };
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                drop(fabric);
                // A short poll: a rejoining rank dials every survivor in
                // turn, so this interval is paid ~once per survivor on
                // the recovery critical path.
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }
            Err(_) => {
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }
        };
        let _ = handle_rejoin(&fabric, stream, &root_addr);
    }
}

/// Admit one connection on a retained listener: validate the rejoin
/// handshake and re-arm the peer's link. Any error just drops the
/// connection (the dialer retries with backoff).
fn handle_rejoin(
    fabric: &Arc<TcpFabric>,
    stream: TcpStream,
    root_addr: &str,
) -> std::io::Result<()> {
    let mut stream = stream;
    stream.set_nonblocking(false)?;
    stream.set_nodelay(true)?;
    let deadline = Instant::now() + Duration::from_secs(5);
    let Some((tag, payload)) = handshake_frame_any(&mut stream, deadline)? else {
        return Ok(()); // closed before identifying itself: not one of ours
    };
    let n = fabric.nranks;
    match tag {
        REJOIN_TAG if fabric.rank == 0 => {
            // A respawned rank reporting in at the root.
            if payload.len() < 4 {
                return Err(bad_handshake("short REJOIN"));
            }
            let rank = u32::from_le_bytes(
                payload[0..4]
                    .try_into()
                    .map_err(|_| bad_handshake("short REJOIN"))?,
            ) as usize;
            if rank == 0 || rank >= n {
                return Err(bad_handshake("REJOIN with invalid rank"));
            }
            let addr = String::from_utf8(payload[4..].to_vec())
                .map_err(|_| bad_handshake("REJOIN address not UTF-8"))?;
            let table = {
                let mut addrs = fabric.addrs.lock();
                if addrs.len() != n {
                    *addrs = vec![String::new(); n];
                }
                addrs[0] = root_addr.to_string();
                addrs[rank] = addr;
                let mut table = Vec::new();
                table.extend_from_slice(&(n as u32).to_le_bytes());
                for a in addrs.iter() {
                    table.extend_from_slice(&(a.len() as u32).to_le_bytes());
                    table.extend_from_slice(a.as_bytes());
                }
                table
            };
            // The table goes out on the raw stream *before* the link is
            // re-armed: once armed, the send thread owns the socket.
            write_frame(&mut stream, TABLE_TAG, &table)?;
            stream.flush()?;
            fabric
                .rearm_peer(rank, stream)
                .map_err(|e| std::io::Error::other(e.to_string()))?;
            Ok(())
        }
        REJOIN_MESH_TAG => {
            // A respawned rank completing its mesh with a survivor.
            if payload.len() != 4 {
                return Err(bad_handshake("short REJOIN_MESH"));
            }
            let rank = u32::from_le_bytes(
                payload
                    .as_slice()
                    .try_into()
                    .map_err(|_| bad_handshake("short REJOIN_MESH"))?,
            ) as usize;
            if rank == fabric.rank || rank >= n {
                return Err(bad_handshake("REJOIN_MESH with invalid rank"));
            }
            fabric
                .rearm_peer(rank, stream)
                .map_err(|e| std::io::Error::other(e.to_string()))?;
            Ok(())
        }
        _ => Err(bad_handshake(&format!(
            "unexpected frame tag {tag:#x} on retained listener"
        ))),
    }
}

// ---------------------------------------------------------------------------
// rendezvous bootstrap
// ---------------------------------------------------------------------------

/// What bootstrap hands to the data plane: one stream per peer (self slot
/// `None`), the listener to retain in resilient mode, and the address
/// table (maintained by the root for rejoin handshakes).
struct Bootstrap {
    streams: Vec<Option<TcpStream>>,
    listener: Option<TcpListener>,
    addrs: Vec<String>,
}

/// Establish the full mesh; returns one stream per peer (self slot `None`).
///
/// The whole bootstrap is bounded by one `cfg.connect_timeout` deadline:
/// accepts poll a non-blocking listener against it and every handshake
/// read carries a socket read timeout, so a rank that dies before (or
/// during) its HELLO/MESH exchange surfaces as a loud bootstrap error on
/// every peer instead of an indefinite hang — the same no-hangs property
/// the data plane's peer-down detection gives after the mesh is up. A
/// connection that closes before completing its handshake (a port
/// prober, or a rank that crashed right after `connect`) is skipped, not
/// fatal. Read timeouts are cleared before the streams are handed to the
/// data plane, whose receive threads must block indefinitely.
fn rendezvous(cfg: &NetConfig) -> std::io::Result<Bootstrap> {
    let n = cfg.nranks;
    let deadline = Instant::now() + cfg.connect_timeout;
    let mut peers: Vec<Option<TcpStream>> = (0..n).map(|_| None).collect();
    if n == 1 {
        return Ok(Bootstrap {
            streams: peers,
            listener: None,
            addrs: vec![cfg.root.clone()],
        });
    }
    if cfg.rank == 0 {
        let listener = TcpListener::bind(&cfg.root)?;
        let mut addrs: Vec<String> = vec![String::new(); n];
        addrs[0] = cfg.root.clone();
        let mut reported = 0;
        while reported + 1 < n {
            let mut stream = accept_until(&listener, deadline)?;
            stream.set_nodelay(true)?;
            let Some((_, payload)) = handshake_frame(&mut stream, HELLO_TAG, deadline)? else {
                continue; // closed before HELLO: not one of ours
            };
            if payload.len() < 4 {
                return Err(bad_handshake("short HELLO"));
            }
            let rank = u32::from_le_bytes(
                payload[0..4]
                    .try_into()
                    .map_err(|_| bad_handshake("short HELLO"))?,
            ) as usize;
            if rank == 0 || rank >= n || peers[rank].is_some() {
                return Err(bad_handshake("HELLO with invalid or duplicate rank"));
            }
            addrs[rank] = String::from_utf8(payload[4..].to_vec())
                .map_err(|_| bad_handshake("HELLO address not UTF-8"))?;
            peers[rank] = Some(stream);
            reported += 1;
        }
        // Broadcast the address table so ranks can complete the mesh.
        let mut table = Vec::new();
        table.extend_from_slice(&(n as u32).to_le_bytes());
        for addr in &addrs {
            table.extend_from_slice(&(addr.len() as u32).to_le_bytes());
            table.extend_from_slice(addr.as_bytes());
        }
        for stream in peers.iter_mut().flatten() {
            write_frame(stream, TABLE_TAG, &table)?;
            stream.flush()?;
        }
        for stream in peers.iter().flatten() {
            stream.set_read_timeout(None)?;
        }
        Ok(Bootstrap {
            streams: peers,
            listener: Some(listener),
            addrs,
        })
    } else {
        // Bind this rank's own listener on the root's interface.
        let host = cfg
            .root
            .rsplit_once(':')
            .map(|(h, _)| h)
            .unwrap_or("127.0.0.1");
        let listener = TcpListener::bind(format!("{host}:0"))?;
        let my_addr = listener.local_addr()?.to_string();
        // Report in at the root (it may still be starting: retry with
        // backoff rather than burning the deadline on one blocking dial).
        let mut root = connect_retry(&cfg.root, cfg.connect_timeout, cfg.rank as u64)?;
        root.set_nodelay(true)?;
        let mut hello = Vec::with_capacity(4 + my_addr.len());
        hello.extend_from_slice(&(cfg.rank as u32).to_le_bytes());
        hello.extend_from_slice(my_addr.as_bytes());
        write_frame(&mut root, HELLO_TAG, &hello)?;
        root.flush()?;
        crate::chaos::kill_point("rendezvous");
        let (_, table) = handshake_frame(&mut root, TABLE_TAG, deadline)?
            .ok_or_else(|| bad_handshake("root closed before sending the address table"))?;
        let addrs = parse_table(&table, n)?;
        peers[0] = Some(root);
        // Pairwise mesh: connect downward, accept from above.
        for (j, addr) in addrs.iter().enumerate().take(cfg.rank).skip(1) {
            let mut s = connect_retry(addr, cfg.connect_timeout, cfg.rank as u64)?;
            s.set_nodelay(true)?;
            write_frame(&mut s, MESH_TAG, &(cfg.rank as u32).to_le_bytes())?;
            s.flush()?;
            peers[j] = Some(s);
        }
        let mut accepted = 0;
        while accepted < n - 1 - cfg.rank {
            let mut s = accept_until(&listener, deadline)?;
            s.set_nodelay(true)?;
            let Some((_, payload)) = handshake_frame(&mut s, MESH_TAG, deadline)? else {
                continue; // closed before MESH: not one of ours
            };
            if payload.len() != 4 {
                return Err(bad_handshake("short MESH"));
            }
            let j = u32::from_le_bytes(
                payload
                    .as_slice()
                    .try_into()
                    .map_err(|_| bad_handshake("short MESH"))?,
            ) as usize;
            if j <= cfg.rank || j >= n || peers[j].is_some() {
                return Err(bad_handshake("MESH with invalid or duplicate rank"));
            }
            peers[j] = Some(s);
            accepted += 1;
        }
        // Hand indefinitely-blocking streams to the data plane.
        for stream in peers.iter().flatten() {
            stream.set_read_timeout(None)?;
        }
        Ok(Bootstrap {
            streams: peers,
            listener: Some(listener),
            addrs,
        })
    }
}

/// Re-rendezvous a respawned rank into a running mesh (resilient mode):
/// bind a fresh listener, report in at the root's retained listener with
/// REJOIN (getting the current address table back), then dial every
/// survivor's retained listener with REJOIN_MESH. The survivors re-arm
/// their side of each link as the dials land.
fn rejoin_rendezvous(cfg: &NetConfig) -> std::io::Result<Bootstrap> {
    let n = cfg.nranks;
    let deadline = Instant::now() + cfg.connect_timeout;
    let mut peers: Vec<Option<TcpStream>> = (0..n).map(|_| None).collect();
    if cfg.rank == 0 {
        return Err(bad_handshake(
            "rank 0 cannot rejoin: the root's death escalates to a full relaunch",
        ));
    }
    let host = cfg
        .root
        .rsplit_once(':')
        .map(|(h, _)| h)
        .unwrap_or("127.0.0.1");
    let listener = TcpListener::bind(format!("{host}:0"))?;
    let my_addr = listener.local_addr()?.to_string();
    let mut root = connect_retry(&cfg.root, cfg.connect_timeout, cfg.rank as u64)?;
    root.set_nodelay(true)?;
    let mut hello = Vec::with_capacity(4 + my_addr.len());
    hello.extend_from_slice(&(cfg.rank as u32).to_le_bytes());
    hello.extend_from_slice(my_addr.as_bytes());
    write_frame(&mut root, REJOIN_TAG, &hello)?;
    root.flush()?;
    let (_, table) = handshake_frame(&mut root, TABLE_TAG, deadline)?
        .ok_or_else(|| bad_handshake("root closed before answering REJOIN"))?;
    let addrs = parse_table(&table, n)?;
    peers[0] = Some(root);
    for (j, addr) in addrs.iter().enumerate() {
        if j == 0 || j == cfg.rank {
            continue;
        }
        if addr.is_empty() {
            return Err(bad_handshake(&format!(
                "rejoin table has no address for rank {j}"
            )));
        }
        let mut s = connect_retry(addr, cfg.connect_timeout, cfg.rank as u64)?;
        s.set_nodelay(true)?;
        write_frame(&mut s, REJOIN_MESH_TAG, &(cfg.rank as u32).to_le_bytes())?;
        s.flush()?;
        peers[j] = Some(s);
    }
    for stream in peers.iter().flatten() {
        stream.set_read_timeout(None)?;
    }
    Ok(Bootstrap {
        streams: peers,
        listener: Some(listener),
        addrs,
    })
}

/// Accept one connection, polling a non-blocking listener against the
/// bootstrap deadline.
fn accept_until(listener: &TcpListener, deadline: Instant) -> std::io::Result<TcpStream> {
    listener.set_nonblocking(true)?;
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false)?;
                return Ok(stream);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        "bootstrap deadline passed while waiting for a peer to connect",
                    ));
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

/// Read one handshake frame under the bootstrap deadline. `Ok(None)` means
/// the peer closed before completing the handshake (skippable); a wrong
/// tag, a timeout or a corrupt frame is an error.
fn handshake_frame(
    stream: &mut TcpStream,
    want: u64,
    deadline: Instant,
) -> std::io::Result<Option<(u64, Vec<u8>)>> {
    match handshake_frame_any(stream, deadline)? {
        Some((tag, payload)) if tag == want => Ok(Some((tag, payload))),
        Some((tag, _)) => Err(bad_handshake(&format!(
            "expected frame tag {want:#x}, got {tag:#x}"
        ))),
        None => Ok(None),
    }
}

/// [`handshake_frame`] without the tag expectation (the retained-listener
/// acceptor dispatches on the tag itself).
fn handshake_frame_any(
    stream: &mut TcpStream,
    deadline: Instant,
) -> std::io::Result<Option<(u64, Vec<u8>)>> {
    let remaining = deadline
        .checked_duration_since(Instant::now())
        .filter(|d| !d.is_zero())
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "bootstrap deadline passed mid-handshake",
            )
        })?;
    stream.set_read_timeout(Some(remaining))?;
    match read_frame(stream) {
        Ok(frame) => Ok(frame),
        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Err(std::io::Error::new(
            std::io::ErrorKind::TimedOut,
            "bootstrap deadline passed mid-handshake",
        )),
        Err(e) => Err(e),
    }
}

fn bad_handshake(msg: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, format!("handshake: {msg}"))
}

fn parse_table(table: &[u8], n: usize) -> std::io::Result<Vec<String>> {
    let mut pos = 4usize;
    let header: [u8; 4] = table
        .get(0..4)
        .and_then(|b| b.try_into().ok())
        .ok_or_else(|| bad_handshake("address table size mismatch"))?;
    if u32::from_le_bytes(header) as usize != n {
        return Err(bad_handshake("address table size mismatch"));
    }
    let mut addrs = Vec::with_capacity(n);
    for _ in 0..n {
        let len: [u8; 4] = table
            .get(pos..pos + 4)
            .and_then(|b| b.try_into().ok())
            .ok_or_else(|| bad_handshake("truncated address table"))?;
        let len = u32::from_le_bytes(len) as usize;
        pos += 4;
        let entry = table
            .get(pos..pos + len)
            .ok_or_else(|| bad_handshake("truncated address table entry"))?;
        addrs.push(
            String::from_utf8(entry.to_vec()).map_err(|_| bad_handshake("address not UTF-8"))?,
        );
        pos += len;
    }
    Ok(addrs)
}

/// Dial `addr` until it answers or `timeout` passes. Each attempt uses a
/// bounded `connect_timeout` (a blackholed SYN must not consume the whole
/// deadline in one dial — the original failure mode of workers racing the
/// root's listener) and failed attempts back off with deterministic
/// jitter via [`RetryPolicy::connect`], seeded per rank so a respawn
/// storm does not dial in lockstep.
fn connect_retry(addr: &str, timeout: Duration, seed: u64) -> std::io::Result<TcpStream> {
    let target = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| bad_handshake(&format!("{addr} resolves to no address")))?;
    let mut policy = RetryPolicy::connect(timeout, seed);
    loop {
        let per_attempt = policy
            .remaining()
            .min(Duration::from_secs(2))
            .max(Duration::from_millis(10));
        match TcpStream::connect_timeout(&target, per_attempt) {
            Ok(s) => return Ok(s),
            Err(e) => {
                if !policy.backoff() {
                    return Err(std::io::Error::new(
                        e.kind(),
                        format!("connect to {addr} failed after {timeout:?}: {e}"),
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::free_loopback_addr;

    /// Bring up an n-rank mesh inside one process (one thread per rank —
    /// exactly what the bootstrap does across processes) and run `f` per
    /// rank.
    fn mesh<R: Send>(n: usize, f: impl Fn(Arc<TcpFabric>) -> R + Sync) -> Vec<R> {
        mesh_cfg(n, false, f)
    }

    fn mesh_cfg<R: Send>(
        n: usize,
        resilient: bool,
        f: impl Fn(Arc<TcpFabric>) -> R + Sync,
    ) -> Vec<R> {
        let root = free_loopback_addr().unwrap();
        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        std::thread::scope(|scope| {
            for (rank, slot) in out.iter_mut().enumerate() {
                let root = root.clone();
                let f = &f;
                scope.spawn(move || {
                    let mut cfg = NetConfig::new(rank, n, root);
                    cfg.recv_timeout = Duration::from_secs(10);
                    cfg.resilient = resilient;
                    let fabric = TcpFabric::connect(&cfg).unwrap();
                    *slot = Some(f(fabric));
                });
            }
        });
        out.into_iter().map(|o| o.unwrap()).collect()
    }

    #[test]
    fn two_rank_roundtrip_and_tags() {
        mesh(2, |fabric| {
            let me = fabric.rank();
            let other = 1 - me;
            fabric.send(me, other, 7, Arc::new(vec![me as u8; 3]));
            fabric.send(me, other, 9, Arc::new(vec![0xEE]));
            // Tag-matched: tag 9 first, then 7, regardless of send order.
            assert_eq!(&*fabric.recv(me, other, 9).unwrap(), &[0xEE]);
            assert_eq!(&*fabric.recv(me, other, 7).unwrap(), &[other as u8; 3]);
        });
    }

    #[test]
    fn per_channel_fifo_under_burst() {
        mesh(2, |fabric| {
            let me = fabric.rank();
            let other = 1 - me;
            if me == 0 {
                for i in 0..200u32 {
                    fabric.send(0, 1, 5, Arc::new(i.to_le_bytes().to_vec()));
                }
                assert_eq!(&*fabric.recv(0, 1, 6).unwrap(), b"done");
            } else {
                for i in 0..200u32 {
                    let p = fabric.recv(1, 0, 5).unwrap();
                    assert_eq!(u32::from_le_bytes(p.as_slice().try_into().unwrap()), i);
                }
                fabric.send(1, other, 6, Arc::new(b"done".to_vec()));
            }
        });
    }

    #[test]
    fn four_rank_mesh_all_pairs() {
        let results = mesh(4, |fabric| {
            let me = fabric.rank();
            for dst in 0..4 {
                if dst != me {
                    fabric.send(me, dst, 11, Arc::new(vec![me as u8]));
                }
            }
            let mut got = Vec::new();
            for src in 0..4 {
                if src != me {
                    got.push(fabric.recv(me, src, 11).unwrap()[0]);
                }
            }
            got
        });
        for (rank, got) in results.iter().enumerate() {
            let expected: Vec<u8> = (0..4u8).filter(|&r| r as usize != rank).collect();
            assert_eq!(got, &expected);
        }
    }

    #[test]
    fn self_send_loops_back() {
        mesh(1, |fabric| {
            fabric.send(0, 0, 3, Arc::new(vec![1, 2]));
            assert_eq!(&*fabric.recv(0, 0, 3).unwrap(), &[1, 2]);
        });
    }

    #[test]
    fn traffic_counts_sent_frames() {
        let traffic = mesh(2, |fabric| {
            let me = fabric.rank();
            if me == 0 {
                fabric.send(0, 1, 1, Arc::new(vec![0; 100]));
                fabric.send(0, 1, 1, Arc::new(vec![0; 28]));
            }
            // Both ranks must see the data before counters are read.
            if me == 1 {
                fabric.recv(1, 0, 1).unwrap();
                fabric.recv(1, 0, 1).unwrap();
            }
            (fabric.traffic(), fabric.per_peer_traffic())
        });
        let (t0, _) = &traffic[0];
        assert_eq!(t0.msgs(), 2);
        assert_eq!(t0.bytes(), 128);
        assert_eq!(t0.intra_msgs, 0, "tcp counts as inter");
        let (_, per1) = &traffic[1];
        assert_eq!(per1[0].recv_msgs, 2);
        assert_eq!(per1[0].recv_bytes, 128);
    }

    #[test]
    fn peer_death_fails_blocked_recv_but_drains_delivered_messages() {
        let root = free_loopback_addr().unwrap();
        let root2 = root.clone();
        let survivor = std::thread::spawn(move || {
            let mut cfg = NetConfig::new(0, 2, root2);
            cfg.recv_timeout = Duration::from_secs(10);
            let fabric = TcpFabric::connect(&cfg).unwrap();
            // The message sent before death must still be deliverable...
            assert_eq!(&*fabric.recv(0, 1, 1).unwrap(), &[42]);
            // ...then the death becomes observable.
            let err = fabric.recv(0, 1, 2).unwrap_err();
            let msg = err.to_string();
            assert!(msg.contains("down"), "unexpected error: {msg}");
        });
        {
            let mut cfg = NetConfig::new(1, 2, root);
            cfg.recv_timeout = Duration::from_secs(10);
            let fabric = TcpFabric::connect(&cfg).unwrap();
            fabric.send(1, 0, 1, Arc::new(vec![42]));
            fabric.shutdown();
            // Dropping the fabric closes the sockets: a simulated process
            // death as far as rank 0 can observe.
        }
        survivor.join().unwrap();
    }

    #[test]
    fn recv_timeout_reports_instead_of_hanging() {
        mesh(2, |fabric| {
            let me = fabric.rank();
            if me == 0 {
                let mut cfg_err = fabric.recv(0, 1, 999);
                // The peer never sends on tag 999; once it exits the link
                // drops, so we accept either a timeout or a down report —
                // both are loud failures, never a hang.
                let msg = loop {
                    match cfg_err {
                        Err(e) => break e.to_string(),
                        Ok(_) => cfg_err = fabric.recv(0, 1, 999),
                    }
                };
                assert!(msg.contains("down") || msg.contains("timed out"), "{msg}");
            }
        });
    }

    #[test]
    fn bootstrap_times_out_loudly_when_a_rank_never_reports() {
        // Rank 0 of a "2-rank" job whose worker never starts: the
        // rendezvous must fail within the bootstrap deadline, not hang.
        let root = free_loopback_addr().unwrap();
        let mut cfg = NetConfig::new(0, 2, root);
        cfg.connect_timeout = Duration::from_millis(300);
        let t0 = std::time::Instant::now();
        let err = match TcpFabric::connect(&cfg) {
            Err(e) => e,
            Ok(_) => panic!("bootstrap must fail with no worker"),
        };
        assert!(t0.elapsed() < Duration::from_secs(5));
        assert!(err.to_string().contains("bootstrap"), "{err}");
    }

    #[test]
    fn bootstrap_skips_connections_that_close_before_hello() {
        // A port prober (or a rank that died right after connect) must not
        // poison the rendezvous: the root skips it and still completes.
        let root = free_loopback_addr().unwrap();
        let probe_addr = root.clone();
        let prober = std::thread::spawn(move || {
            // Poke the rendezvous port until it exists, then hang up
            // without sending anything.
            loop {
                match std::net::TcpStream::connect(&probe_addr) {
                    Ok(s) => {
                        drop(s);
                        break;
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(5)),
                }
            }
        });
        let results = {
            let root0 = root.clone();
            let h0 = std::thread::spawn(move || {
                let cfg = NetConfig::new(0, 2, root0);
                TcpFabric::connect(&cfg).map(|f| f.nranks())
            });
            let h1 = std::thread::spawn(move || {
                // Give the prober a head start at the listener.
                std::thread::sleep(Duration::from_millis(50));
                let cfg = NetConfig::new(1, 2, root);
                TcpFabric::connect(&cfg).map(|f| f.nranks())
            });
            (h0.join().unwrap(), h1.join().unwrap())
        };
        prober.join().unwrap();
        assert_eq!(results.0.unwrap(), 2);
        assert_eq!(results.1.unwrap(), 2);
    }

    #[test]
    fn clean_shutdown_does_not_raise_fault() {
        // A finished rank announces itself with BYE: resilient survivors
        // must classify the EOF as completion, not a crash.
        let done = mesh_cfg(2, true, |fabric| {
            let me = fabric.rank();
            fabric.send(me, 1 - me, 4, Arc::new(vec![me as u8]));
            fabric.recv(me, 1 - me, 4).unwrap();
            if me == 1 {
                fabric.shutdown();
                return true;
            }
            // Wait until rank 1's shutdown is observed as a *clean* down.
            let t0 = Instant::now();
            while fabric.peer_down(1).is_none() {
                assert!(t0.elapsed() < Duration::from_secs(5), "down never observed");
                std::thread::sleep(Duration::from_millis(10));
            }
            assert!(
                !fabric.fault_pending(),
                "clean shutdown must not raise the fault flag"
            );
            true
        });
        assert_eq!(done, vec![true, true]);
    }

    /// The in-process version of the supervised recovery path: rank 2 of a
    /// resilient 3-rank mesh "crashes" (its sockets are torn down with no
    /// BYE), the survivors observe a pending fault, a fresh fabric rejoins
    /// as rank 2 through the retained listeners, everyone meets in
    /// `recover`, and post-recovery traffic flows on all links.
    #[test]
    fn resilient_mesh_survives_single_rank_rejoin() {
        let root = free_loopback_addr().unwrap();
        let mk = |rank: usize, root: &str, rejoin: bool| {
            let mut cfg = NetConfig::new(rank, 3, root.to_string());
            cfg.recv_timeout = Duration::from_secs(15);
            cfg.connect_timeout = Duration::from_secs(15);
            cfg.resilient = true;
            cfg.rejoin = rejoin;
            TcpFabric::connect(&cfg).unwrap()
        };
        let exchange = |fabric: &Arc<TcpFabric>, tag: u64| {
            let me = fabric.rank();
            for dst in 0..3 {
                if dst != me {
                    fabric.send(me, dst, tag, Arc::new(vec![me as u8]));
                }
            }
            for src in 0..3 {
                if src != me {
                    assert_eq!(&*fabric.recv(me, src, tag).unwrap(), &[src as u8]);
                }
            }
        };
        std::thread::scope(|scope| {
            for rank in 0..2 {
                let root = root.clone();
                scope.spawn(move || {
                    let fabric = mk(rank, &root, false);
                    exchange(&fabric, 1);
                    // Wait for the crash to be detected, then recover.
                    let t0 = Instant::now();
                    while !fabric.fault_pending() {
                        assert!(t0.elapsed() < Duration::from_secs(10), "fault never seen");
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    fabric.recover(Duration::from_secs(10)).unwrap();
                    exchange(&fabric, 2);
                    fabric.shutdown();
                });
            }
            let root = root.clone();
            scope.spawn(move || {
                let victim = mk(2, &root, false);
                exchange(&victim, 1);
                // Let the send threads flush the tag-1 frames (a real
                // kernel keeps delivering what reached it pre-crash).
                std::thread::sleep(Duration::from_millis(200));
                // Crash: sockets die with no BYE. The fabric object is
                // abandoned (leaked for the scope) exactly like a dead
                // process's kernel state.
                for peer in victim.peers.iter() {
                    *peer.tx.lock() = None;
                }
                std::thread::sleep(Duration::from_millis(50));
                for peer in victim.peers.iter() {
                    if let Some(s) = peer.sock.lock().take() {
                        let _ = s.shutdown(Shutdown::Both);
                    }
                }
                std::thread::sleep(Duration::from_millis(100));
                // Respawn: a fresh fabric rejoins the running mesh.
                let reborn = mk(2, &root, true);
                reborn.recover(Duration::from_secs(10)).unwrap();
                exchange(&reborn, 2);
                reborn.shutdown();
                std::mem::forget(victim); // its threads still hold Weak refs
            });
        });
    }

    #[test]
    fn config_from_env_contract() {
        // Exercised through the injectable lookup: writing the real
        // process environment from a test would race sibling tests that
        // spawn processes (concurrent setenv/getenv is UB on glibc).
        let vars = |pairs: &[(&str, &str)]| {
            let owned: Vec<(String, String)> = pairs
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect();
            move |name: &str| {
                owned
                    .iter()
                    .find(|(k, _)| k == name)
                    .map(|(_, v)| v.clone())
            }
        };
        // Not launched as a rank: None.
        assert!(NetConfig::from_lookup(vars(&[])).unwrap().is_none());
        let cfg = NetConfig::from_lookup(vars(&[
            (ENV_RANK, "1"),
            (ENV_NRANKS, "4"),
            (ENV_ROOT, "127.0.0.1:9"),
            (ENV_TIMEOUT, "3"),
        ]))
        .unwrap()
        .unwrap();
        assert_eq!((cfg.rank, cfg.nranks), (1, 4));
        assert_eq!(cfg.root, "127.0.0.1:9");
        assert_eq!(cfg.recv_timeout, Duration::from_secs(3));
        assert_eq!(cfg.connect_timeout, Duration::from_secs(3));
        assert!(!cfg.resilient);
        assert!(!cfg.rejoin);
        // The supervisor's resilience contract.
        let cfg = NetConfig::from_lookup(vars(&[
            (ENV_RANK, "2"),
            (ENV_NRANKS, "4"),
            (ENV_ROOT, "127.0.0.1:9"),
            (ENV_RESILIENT, "1"),
        ]))
        .unwrap()
        .unwrap();
        assert!(cfg.resilient && !cfg.rejoin);
        // Rejoin implies resilient even if the flag was lost in respawn.
        let cfg = NetConfig::from_lookup(vars(&[
            (ENV_RANK, "2"),
            (ENV_NRANKS, "4"),
            (ENV_ROOT, "127.0.0.1:9"),
            (ENV_REJOIN, "1"),
        ]))
        .unwrap()
        .unwrap();
        assert!(cfg.resilient && cfg.rejoin);
        // Malformed contracts are loud errors, not silent non-worker mode.
        assert!(
            NetConfig::from_lookup(vars(&[
                (ENV_RANK, "9"),
                (ENV_NRANKS, "4"),
                (ENV_ROOT, "127.0.0.1:9"),
            ]))
            .is_err(),
            "rank out of range"
        );
        assert!(NetConfig::from_lookup(vars(&[(ENV_RANK, "0")])).is_err());
        assert!(NetConfig::from_lookup(vars(&[(ENV_RANK, "zero"), (ENV_NRANKS, "2")])).is_err());
    }
}
