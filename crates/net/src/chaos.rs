//! Deterministic fault injection for the TCP fabric.
//!
//! Robustness claims need a fault fabric that can *reproduce* a failure:
//! [`ChaosFabric`] wraps any [`Fabric`] and injects message delay,
//! bandwidth throttling, frame corruption and drop-with-peer-death from a
//! seeded pseudo-random stream, and [`kill_point`] arms process aborts at
//! named protocol sites (mid-checkpoint-stream, mid-barrier,
//! mid-rendezvous). Everything is driven by the `PPAR_CHAOS_*`
//! environment contract:
//!
//! | variable              | meaning                                          |
//! |-----------------------|--------------------------------------------------|
//! | `PPAR_CHAOS_SEED`     | master seed; unset ⇒ chaos entirely disabled     |
//! | `PPAR_CHAOS_KILL`     | `rank:site[:nth]` — abort `rank` at the `nth` hit of `site` |
//! | `PPAR_CHAOS_DELAY`    | `prob,max_ms` — delay a message up to `max_ms`   |
//! | `PPAR_CHAOS_CORRUPT`  | probability of flipping a byte in a checkpoint-stream frame |
//! | `PPAR_CHAOS_DROP`     | probability of drop-with-peer-death (the process aborts — on a reliable stream transport a silent drop is only consistent with the sender dying) |
//! | `PPAR_CHAOS_THROTTLE` | bandwidth cap in bytes/second (shared by all of the process's sending threads, like a real NIC) |
//!
//! **Reproducibility contract:** the same `PPAR_CHAOS_SEED` (plus rank)
//! yields the same decision for the *n*-th injected message and the same
//! kill schedule — [`schedule`] exposes the decision stream as pure data
//! and the crate's proptests pin it.
//!
//! Corruption targets only checkpoint-stream frames (tag bit
//! [`crate::transport::CKPT_TAG_BIT`]): their payloads are covered by the
//! record-level trailing CRC, so injected rot surfaces as a *rejected
//! save* — an error the job handles — never as silently wrong results.
//! Kill sites live in the protocol code itself: `"ckpt-stream"` between
//! checkpoint stream chunks, `"barrier"` between a barrier contribution
//! and its release, `"rendezvous"` between the bootstrap hello and the
//! mesh build.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use ppar_core::error::Result;

use crate::fabric::{Fabric, Payload, Traffic};
use crate::transport::CKPT_TAG_BIT;

/// Master seed; unset disables every injection (env contract above).
pub const ENV_SEED: &str = "PPAR_CHAOS_SEED";
/// Kill-point spec `rank:site[:nth]`.
pub const ENV_KILL: &str = "PPAR_CHAOS_KILL";
/// Message delay spec `prob,max_ms`.
pub const ENV_DELAY: &str = "PPAR_CHAOS_DELAY";
/// Checkpoint-frame corruption probability.
pub const ENV_CORRUPT: &str = "PPAR_CHAOS_CORRUPT";
/// Drop-with-peer-death probability.
pub const ENV_DROP: &str = "PPAR_CHAOS_DROP";
/// Bandwidth throttle in bytes/second.
pub const ENV_THROTTLE: &str = "PPAR_CHAOS_THROTTLE";
/// Pre-abort grace in milliseconds at an armed kill point (default 50).
pub const ENV_KILL_GRACE_MS: &str = "PPAR_CHAOS_KILL_GRACE_MS";

/// Injection knobs for one run (see the module docs for the env contract).
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// Master seed: identical seeds yield identical fault schedules.
    pub seed: u64,
    /// Per-message delay probability (0.0 disables).
    pub delay_prob: f64,
    /// Upper bound of an injected delay.
    pub delay_max: Duration,
    /// Per-checkpoint-frame corruption probability.
    pub corrupt_prob: f64,
    /// Per-message drop-with-peer-death probability.
    pub drop_prob: f64,
    /// Bandwidth cap in bytes/second (`None` = unthrottled).
    pub throttle: Option<u64>,
}

impl ChaosConfig {
    /// A quiet config with the given seed (no injections armed).
    pub fn new(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            delay_prob: 0.0,
            delay_max: Duration::ZERO,
            corrupt_prob: 0.0,
            drop_prob: 0.0,
            throttle: None,
        }
    }

    /// Read the `PPAR_CHAOS_*` contract from the process environment.
    /// `None` when `PPAR_CHAOS_SEED` is unset (chaos disabled).
    pub fn from_env() -> Option<ChaosConfig> {
        ChaosConfig::from_lookup(|k| std::env::var(k).ok())
    }

    /// [`ChaosConfig::from_env`] with an injectable lookup (testability).
    pub fn from_lookup(get: impl Fn(&str) -> Option<String>) -> Option<ChaosConfig> {
        let seed = get(ENV_SEED)?.trim().parse().ok()?;
        let mut cfg = ChaosConfig::new(seed);
        if let Some(spec) = get(ENV_DELAY) {
            let (prob, max_ms) = spec.split_once(',').unwrap_or((spec.as_str(), "50"));
            cfg.delay_prob = prob.trim().parse().unwrap_or(0.0);
            cfg.delay_max = Duration::from_millis(max_ms.trim().parse().unwrap_or(50));
        }
        if let Some(p) = get(ENV_CORRUPT) {
            cfg.corrupt_prob = p.trim().parse().unwrap_or(0.0);
        }
        if let Some(p) = get(ENV_DROP) {
            cfg.drop_prob = p.trim().parse().unwrap_or(0.0);
        }
        if let Some(b) = get(ENV_THROTTLE) {
            cfg.throttle = b.trim().parse().ok();
        }
        Some(cfg)
    }
}

/// The deterministic decision stream: a xorshift64 generator seeded from
/// `(seed, rank)` so every rank draws an independent but reproducible
/// sequence.
#[derive(Debug, Clone)]
pub struct ChaosRng(u64);

impl ChaosRng {
    /// Seed the stream for one rank.
    pub fn new(seed: u64, rank: usize) -> ChaosRng {
        // splitmix-style scramble of (seed, rank); avoid the zero fixed
        // point of xorshift.
        let mut x = seed ^ ((rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        ChaosRng((x ^ (x >> 31)) | 1)
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn chance(&mut self, p: f64) -> bool {
        p > 0.0 && self.unit() < p
    }
}

/// One injected decision for one message (the pure form of what
/// [`ChaosFabric`] does on the wire — see [`schedule`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaosEvent {
    /// Deliver untouched.
    Deliver,
    /// Delay delivery by this much.
    Delay(Duration),
    /// Flip the byte at this payload offset (checkpoint frames only).
    Corrupt(usize),
    /// Drop the message and kill the sending process.
    Kill,
}

/// Decide the fate of one message of `len` payload bytes. This is the
/// *single* decision procedure — the live fabric and the pure
/// [`schedule`] both call it, so what a test enumerates is exactly what a
/// run injects.
fn decide(cfg: &ChaosConfig, rng: &mut ChaosRng, len: usize, ckpt_frame: bool) -> ChaosEvent {
    if rng.chance(cfg.drop_prob) {
        return ChaosEvent::Kill;
    }
    if ckpt_frame && len > 0 && rng.chance(cfg.corrupt_prob) {
        return ChaosEvent::Corrupt(rng.next_u64() as usize % len);
    }
    if rng.chance(cfg.delay_prob) {
        let d = cfg.delay_max.as_secs_f64() * rng.unit();
        return ChaosEvent::Delay(Duration::from_secs_f64(d));
    }
    ChaosEvent::Deliver
}

/// The first `n` injection decisions rank `rank` would make for a stream
/// of `len`-byte checkpoint frames — the fault schedule as pure data.
/// Identical `(cfg, rank, n, len)` always returns identical events (the
/// reproducibility contract).
pub fn schedule(cfg: &ChaosConfig, rank: usize, n: usize, len: usize) -> Vec<ChaosEvent> {
    let mut rng = ChaosRng::new(cfg.seed, rank);
    (0..n).map(|_| decide(cfg, &mut rng, len, true)).collect()
}

// ---------------------------------------------------------------------------
// kill points
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct KillSpec {
    rank: usize,
    site: String,
    nth: u64,
}

impl KillSpec {
    fn from_env() -> Option<KillSpec> {
        // A respawned rank must not re-execute its death sentence: the
        // supervisor marks rejoining processes with PPAR_REJOIN.
        if std::env::var("PPAR_REJOIN").is_ok_and(|v| v == "1") {
            return None;
        }
        let spec = std::env::var(ENV_KILL).ok()?;
        let me: usize = std::env::var(crate::tcp::ENV_RANK).ok()?.parse().ok()?;
        let mut parts = spec.splitn(3, ':');
        let rank: usize = parts.next()?.trim().parse().ok()?;
        let site = parts.next()?.trim().to_string();
        let nth: u64 = match parts.next() {
            Some(n) => n.trim().parse().ok()?,
            None => 1,
        };
        (rank == me).then_some(KillSpec { rank, site, nth })
    }
}

/// A named protocol site the chaos contract can abort at. Call sites are
/// free (one atomic hit-count when armed, one `OnceLock` read otherwise):
/// the process aborts on the `nth` hit of the armed site when
/// `PPAR_CHAOS_KILL=rank:site:nth` names this rank. No-op otherwise.
pub fn kill_point(site: &str) {
    static SPEC: OnceLock<Option<KillSpec>> = OnceLock::new();
    static HITS: AtomicU64 = AtomicU64::new(0);
    let Some(spec) = SPEC.get_or_init(KillSpec::from_env) else {
        return;
    };
    if spec.site != site {
        return;
    }
    let n = HITS.fetch_add(1, Ordering::SeqCst) + 1;
    if n == spec.nth {
        eprintln!(
            "ppar-chaos: rank {} aborting at kill point {:?} (hit {n})",
            spec.rank, spec.site
        );
        // Give the fabric's send threads a grace window to drain frames
        // this rank queued *before* reaching the site: a real stack has
        // already handed those to the kernel, which delivers them after
        // the crash. Aborting instantly would also retract delivered
        // protocol messages (e.g. a barrier contribution racing its own
        // flush), making the fault's position relative to the group
        // commit nondeterministic. A harness that needs the fault pinned
        // strictly *after* a collective completes globally (so slower
        // peers finish consuming this rank's contribution first) can
        // widen the window via `PPAR_CHAOS_KILL_GRACE_MS`. In-flight
        // loss is modelled separately by the drop-with-peer-death
        // injection, which aborts mid-stream.
        let grace = std::env::var(ENV_KILL_GRACE_MS)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(50);
        std::thread::sleep(std::time::Duration::from_millis(grace));
        std::process::abort();
    }
}

// ---------------------------------------------------------------------------
// the injecting fabric
// ---------------------------------------------------------------------------

/// A seeded fault-injecting wrapper around any [`Fabric`].
///
/// Injections happen on the send side (delay, throttle, corrupt, kill);
/// receives, probes and traffic accounting pass straight through, and
/// [`Fabric::fault_pending`] forwards so the failure detector keeps
/// working underneath the chaos layer.
pub struct ChaosFabric {
    inner: Arc<dyn Fabric>,
    cfg: ChaosConfig,
    rng: Mutex<ChaosRng>,
    /// Token-bucket tail for the bandwidth throttle: the instant the
    /// process's modelled NIC becomes free again. Shared across every
    /// sending thread — a throttle is a *link* cap, so concurrent
    /// streams (e.g. the root restoring many shards at once) divide the
    /// bandwidth instead of each enjoying the full rate.
    throttle_until: Mutex<Option<std::time::Instant>>,
}

impl ChaosFabric {
    /// Wrap `inner`, drawing decisions from `cfg` seeded for `rank`.
    pub fn new(inner: Arc<dyn Fabric>, rank: usize, cfg: ChaosConfig) -> ChaosFabric {
        let rng = Mutex::new(ChaosRng::new(cfg.seed, rank));
        ChaosFabric {
            inner,
            cfg,
            rng,
            throttle_until: Mutex::new(None),
        }
    }

    fn inject(&self, tag: u64, payload: &mut Payload) {
        let ckpt_frame = tag & CKPT_TAG_BIT != 0;
        let event = {
            let mut rng = self.rng.lock().expect("chaos rng lock poisoned");
            decide(&self.cfg, &mut rng, payload.len(), ckpt_frame)
        };
        match event {
            ChaosEvent::Deliver => {}
            ChaosEvent::Delay(d) => std::thread::sleep(d),
            ChaosEvent::Corrupt(at) => {
                let mut bytes = payload.as_ref().clone();
                bytes[at] ^= 0x40;
                *payload = Payload::from(bytes);
            }
            ChaosEvent::Kill => {
                eprintln!("ppar-chaos: drop-with-peer-death on tag {tag:#x}; aborting");
                std::process::abort();
            }
        }
        if let Some(rate) = self.cfg.throttle {
            if rate > 0 && !payload.is_empty() && !self.inner.fault_pending() {
                let cost = Duration::from_secs_f64(payload.len() as f64 / rate as f64);
                let now = std::time::Instant::now();
                let wake = {
                    let mut until = self.throttle_until.lock().expect("throttle lock poisoned");
                    let wake = until.map_or(now, |u| u.max(now)) + cost;
                    *until = Some(wake);
                    wake
                };
                // Serve the cost in short slices, watching for a peer
                // fault: backpressure models a live epoch's wire, and a
                // frame from an attempt that is being torn down must not
                // stall its sender's unwind or queue the repair traffic
                // behind a dead epoch — collapse the shared horizon and
                // bail. (`recover` clears the fault, so replay traffic
                // pays the full toll again.)
                loop {
                    let left = wake.saturating_duration_since(std::time::Instant::now());
                    if left.is_zero() {
                        break;
                    }
                    if self.inner.fault_pending() {
                        let mut until = self.throttle_until.lock().expect("throttle lock poisoned");
                        *until = None;
                        break;
                    }
                    std::thread::sleep(left.min(Duration::from_millis(20)));
                }
            }
        }
    }
}

impl Fabric for ChaosFabric {
    fn describe(&self) -> &'static str {
        "chaos"
    }

    fn nranks(&self) -> usize {
        self.inner.nranks()
    }

    fn send(&self, src: usize, dst: usize, tag: u64, payload: Payload) {
        let mut payload = payload;
        self.inject(tag, &mut payload);
        self.inner.send(src, dst, tag, payload);
    }

    fn recv(&self, dst: usize, src: usize, tag: u64) -> Result<Payload> {
        self.inner.recv(dst, src, tag)
    }

    fn recv_any(&self, dst: usize, tag: u64) -> Result<(usize, Payload)> {
        self.inner.recv_any(dst, tag)
    }

    fn probe(&self, dst: usize, src: usize, tag: u64) -> bool {
        self.inner.probe(dst, src, tag)
    }

    fn traffic(&self) -> Traffic {
        self.inner.traffic()
    }

    fn fault_pending(&self) -> bool {
        self.inner.fault_pending()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn env_contract_round_trips() {
        let get = |k: &str| match k {
            ENV_SEED => Some("1234".to_string()),
            ENV_DELAY => Some("0.5,20".to_string()),
            ENV_CORRUPT => Some("0.01".to_string()),
            ENV_DROP => Some("0.001".to_string()),
            ENV_THROTTLE => Some("1048576".to_string()),
            _ => None,
        };
        let cfg = ChaosConfig::from_lookup(get).expect("seed set");
        assert_eq!(cfg.seed, 1234);
        assert_eq!(cfg.delay_prob, 0.5);
        assert_eq!(cfg.delay_max, Duration::from_millis(20));
        assert_eq!(cfg.corrupt_prob, 0.01);
        assert_eq!(cfg.drop_prob, 0.001);
        assert_eq!(cfg.throttle, Some(1 << 20));
        assert_eq!(ChaosConfig::from_lookup(|_| None), None);
    }

    proptest::proptest! {
        /// The reproducibility contract: identical seed ⇒ identical fault
        /// schedule; a different seed diverges somewhere in a long prefix.
        #[test]
        fn same_seed_same_fault_schedule(seed in 0u64..u64::MAX, rank in 0usize..16) {
            let mut cfg = ChaosConfig::new(seed);
            cfg.delay_prob = 0.3;
            cfg.delay_max = Duration::from_millis(40);
            cfg.corrupt_prob = 0.2;
            cfg.drop_prob = 0.05;
            let a = schedule(&cfg, rank, 256, 4096);
            let b = schedule(&cfg, rank, 256, 4096);
            prop_assert_eq!(&a, &b);

            let mut other = cfg.clone();
            other.seed = seed.wrapping_add(1);
            let c = schedule(&other, rank, 256, 4096);
            prop_assert_ne!(&a, &c);
        }
    }

    #[test]
    fn schedule_is_prefix_stable() {
        let mut cfg = ChaosConfig::new(99);
        cfg.delay_prob = 0.5;
        cfg.delay_max = Duration::from_millis(10);
        let long = schedule(&cfg, 3, 64, 128);
        let short = schedule(&cfg, 3, 16, 128);
        assert_eq!(&long[..16], &short[..]);
    }
}
