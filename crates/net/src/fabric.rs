//! The message-fabric abstraction every distributed engine runs over.
//!
//! A [`Fabric`] delivers tagged byte payloads between ranks with MPI-like
//! eager semantics: `send` deposits and returns immediately, `recv` blocks
//! until a matching `(source, tag)` message is available. Delivery is
//! FIFO per `(source, tag)` channel and tag-matched, so the collective
//! layer's sequence-numbered tags keep concurrent collectives from
//! cross-matching on any implementation.
//!
//! Implementations: the simulated `SimNet` (threads in one process,
//! cost-modelled links, never fails) and the real [`crate::tcp::TcpFabric`]
//! (one OS process per rank, TCP mesh, peers can genuinely die — which is
//! why [`Fabric::recv`] returns a `Result`).

use std::sync::Arc;

use ppar_core::error::Result;

/// The wire representation of one message body: reference-counted so
/// fan-out sends (broadcast, scatter of a shared buffer) are zero-copy,
/// and `Arc<Vec<u8>>` rather than `Arc<[u8]>` so converting an owned `Vec`
/// (the unicast case: halo rows, gathered partitions) moves the buffer
/// instead of copying it.
pub type Payload = Arc<Vec<u8>>;

/// Cumulative traffic counters (per link class).
///
/// The simulated fabric splits by its topology's intra-/inter-machine link
/// classes; the TCP fabric counts everything as *inter* (it is a real
/// network), which keeps sim-vs-real traffic directly comparable through
/// [`Traffic::msgs`] / [`Traffic::bytes`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Traffic {
    /// Messages over intra-machine links.
    pub intra_msgs: u64,
    /// Bytes over intra-machine links.
    pub intra_bytes: u64,
    /// Messages over inter-machine links.
    pub inter_msgs: u64,
    /// Bytes over inter-machine links.
    pub inter_bytes: u64,
}

impl Traffic {
    /// Total messages.
    pub fn msgs(&self) -> u64 {
        self.intra_msgs + self.inter_msgs
    }

    /// Total bytes.
    pub fn bytes(&self) -> u64 {
        self.intra_bytes + self.inter_bytes
    }
}

/// A rank-addressed, tag-matched message transport (see the
/// [module docs](self) for the delivery contract).
pub trait Fabric: Send + Sync {
    /// Short human-readable tag for reports (`"sim"`, `"tcp"`).
    fn describe(&self) -> &'static str;

    /// Aggregate size.
    fn nranks(&self) -> usize;

    /// Deposit `payload` from `src` for `dst` under `tag` and return
    /// immediately (eager send; sends to a dead peer are dropped — the
    /// failure surfaces on the next receive involving that peer).
    fn send(&self, src: usize, dst: usize, tag: u64, payload: Payload);

    /// Block until a message from `src` with `tag` is available at `dst`.
    /// Fails when the peer is down (its connection closed or its stream
    /// corrupted) and no matching message remains queued.
    fn recv(&self, dst: usize, src: usize, tag: u64) -> Result<Payload>;

    /// Block until a message with `tag` from *any* rank is available at
    /// `dst`; returns `(source, payload)`. Fails only when every other
    /// rank is down and nothing matching is queued. This is the service
    /// channel used by the root's checkpoint service loop.
    fn recv_any(&self, dst: usize, tag: u64) -> Result<(usize, Payload)>;

    /// Non-blocking probe: is a `(src, tag)` message queued at `dst`?
    fn probe(&self, dst: usize, src: usize, tag: u64) -> bool;

    /// Traffic counters so far (sends observed by this fabric handle; for
    /// the per-process TCP fabric that means this rank's traffic).
    fn traffic(&self) -> Traffic;

    /// Has a peer failure been detected that the application has not yet
    /// recovered from? Only resilient fabrics (the TCP fabric under a
    /// supervisor, see `tcp`) ever return `true`; the default covers
    /// fabrics where peers cannot die (simulation) or where death is
    /// terminal (fail-fast mode). The engine polls this at every safe
    /// point so survivors unwind promptly instead of wedging on a
    /// collective involving the dead rank.
    fn fault_pending(&self) -> bool {
        false
    }
}
