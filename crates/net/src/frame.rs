//! The wire codec: length-prefixed, CRC-framed messages.
//!
//! Every message travels as one frame:
//!
//! ```text
//! len     u32  payload length in bytes (≤ MAX_FRAME_PAYLOAD)
//! tag     u64  fabric tag (user / collective / checkpoint tag space)
//! crc     u32  CRC-32 of tag_le ++ payload (the checkpoint crate's
//!              slice-by-8 implementation — one CRC for files and wire)
//! payload len bytes
//! ```
//!
//! All integers little-endian, matching the snapshot/delta formats. The
//! CRC covers the tag so a corrupted header cannot silently deliver a
//! payload to the wrong channel. Checkpoint records framed here carry
//! *their own* trailing CRC too (they are written by the shared
//! `SnapshotWriter`), so a record is integrity-checked end to end: once on
//! the wire, once when the durable medium is read back.
//!
//! A short read inside a frame is an `UnexpectedEof` error; a clean EOF at
//! a frame boundary decodes as `Ok(None)` — that is how a peer's orderly
//! shutdown is distinguished from a truncated stream.

use std::io::{self, Read, Write};

use ppar_ckpt::crc::Crc32;

/// Bytes of the fixed frame header (`len` + `tag` + `crc`).
pub const FRAME_HEADER_BYTES: usize = 16;

/// Sanity bound on a single frame's payload (1 GiB). A length field above
/// this is treated as stream corruption, not an allocation request.
pub const MAX_FRAME_PAYLOAD: usize = 1 << 30;

/// CRC-32 of `tag ++ payload` as carried in the frame header.
pub fn frame_crc(tag: u64, payload: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(&tag.to_le_bytes());
    c.update(payload);
    c.finish()
}

/// Encode one frame into `w` (no flush — callers batch frames and flush
/// once per burst).
pub fn write_frame(w: &mut impl Write, tag: u64, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_PAYLOAD {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "frame payload of {} bytes exceeds the 1 GiB bound",
                payload.len()
            ),
        ));
    }
    let mut header = [0u8; FRAME_HEADER_BYTES];
    header[0..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    header[4..12].copy_from_slice(&tag.to_le_bytes());
    header[12..16].copy_from_slice(&frame_crc(tag, payload).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)
}

/// Read until `buf` is full or EOF; returns the number of bytes read.
/// (`read_exact` cannot distinguish "EOF before any byte" from "EOF mid
/// buffer", and that distinction is the clean-shutdown signal.)
fn read_full(r: &mut impl Read, buf: &mut [u8]) -> io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

/// Decode one frame from `r`. Returns `Ok(None)` on a clean EOF at a frame
/// boundary (the peer closed its connection in an orderly way); any short
/// read inside a frame, oversized length or CRC mismatch is an error.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<(u64, Vec<u8>)>> {
    let mut header = [0u8; FRAME_HEADER_BYTES];
    match read_full(r, &mut header)? {
        0 => return Ok(None),
        FRAME_HEADER_BYTES => {}
        n => {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!(
                    "stream truncated inside a frame header ({n} of {FRAME_HEADER_BYTES} bytes)"
                ),
            ))
        }
    }
    let len = u32::from_le_bytes(header[0..4].try_into().unwrap()) as usize;
    let tag = u64::from_le_bytes(header[4..12].try_into().unwrap());
    let crc = u32::from_le_bytes(header[12..16].try_into().unwrap());
    if len > MAX_FRAME_PAYLOAD {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame announces a {len}-byte payload (corrupt length field)"),
        ));
    }
    let mut payload = vec![0u8; len];
    let got = read_full(r, &mut payload)?;
    if got != len {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            format!("stream truncated inside a frame payload ({got} of {len} bytes)"),
        ));
    }
    let computed = frame_crc(tag, &payload);
    if computed != crc {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame CRC mismatch: header {crc:#010x}, computed {computed:#010x}"),
        ));
    }
    Ok(Some((tag, payload)))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reader that hands out at most `chunk` bytes per `read` call —
    /// models TCP's short reads.
    struct Trickle<'a> {
        data: &'a [u8],
        pos: usize,
        chunk: usize,
    }

    impl Read for Trickle<'_> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            let n = buf
                .len()
                .min(self.chunk.max(1))
                .min(self.data.len() - self.pos);
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    fn encode(frames: &[(u64, &[u8])]) -> Vec<u8> {
        let mut out = Vec::new();
        for (tag, payload) in frames {
            write_frame(&mut out, *tag, payload).unwrap();
        }
        out
    }

    #[test]
    fn roundtrip_single_frame() {
        let bytes = encode(&[(7, b"hello fabric")]);
        let mut r = bytes.as_slice();
        assert_eq!(
            read_frame(&mut r).unwrap(),
            Some((7, b"hello fabric".to_vec()))
        );
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF after frame");
    }

    #[test]
    fn empty_payload_roundtrips() {
        let bytes = encode(&[(u64::MAX, b"")]);
        let mut r = bytes.as_slice();
        assert_eq!(read_frame(&mut r).unwrap(), Some((u64::MAX, Vec::new())));
    }

    #[test]
    fn coalesced_frames_decode_in_order() {
        // Several frames written into one buffer (one TCP segment carrying
        // many messages) decode back one at a time.
        let bytes = encode(&[(1, b"a"), (2, b"bb"), (3, b""), (1 << 62, b"ccc")]);
        let mut r = bytes.as_slice();
        assert_eq!(read_frame(&mut r).unwrap(), Some((1, b"a".to_vec())));
        assert_eq!(read_frame(&mut r).unwrap(), Some((2, b"bb".to_vec())));
        assert_eq!(read_frame(&mut r).unwrap(), Some((3, Vec::new())));
        assert_eq!(
            read_frame(&mut r).unwrap(),
            Some((1 << 62, b"ccc".to_vec()))
        );
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn split_reads_reassemble() {
        let payload: Vec<u8> = (0..300u32).map(|i| (i * 7) as u8).collect();
        let bytes = encode(&[(42, &payload), (43, b"tail")]);
        for chunk in [1, 2, 3, 7, 16, 64] {
            let mut r = Trickle {
                data: &bytes,
                pos: 0,
                chunk,
            };
            assert_eq!(
                read_frame(&mut r).unwrap(),
                Some((42, payload.clone())),
                "chunk {chunk}"
            );
            assert_eq!(read_frame(&mut r).unwrap(), Some((43, b"tail".to_vec())));
            assert_eq!(read_frame(&mut r).unwrap(), None);
        }
    }

    #[test]
    fn corrupt_payload_is_rejected() {
        let mut bytes = encode(&[(9, b"payload-bytes")]);
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        let err = read_frame(&mut bytes.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("CRC"), "{err}");
    }

    #[test]
    fn corrupt_tag_is_rejected() {
        // Flipping a tag bit must fail the CRC: otherwise a damaged header
        // would deliver the payload to the wrong (src, tag) channel.
        let mut bytes = encode(&[(5, b"x")]);
        bytes[4] ^= 0x01;
        let err = read_frame(&mut bytes.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_header_and_payload_are_eof_errors() {
        let bytes = encode(&[(9, b"0123456789")]);
        // Inside the header.
        for cut in 1..FRAME_HEADER_BYTES {
            let err = read_frame(&mut &bytes[..cut]).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut {cut}");
        }
        // Inside the payload.
        let err = read_frame(&mut &bytes[..bytes.len() - 3]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversized_length_field_is_rejected_without_allocating() {
        let mut bytes = encode(&[(1, b"x")]);
        bytes[0..4].copy_from_slice(&(u32::MAX).to_le_bytes());
        let err = read_frame(&mut bytes.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("corrupt length"), "{err}");
    }

    proptest::proptest! {
        /// Any batch of frames written back-to-back (coalesced) decodes to
        /// exactly the same (tag, payload) sequence through a reader that
        /// returns arbitrarily short reads.
        #[test]
        fn prop_roundtrip_split_and_coalesced(
            frames in proptest::collection::vec(
                (proptest::prelude::any::<u64>(),
                 proptest::collection::vec(proptest::prelude::any::<u8>(), 0..200)),
                0..8,
            ),
            chunk in 1usize..32,
        ) {
            let mut bytes = Vec::new();
            for (tag, payload) in &frames {
                write_frame(&mut bytes, *tag, payload).unwrap();
            }
            let mut r = Trickle { data: &bytes, pos: 0, chunk };
            for (tag, payload) in &frames {
                let got = read_frame(&mut r).unwrap();
                proptest::prop_assert_eq!(got, Some((*tag, payload.clone())));
            }
            proptest::prop_assert_eq!(read_frame(&mut r).unwrap(), None);
        }

        /// Flipping any single byte of an encoded frame never yields a
        /// silently different message: the decode fails, or (for a length
        /// byte that grows the frame) reports a truncated stream.
        #[test]
        fn prop_single_byte_corruption_is_detected(
            payload in proptest::collection::vec(proptest::prelude::any::<u8>(), 1..100),
            tag in proptest::prelude::any::<u64>(),
            flip_bit in 0u8..8,
        ) {
            let mut bytes = Vec::new();
            write_frame(&mut bytes, tag, &payload).unwrap();
            for pos in 0..bytes.len() {
                let mut corrupt = bytes.clone();
                corrupt[pos] ^= 1 << flip_bit;
                match read_frame(&mut corrupt.as_slice()) {
                    Err(_) => {}
                    Ok(decoded) => proptest::prop_assert_eq!(
                        decoded, None,
                        "byte {} corrupted yet frame decoded", pos
                    ),
                }
            }
        }
    }
}
