//! The wire codec: length-prefixed, CRC-framed messages.
//!
//! Every message travels as one frame:
//!
//! ```text
//! len     u32  payload length in bytes (≤ the configured bound)
//! tag     u64  fabric tag (user / collective / checkpoint tag space)
//! crc     u32  CRC-32 of tag_le ++ covered payload (the checkpoint
//!              crate's implementation — one CRC for files and wire)
//! payload len bytes
//! ```
//!
//! All integers little-endian, matching the snapshot/delta formats. The
//! CRC covers the tag so a corrupted header cannot silently deliver a
//! payload to the wrong channel.
//!
//! ## Raw-payload frames (bit 61)
//!
//! A frame whose tag carries [`TAG_RAW_PAYLOAD_BIT`] holds bulk
//! checkpoint-stream data. Its header CRC covers the tag plus only the
//! *first* payload byte — the stream control prefix — because the bulk
//! bytes are one chunk of a record written by the shared `SnapshotWriter`
//! and carry *their own* trailing record CRC, verified by a single running
//! pass at the receiving end. Skipping the per-frame pass over multi-MiB
//! chunks halves the CRC work on the streaming path without weakening
//! end-to-end integrity: a flipped bulk byte still fails the record CRC
//! before anything is installed. Ordinary frames are fully covered, as
//! before.
//!
//! ## Payload bound
//!
//! A frame payload larger than the sanity bound — [`MAX_FRAME_PAYLOAD`]
//! (1 GiB) by default, overridable via the `PPAR_NET_MAX_FRAME`
//! environment variable — is rejected on write, and a length field above
//! it is treated as stream corruption on read (never an allocation
//! request). GB-scale snapshots chunk through the checkpoint stream
//! protocol instead of growing single frames.
//!
//! A short read inside a frame is an `UnexpectedEof` error; a clean EOF at
//! a frame boundary decodes as `Ok(None)` — that is how a peer's orderly
//! shutdown is distinguished from a truncated stream.

use std::io::{self, IoSlice, Read, Write};

use ppar_ckpt::crc::Crc32;

/// Bytes of the fixed frame header (`len` + `tag` + `crc`).
pub const FRAME_HEADER_BYTES: usize = 16;

/// Default sanity bound on a single frame's payload (1 GiB). Override with
/// the `PPAR_NET_MAX_FRAME` environment variable (bytes, min 4 KiB); see
/// [`max_frame_payload`].
pub const MAX_FRAME_PAYLOAD: usize = 1 << 30;

/// Environment variable overriding the frame payload sanity bound
/// ([`MAX_FRAME_PAYLOAD`] when unset), in bytes.
pub const ENV_MAX_FRAME: &str = "PPAR_NET_MAX_FRAME";

/// Tag bit marking a *raw-payload* frame: the header CRC covers the tag
/// and the first payload byte only (see the [module docs](self)).
pub const TAG_RAW_PAYLOAD_BIT: u64 = 1 << 61;

/// Payload bytes of a raw frame still covered by the header CRC.
const RAW_COVERED_BYTES: usize = 1;

/// The effective frame payload bound: `PPAR_NET_MAX_FRAME` if set to a
/// plausible byte count (≥ 4 KiB, ≤ u32::MAX — the wire length field is 32
/// bits), [`MAX_FRAME_PAYLOAD`] otherwise. Read once per process.
pub fn max_frame_payload() -> usize {
    use std::sync::OnceLock;
    static MAX: OnceLock<usize> = OnceLock::new();
    *MAX.get_or_init(|| {
        std::env::var(ENV_MAX_FRAME)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&v| (4096..=u32::MAX as usize).contains(&v))
            .unwrap_or(MAX_FRAME_PAYLOAD)
    })
}

/// The payload prefix covered by the header CRC for `tag`.
fn covered(tag: u64, payload: &[u8]) -> &[u8] {
    if tag & TAG_RAW_PAYLOAD_BIT != 0 {
        &payload[..payload.len().min(RAW_COVERED_BYTES)]
    } else {
        payload
    }
}

/// CRC-32 of `tag ++ payload` as carried in the frame header (callers pass
/// the covered prefix for raw frames).
pub fn frame_crc(tag: u64, payload: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(&tag.to_le_bytes());
    c.update(payload);
    c.finish()
}

fn oversize_error(len: usize, max: usize) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidInput,
        format!(
            "frame payload of {len} bytes exceeds the {max}-byte bound \
             (raise {ENV_MAX_FRAME} or chunk the message)"
        ),
    )
}

fn encode_header(tag: u64, payload: &[u8]) -> [u8; FRAME_HEADER_BYTES] {
    let mut header = [0u8; FRAME_HEADER_BYTES];
    header[0..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    header[4..12].copy_from_slice(&tag.to_le_bytes());
    header[12..16].copy_from_slice(&frame_crc(tag, covered(tag, payload)).to_le_bytes());
    header
}

/// Encode one frame into `w` (no flush — callers batch frames and flush
/// once per burst).
pub fn write_frame(w: &mut impl Write, tag: u64, payload: &[u8]) -> io::Result<()> {
    write_frame_bounded(w, tag, payload, max_frame_payload())
}

fn write_frame_bounded(w: &mut impl Write, tag: u64, payload: &[u8], max: usize) -> io::Result<()> {
    if payload.len() > max {
        return Err(oversize_error(payload.len(), max));
    }
    let header = encode_header(tag, payload);
    w.write_all(&header)?;
    w.write_all(payload)
}

/// Encode one frame with a scatter-gather write: header and payload go to
/// the kernel as one `writev`, so a multi-MiB chunk is never memcpy'd into
/// an intermediate buffer. Meant for an *unbuffered* sink (the fabric's
/// send threads flush their `BufWriter` first, then call this on the bare
/// socket for large payloads).
pub fn write_frame_vectored(w: &mut impl Write, tag: u64, payload: &[u8]) -> io::Result<()> {
    let max = max_frame_payload();
    if payload.len() > max {
        return Err(oversize_error(payload.len(), max));
    }
    let header = encode_header(tag, payload);
    let mut header_off = 0usize;
    let mut payload_off = 0usize;
    while header_off < header.len() || payload_off < payload.len() {
        // Invariant: payload_off stays 0 until the header is fully written.
        let n = if header_off < header.len() {
            w.write_vectored(&[IoSlice::new(&header[header_off..]), IoSlice::new(payload)])
        } else {
            w.write(&payload[payload_off..])
        };
        match n {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "socket accepted zero bytes mid-frame",
                ))
            }
            Ok(n) => {
                let header_part = n.min(header.len() - header_off);
                header_off += header_part;
                payload_off += n - header_part;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Read until `buf` is full or EOF; returns the number of bytes read.
/// (`read_exact` cannot distinguish "EOF before any byte" from "EOF mid
/// buffer", and that distinction is the clean-shutdown signal.)
fn read_full(r: &mut impl Read, buf: &mut [u8]) -> io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

/// Decode one frame from `r`. Returns `Ok(None)` on a clean EOF at a frame
/// boundary (the peer closed its connection in an orderly way); any short
/// read inside a frame, oversized length or CRC mismatch is an error.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<(u64, Vec<u8>)>> {
    read_frame_bounded(r, max_frame_payload())
}

fn read_frame_bounded(r: &mut impl Read, max: usize) -> io::Result<Option<(u64, Vec<u8>)>> {
    let mut header = [0u8; FRAME_HEADER_BYTES];
    match read_full(r, &mut header)? {
        0 => return Ok(None),
        FRAME_HEADER_BYTES => {}
        n => {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!(
                    "stream truncated inside a frame header ({n} of {FRAME_HEADER_BYTES} bytes)"
                ),
            ))
        }
    }
    // Destructure the fixed-size header instead of slicing: no fallible
    // conversion, no panic path on this untrusted-input parse.
    let [l0, l1, l2, l3, t0, t1, t2, t3, t4, t5, t6, t7, c0, c1, c2, c3] = header;
    let len = u32::from_le_bytes([l0, l1, l2, l3]) as usize;
    let tag = u64::from_le_bytes([t0, t1, t2, t3, t4, t5, t6, t7]);
    let crc = u32::from_le_bytes([c0, c1, c2, c3]);
    if len > max {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "frame announces a {len}-byte payload over the {max}-byte bound \
                 (corrupt length field, or raise {ENV_MAX_FRAME})"
            ),
        ));
    }
    // Read into uninitialised capacity: zero-filling a multi-MiB payload
    // buffer first would be a full extra memory pass on the stream path.
    let mut payload = Vec::with_capacity(len);
    let got = r.take(len as u64).read_to_end(&mut payload)?;
    if got != len {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            format!("stream truncated inside a frame payload ({got} of {len} bytes)"),
        ));
    }
    let computed = frame_crc(tag, covered(tag, &payload));
    if computed != crc {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame CRC mismatch: header {crc:#010x}, computed {computed:#010x}"),
        ));
    }
    Ok(Some((tag, payload)))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reader that hands out at most `chunk` bytes per `read` call —
    /// models TCP's short reads.
    struct Trickle<'a> {
        data: &'a [u8],
        pos: usize,
        chunk: usize,
    }

    impl Read for Trickle<'_> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            let n = buf
                .len()
                .min(self.chunk.max(1))
                .min(self.data.len() - self.pos);
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    /// A writer that accepts at most `cap` bytes per call (and only from
    /// the first slice of a vectored write) — models short socket writes.
    struct Dribble {
        out: Vec<u8>,
        cap: usize,
    }

    impl Write for Dribble {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            let n = buf.len().min(self.cap);
            self.out.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> io::Result<usize> {
            let mut n = 0;
            for b in bufs {
                let take = (self.cap - n).min(b.len());
                self.out.extend_from_slice(&b[..take]);
                n += take;
                if n == self.cap {
                    break;
                }
            }
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn encode(frames: &[(u64, &[u8])]) -> Vec<u8> {
        let mut out = Vec::new();
        for (tag, payload) in frames {
            write_frame(&mut out, *tag, payload).unwrap();
        }
        out
    }

    #[test]
    fn roundtrip_single_frame() {
        let bytes = encode(&[(7, b"hello fabric")]);
        let mut r = bytes.as_slice();
        assert_eq!(
            read_frame(&mut r).unwrap(),
            Some((7, b"hello fabric".to_vec()))
        );
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF after frame");
    }

    #[test]
    fn empty_payload_roundtrips() {
        let bytes = encode(&[(u64::MAX, b"")]);
        let mut r = bytes.as_slice();
        assert_eq!(read_frame(&mut r).unwrap(), Some((u64::MAX, Vec::new())));
    }

    #[test]
    fn coalesced_frames_decode_in_order() {
        // Several frames written into one buffer (one TCP segment carrying
        // many messages) decode back one at a time.
        let bytes = encode(&[(1, b"a"), (2, b"bb"), (3, b""), (1 << 62, b"ccc")]);
        let mut r = bytes.as_slice();
        assert_eq!(read_frame(&mut r).unwrap(), Some((1, b"a".to_vec())));
        assert_eq!(read_frame(&mut r).unwrap(), Some((2, b"bb".to_vec())));
        assert_eq!(read_frame(&mut r).unwrap(), Some((3, Vec::new())));
        assert_eq!(
            read_frame(&mut r).unwrap(),
            Some((1 << 62, b"ccc".to_vec()))
        );
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn split_reads_reassemble() {
        let payload: Vec<u8> = (0..300u32).map(|i| (i * 7) as u8).collect();
        let bytes = encode(&[(42, &payload), (43, b"tail")]);
        for chunk in [1, 2, 3, 7, 16, 64] {
            let mut r = Trickle {
                data: &bytes,
                pos: 0,
                chunk,
            };
            assert_eq!(
                read_frame(&mut r).unwrap(),
                Some((42, payload.clone())),
                "chunk {chunk}"
            );
            assert_eq!(read_frame(&mut r).unwrap(), Some((43, b"tail".to_vec())));
            assert_eq!(read_frame(&mut r).unwrap(), None);
        }
    }

    #[test]
    fn corrupt_payload_is_rejected() {
        let mut bytes = encode(&[(9, b"payload-bytes")]);
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        let err = read_frame(&mut bytes.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("CRC"), "{err}");
    }

    #[test]
    fn corrupt_tag_is_rejected() {
        // Flipping a tag bit must fail the CRC: otherwise a damaged header
        // would deliver the payload to the wrong (src, tag) channel.
        let mut bytes = encode(&[(5, b"x")]);
        bytes[4] ^= 0x01;
        let err = read_frame(&mut bytes.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_header_and_payload_are_eof_errors() {
        let bytes = encode(&[(9, b"0123456789")]);
        // Inside the header.
        for cut in 1..FRAME_HEADER_BYTES {
            let err = read_frame(&mut &bytes[..cut]).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut {cut}");
        }
        // Inside the payload.
        let err = read_frame(&mut &bytes[..bytes.len() - 3]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversized_length_field_is_rejected_without_allocating() {
        let mut bytes = encode(&[(1, b"x")]);
        bytes[0..4].copy_from_slice(&(u32::MAX).to_le_bytes());
        let err = read_frame(&mut bytes.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains(ENV_MAX_FRAME), "{err}");
    }

    #[test]
    fn configured_bound_applies_to_write_and_read() {
        // The env-var plumbing is a OnceLock around the same internal
        // bound, so the bound logic is tested through the internal entry
        // points (mutating the process environment would race sibling
        // tests).
        let payload = vec![0u8; 8192];
        let err = write_frame_bounded(&mut Vec::new(), 1, &payload, 4096).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(err.to_string().contains(ENV_MAX_FRAME), "{err}");

        let mut ok = Vec::new();
        write_frame_bounded(&mut ok, 1, &payload, 8192).unwrap();
        let err = read_frame_bounded(&mut ok.as_slice(), 4096).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains(ENV_MAX_FRAME), "{err}");
        assert_eq!(
            read_frame_bounded(&mut ok.as_slice(), 8192).unwrap(),
            Some((1, payload))
        );
    }

    #[test]
    fn vectored_write_equals_buffered_write_under_short_writes() {
        let payload: Vec<u8> = (0..5000u32).map(|i| (i * 11) as u8).collect();
        let expect = encode(&[(77, &payload)]);
        // Caps straddling the header boundary exercise every split of the
        // partial-write loop.
        for cap in [1, 3, 15, 16, 17, 100, 4096, 100_000] {
            let mut w = Dribble {
                out: Vec::new(),
                cap,
            };
            write_frame_vectored(&mut w, 77, &payload).unwrap();
            assert_eq!(w.out, expect, "cap {cap}");
        }
    }

    #[test]
    fn raw_frame_roundtrips_and_protects_its_prefix() {
        let tag = TAG_RAW_PAYLOAD_BIT | 0x33;
        let mut payload = vec![0u8; 1000];
        payload[0] = 7; // stream control prefix
        let mut bytes = Vec::new();
        write_frame(&mut bytes, tag, &payload).unwrap();
        assert_eq!(
            read_frame(&mut bytes.as_slice()).unwrap(),
            Some((tag, payload.clone()))
        );
        // The control prefix (first payload byte) is covered.
        let mut corrupt = bytes.clone();
        corrupt[FRAME_HEADER_BYTES] ^= 0x01;
        assert!(read_frame(&mut corrupt.as_slice()).is_err());
        // A corrupted header tag is covered too.
        let mut corrupt = bytes.clone();
        corrupt[4] ^= 0x01;
        assert!(read_frame(&mut corrupt.as_slice()).is_err());
        // Bulk bytes are *not* covered at the frame layer by design: their
        // integrity rides on the record's own trailing CRC, checked by the
        // stream receiver before anything is installed.
        let mut corrupt = bytes;
        let mid = FRAME_HEADER_BYTES + 500;
        corrupt[mid] ^= 0x01;
        let (got_tag, got_payload) = read_frame(&mut corrupt.as_slice()).unwrap().unwrap();
        assert_eq!(got_tag, tag);
        assert_ne!(
            got_payload, payload,
            "bulk corruption surfaces to the record CRC"
        );
    }

    #[test]
    fn empty_raw_frame_roundtrips() {
        let tag = TAG_RAW_PAYLOAD_BIT | 1;
        let mut bytes = Vec::new();
        write_frame(&mut bytes, tag, b"").unwrap();
        assert_eq!(
            read_frame(&mut bytes.as_slice()).unwrap(),
            Some((tag, Vec::new()))
        );
    }

    /// Any tag except the raw-payload bit: raw frames deliberately leave
    /// their bulk bytes to the record CRC one layer up.
    fn masked_tag() -> impl proptest::strategy::Strategy<Value = u64> {
        use proptest::strategy::Strategy;
        proptest::prelude::any::<u64>().prop_map(|t| t & !TAG_RAW_PAYLOAD_BIT)
    }

    proptest::proptest! {
        /// Any batch of frames written back-to-back (coalesced) decodes to
        /// exactly the same (tag, payload) sequence through a reader that
        /// returns arbitrarily short reads. Raw and fully-covered tags mix
        /// freely, and the vectored writer must produce identical bytes.
        #[test]
        fn prop_roundtrip_split_and_coalesced(
            frames in proptest::collection::vec(
                (proptest::prelude::any::<u64>(),
                 proptest::collection::vec(proptest::prelude::any::<u8>(), 0..200)),
                0..8,
            ),
            chunk in 1usize..32,
        ) {
            let mut bytes = Vec::new();
            let mut vectored = Vec::new();
            for (tag, payload) in &frames {
                write_frame(&mut bytes, *tag, payload).unwrap();
                write_frame_vectored(&mut vectored, *tag, payload).unwrap();
            }
            proptest::prop_assert_eq!(&bytes, &vectored);
            let mut r = Trickle { data: &bytes, pos: 0, chunk };
            for (tag, payload) in &frames {
                let got = read_frame(&mut r).unwrap();
                proptest::prop_assert_eq!(got, Some((*tag, payload.clone())));
            }
            proptest::prop_assert_eq!(read_frame(&mut r).unwrap(), None);
        }

        /// Flipping any single byte of an encoded frame never yields a
        /// silently different message: the decode fails, or (for a length
        /// byte that grows the frame) reports a truncated stream. Raw tags
        /// are excluded — their bulk payload is covered by the record CRC
        /// one layer up, not by the frame header.
        #[test]
        fn prop_single_byte_corruption_is_detected(
            payload in proptest::collection::vec(proptest::prelude::any::<u8>(), 1..100),
            tag in masked_tag(),
            flip_bit in 0u8..8,
        ) {
            let mut bytes = Vec::new();
            write_frame(&mut bytes, tag, &payload).unwrap();
            for pos in 0..bytes.len() {
                let mut corrupt = bytes.clone();
                corrupt[pos] ^= 1 << flip_bit;
                match read_frame(&mut corrupt.as_slice()) {
                    Err(_) => {}
                    Ok(decoded) => proptest::prop_assert_eq!(
                        decoded, None,
                        "byte {} corrupted yet frame decoded", pos
                    ),
                }
            }
        }
    }
}
