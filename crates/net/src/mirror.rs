//! Survivor-local checkpoint mirror: the fast restore lane of single-rank
//! recovery.
//!
//! When a rank dies mid-run, *every* rank rolls back to the last
//! group-committed safe point — the rejoined newcomer restores its shard
//! over the network from the root's durable store, but the survivors
//! already streamed that exact shard generation out of their own memory
//! moments ago. [`MirrorTransport`] keeps the last two full shard records
//! a rank saved in local [`MemTransport`] slots (two, because a rank can
//! have saved generation `N+1` while the group commit still points at
//! `N` — the torn-checkpoint case), so a survivor's count-pinned restore
//! ([`CkptTransport::read_shard_at`]) is a local memory read instead of a
//! root round-trip. Recovery traffic then scales with the *one* lost
//! shard, not the whole aggregate.
//!
//! The network transport stays the durability authority: every put is
//! forwarded first and its result is what the caller sees; the local tee
//! is opportunistic. A failed network put wipes the mirror — after a
//! fault the local generations can no longer be trusted to match what the
//! root will serve, and a stale hit here would restore state diverging
//! from the group. Delta records are not mirrored (the mirror serves only
//! exact-count full-snapshot hits and falls through to the network for
//! everything else).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use ppar_ckpt::delta::DeltaMeta;
use ppar_ckpt::store::{DeltaSource, FieldSource, Snapshot, SnapshotMeta};
use ppar_ckpt::transport::{CkptTransport, RawRecordKind, RawRecordSink};
use ppar_ckpt::MemTransport;
use ppar_core::error::Result;

/// Which local slot holds which shard generation (see module docs).
#[derive(Default)]
struct MirrorState {
    /// Safe-point count held by each slot (`None` = slot empty/stale).
    counts: [Option<u64>; 2],
    /// Slot the next full-shard save overwrites (the older generation).
    next: usize,
}

/// A [`CkptTransport`] that forwards everything to an inner (network)
/// transport while teeing full shard saves into two alternating local
/// in-memory generations, serving count-pinned shard restores locally
/// when a generation matches. See the [module docs](self).
pub struct MirrorTransport {
    net: Arc<dyn CkptTransport>,
    slots: [MemTransport; 2],
    state: Mutex<MirrorState>,
    local_hits: AtomicU64,
}

impl MirrorTransport {
    /// Wrap `net`, mirroring full shard saves locally.
    pub fn new(net: Arc<dyn CkptTransport>) -> MirrorTransport {
        MirrorTransport {
            net,
            slots: [MemTransport::new(), MemTransport::new()],
            state: Mutex::new(MirrorState::default()),
            local_hits: AtomicU64::new(0),
        }
    }

    /// Count-pinned restores served from the local mirror so far (the
    /// recovery bench asserts survivor restores stay off the network).
    pub fn local_hits(&self) -> u64 {
        self.local_hits.load(Ordering::Relaxed)
    }

    /// Drop both local generations (a fault boundary: the network store
    /// is the only trusted source until the next successful save).
    fn wipe(&self) {
        let mut st = self.state.lock();
        st.counts = [None, None];
        st.next = 0;
        for slot in &self.slots {
            slot.clear();
        }
    }
}

impl CkptTransport for MirrorTransport {
    fn describe(&self) -> &'static str {
        "mirror"
    }

    fn put_master(
        &self,
        meta: &SnapshotMeta,
        fields: &[(&str, FieldSource<'_>)],
        scratch: &mut Vec<u8>,
    ) -> Result<u64> {
        self.net.put_master(meta, fields, scratch)
    }

    fn put_shard(
        &self,
        meta: &SnapshotMeta,
        fields: &[(&str, FieldSource<'_>)],
        scratch: &mut Vec<u8>,
    ) -> Result<u64> {
        let written = match self.net.put_shard(meta, fields, scratch) {
            Ok(w) => w,
            Err(e) => {
                self.wipe();
                return Err(e);
            }
        };
        let mut st = self.state.lock();
        let slot = st.next;
        match self.slots[slot].put_shard(meta, fields, scratch) {
            Ok(_) => {
                st.counts[slot] = Some(meta.count);
                st.next = slot ^ 1;
            }
            Err(_) => {
                // Local tee failure only disables the fast lane.
                st.counts[slot] = None;
                self.slots[slot].clear();
            }
        }
        Ok(written)
    }

    fn put_master_delta(
        &self,
        meta: &DeltaMeta,
        fields: &[(&str, DeltaSource<'_>)],
        scratch: &mut Vec<u8>,
    ) -> Result<u64> {
        self.net.put_master_delta(meta, fields, scratch)
    }

    fn put_shard_delta(
        &self,
        meta: &DeltaMeta,
        fields: &[(&str, DeltaSource<'_>)],
        scratch: &mut Vec<u8>,
    ) -> Result<u64> {
        // Deltas are not mirrored: a chain over a mirrored base would make
        // the local generation's merged count drift from its slot key.
        // Fail the mirror closed instead and let restores fall through.
        match self.net.put_shard_delta(meta, fields, scratch) {
            Ok(w) => {
                self.wipe();
                Ok(w)
            }
            Err(e) => {
                self.wipe();
                Err(e)
            }
        }
    }

    fn read_merged_master(&self) -> Result<Option<Snapshot>> {
        self.net.read_merged_master()
    }

    fn read_merged_shard(&self, rank: u32) -> Result<Option<Snapshot>> {
        self.net.read_merged_shard(rank)
    }

    fn read_shard_at(&self, rank: u32, count: u64) -> Result<Option<Snapshot>> {
        let slot = {
            let st = self.state.lock();
            st.counts.iter().position(|c| *c == Some(count))
        };
        if let Some(i) = slot {
            if let Some(snap) = self.slots[i].read_merged_shard(rank)? {
                if snap.count == count {
                    self.local_hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(Some(snap));
                }
            }
        }
        self.net.read_shard_at(rank, count)
    }

    fn restart_count(&self) -> Result<Option<u64>> {
        self.net.restart_count()
    }

    fn commit_group(&self, count: u64) -> Result<()> {
        self.net.commit_group(count)
    }

    fn clear_deltas(&self, rank: Option<u32>) -> Result<()> {
        self.net.clear_deltas(rank)
    }

    fn clear_all_deltas(&self) -> Result<()> {
        self.net.clear_all_deltas()
    }

    fn begin_raw<'a>(
        &'a self,
        kind: RawRecordKind,
        len_hint: u64,
    ) -> Result<Box<dyn RawRecordSink + 'a>> {
        self.net.begin_raw(kind, len_hint)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppar_ckpt::store::SnapshotMeta;
    use ppar_core::error::PparError;

    fn shard_meta(count: u64, rank: u32) -> SnapshotMeta {
        SnapshotMeta {
            mode_tag: "tcp4".into(),
            count,
            rank: Some(rank),
            nranks: 4,
        }
    }

    fn put(t: &MirrorTransport, count: u64, rank: u32, payload: &[u8]) {
        t.put_shard(
            &shard_meta(count, rank),
            &[("G", FieldSource::Bytes(payload))],
            &mut Vec::new(),
        )
        .unwrap();
    }

    #[test]
    fn serves_last_two_generations_locally() {
        let net = Arc::new(MemTransport::new());
        let mirror = MirrorTransport::new(net.clone());
        put(&mirror, 10, 2, &[1u8; 64]);
        put(&mirror, 20, 2, &[2u8; 64]);
        put(&mirror, 30, 2, &[3u8; 64]);

        // The two newest generations hit the mirror...
        assert_eq!(
            mirror.read_shard_at(2, 30).unwrap().unwrap().field("G"),
            Some(&[3u8; 64][..])
        );
        assert_eq!(
            mirror.read_shard_at(2, 20).unwrap().unwrap().field("G"),
            Some(&[2u8; 64][..])
        );
        assert_eq!(mirror.local_hits(), 2);

        // ...the evicted one falls through to the network store, whose
        // chain tip (30) no longer matches — the count pin catches it.
        assert!(mirror.read_shard_at(2, 10).is_err());
        assert_eq!(mirror.local_hits(), 2);
    }

    #[test]
    fn network_put_failure_wipes_the_mirror() {
        struct FailNext {
            inner: MemTransport,
            fail: std::sync::atomic::AtomicBool,
        }
        impl CkptTransport for FailNext {
            fn describe(&self) -> &'static str {
                "failnext"
            }
            fn put_master(
                &self,
                m: &SnapshotMeta,
                f: &[(&str, FieldSource<'_>)],
                s: &mut Vec<u8>,
            ) -> Result<u64> {
                self.inner.put_master(m, f, s)
            }
            fn put_shard(
                &self,
                m: &SnapshotMeta,
                f: &[(&str, FieldSource<'_>)],
                s: &mut Vec<u8>,
            ) -> Result<u64> {
                if self.fail.swap(false, Ordering::SeqCst) {
                    return Err(PparError::Network("peer rank 0 is down".into()));
                }
                self.inner.put_shard(m, f, s)
            }
            fn put_master_delta(
                &self,
                m: &DeltaMeta,
                f: &[(&str, DeltaSource<'_>)],
                s: &mut Vec<u8>,
            ) -> Result<u64> {
                self.inner.put_master_delta(m, f, s)
            }
            fn put_shard_delta(
                &self,
                m: &DeltaMeta,
                f: &[(&str, DeltaSource<'_>)],
                s: &mut Vec<u8>,
            ) -> Result<u64> {
                self.inner.put_shard_delta(m, f, s)
            }
            fn read_merged_master(&self) -> Result<Option<Snapshot>> {
                self.inner.read_merged_master()
            }
            fn read_merged_shard(&self, rank: u32) -> Result<Option<Snapshot>> {
                self.inner.read_merged_shard(rank)
            }
            fn restart_count(&self) -> Result<Option<u64>> {
                self.inner.restart_count()
            }
            fn clear_deltas(&self, rank: Option<u32>) -> Result<()> {
                self.inner.clear_deltas(rank)
            }
            fn clear_all_deltas(&self) -> Result<()> {
                self.inner.clear_all_deltas()
            }
        }

        let net = Arc::new(FailNext {
            inner: MemTransport::new(),
            fail: std::sync::atomic::AtomicBool::new(false),
        });
        let mirror = MirrorTransport::new(net.clone());
        put(&mirror, 10, 1, &[7u8; 32]);
        assert_eq!(mirror.read_shard_at(1, 10).unwrap().unwrap().count, 10);
        assert_eq!(mirror.local_hits(), 1);

        net.fail.store(true, Ordering::SeqCst);
        let err = mirror.put_shard(
            &shard_meta(20, 1),
            &[("G", FieldSource::Bytes(&[8u8; 32]))],
            &mut Vec::new(),
        );
        assert!(err.is_err());

        // The mirror is gone; the restore goes to the network store
        // (which still holds generation 10 from the first save).
        assert_eq!(mirror.read_shard_at(1, 10).unwrap().unwrap().count, 10);
        assert_eq!(mirror.local_hits(), 1, "no further local hits");
    }

    #[test]
    fn delta_saves_disable_the_mirror() {
        let net = Arc::new(MemTransport::new());
        let mirror = MirrorTransport::new(net);
        put(&mirror, 10, 3, &[1u8; 16]);
        let dm = DeltaMeta {
            mode_tag: "tcp4".into(),
            count: 20,
            base_count: 10,
            seq: 1,
            rank: Some(3),
            nranks: 4,
        };
        mirror
            .put_shard_delta(
                &dm,
                &[("G", DeltaSource::Full(FieldSource::Bytes(&[2u8; 16])))],
                &mut Vec::new(),
            )
            .unwrap();
        // Count 10 would now under-serve the merged chain: the mirror
        // must not answer.
        assert_eq!(mirror.read_shard_at(3, 20).unwrap().unwrap().count, 20);
        assert_eq!(mirror.local_hits(), 0);
    }
}
