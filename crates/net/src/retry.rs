//! Deterministic jittered exponential backoff.
//!
//! One retry policy serves every transient-failure site in the fabric:
//! rendezvous connects (the root's listener may not be up yet), rejoin
//! dials after a rank respawn, and checkpoint RPC re-issues after a
//! recovered fault. The jitter is *deterministic* — a cheap xorshift
//! stream seeded by the caller — so chaos runs replay the exact same
//! sleep schedule under the same seed (the reproducibility contract of
//! [`crate::chaos`]).

use std::time::{Duration, Instant};

/// Jittered exponential backoff over a fixed deadline.
///
/// Produces a sleep duration per failed attempt: `base * factor^n`,
/// capped at `max`, with ±`jitter` (a fraction of the delay) applied from
/// a deterministic pseudo-random stream. [`RetryPolicy::next_delay`]
/// returns `None` once the deadline has passed — the caller gives up and
/// surfaces the underlying error.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    base: Duration,
    max: Duration,
    factor: f64,
    /// Jitter amplitude as a fraction of the computed delay (0.0..=1.0).
    jitter: f64,
    deadline: Instant,
    attempt: u32,
    rng: u64,
}

impl RetryPolicy {
    /// A policy expiring `deadline` from now, with the given first-attempt
    /// delay and cap. `seed` fixes the jitter stream (pass the rank for
    /// per-process decorrelation that is still reproducible run-to-run).
    pub fn new(base: Duration, max: Duration, deadline: Duration, seed: u64) -> RetryPolicy {
        RetryPolicy {
            base,
            max,
            factor: 2.0,
            jitter: 0.25,
            deadline: Instant::now() + deadline,
            attempt: 0,
            // Splitmix the seed so adjacent seeds (rank numbers) get
            // uncorrelated streams, then dodge the all-zero xorshift
            // fixed point.
            rng: RetryPolicy::mix(seed) | 1,
        }
    }

    fn mix(seed: u64) -> u64 {
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The default connect policy: 10 ms first retry, 500 ms cap, expiring
    /// after `deadline` (callers pass the fabric's connect timeout).
    pub fn connect(deadline: Duration, seed: u64) -> RetryPolicy {
        RetryPolicy::new(
            Duration::from_millis(10),
            Duration::from_millis(500),
            deadline,
            seed,
        )
    }

    /// Time left before the policy expires (zero once exhausted).
    pub fn remaining(&self) -> Duration {
        self.deadline.saturating_duration_since(Instant::now())
    }

    /// Has the deadline passed?
    pub fn expired(&self) -> bool {
        self.remaining().is_zero()
    }

    fn xorshift(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    /// The sleep before the next attempt, or `None` when the deadline has
    /// passed. Never returns a delay that overshoots the deadline: the
    /// final sleep is clamped so the last attempt still happens in time.
    pub fn next_delay(&mut self) -> Option<Duration> {
        let remaining = self.remaining();
        if remaining.is_zero() {
            return None;
        }
        let exp = self.factor.powi(self.attempt.min(20) as i32);
        self.attempt = self.attempt.saturating_add(1);
        let raw = self.base.as_secs_f64() * exp;
        let capped = raw.min(self.max.as_secs_f64());
        // Uniform jitter in [1 - j, 1 + j].
        let unit = (self.xorshift() >> 11) as f64 / (1u64 << 53) as f64;
        let scale = 1.0 + self.jitter * (2.0 * unit - 1.0);
        let jittered = Duration::from_secs_f64(capped * scale);
        Some(jittered.min(remaining))
    }

    /// Sleep for the next backoff step. Returns `false` when the deadline
    /// has passed (the caller should stop retrying).
    pub fn backoff(&mut self) -> bool {
        match self.next_delay() {
            Some(d) => {
                std::thread::sleep(d);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delays(seed: u64, n: usize) -> Vec<Duration> {
        let mut p = RetryPolicy::new(
            Duration::from_millis(10),
            Duration::from_millis(500),
            Duration::from_secs(3600),
            seed,
        );
        (0..n).map(|_| p.next_delay().unwrap()).collect()
    }

    #[test]
    fn delays_grow_exponentially_to_the_cap() {
        let d = delays(7, 12);
        // Monotone up to the cap modulo ±25% jitter: compare against the
        // un-jittered envelope.
        for (i, d) in d.iter().enumerate() {
            let ideal = (10.0 * 2f64.powi(i as i32)).min(500.0);
            let ms = d.as_secs_f64() * 1e3;
            assert!(
                ms >= ideal * 0.74 && ms <= ideal * 1.26,
                "attempt {i}: {ms:.2} ms outside jitter envelope of {ideal} ms"
            );
        }
    }

    #[test]
    fn same_seed_same_schedule() {
        assert_eq!(delays(42, 16), delays(42, 16));
        assert_ne!(delays(42, 16), delays(43, 16));
    }

    #[test]
    fn deadline_exhausts_the_policy() {
        let mut p = RetryPolicy::new(
            Duration::from_millis(1),
            Duration::from_millis(2),
            Duration::from_millis(30),
            1,
        );
        let mut total = Duration::ZERO;
        let mut steps = 0;
        while let Some(d) = p.next_delay() {
            // Model the caller sleeping: advance our accounting only — the
            // policy tracks wall-clock internally, so actually sleep.
            std::thread::sleep(d);
            total += d;
            steps += 1;
            assert!(steps < 1000, "policy never expired");
        }
        assert!(p.expired());
        assert!(
            total <= Duration::from_millis(80),
            "overshot deadline: {total:?}"
        );
    }

    #[test]
    fn final_delay_is_clamped_to_the_deadline() {
        let mut p = RetryPolicy::new(
            Duration::from_secs(10),
            Duration::from_secs(10),
            Duration::from_millis(50),
            9,
        );
        let d = p.next_delay().unwrap();
        assert!(d <= Duration::from_millis(50));
    }
}
