//! `NetTransport`: checkpoint records over the fabric.
//!
//! In a real multi-process job the ranks no longer share an address space
//! — and often no disk. This module keeps the checkpoint layer's
//! [`CkptTransport`] seam intact across that boundary:
//!
//! * every **non-root** rank persists through a [`NetTransport`] *client*:
//!   `put_*` encodes the full/delta record with the shared golden
//!   [`SnapshotWriter`] (checksummed — these bytes travel and then land on
//!   a durable medium) and ships it to the root inside one CRC frame;
//!   reads stream the merged record back root → rank (the restart and
//!   reshape path);
//! * the **root** runs a [`CkptService`]: a thread that receives those
//!   records, integrity-checks them, and forwards them into the root's
//!   own durable transport (its [`ppar_ckpt::CheckpointStore`] directory,
//!   or a [`ppar_ckpt::MemTransport`] for disk-free runs) — so one
//!   directory on one machine holds the whole job's base + shard chains,
//!   exactly as in the thread-backed modes.
//!
//! Because the record bytes are produced by the same encoder on every
//! rank, a shard streamed over TCP is byte-identical to the file a local
//! save of the same state would have produced — state migrates between
//! processes without any re-serialisation layer. This is also the
//! rank-state **migration** primitive measured by the loopback bench.
//!
//! ## Tag space
//!
//! Checkpoint frames run under [`CKPT_TAG_BIT`] (bit 62). User messages
//! carry bit 63 and collective tags stay far below bit 62, so checkpoint
//! traffic can never cross-match either.

use std::ops::Range;
use std::sync::Arc;

use ppar_ckpt::delta::{DeltaMeta, DeltaPayload, DeltaSnapshot};
use ppar_ckpt::store::{DeltaSource, FieldSource, Snapshot, SnapshotMeta, SnapshotWriter};
use ppar_ckpt::transport::CkptTransport;
use ppar_core::error::{PparError, Result};

use crate::fabric::{Fabric, Payload};

/// Tag-space bit reserved for checkpoint service frames.
pub const CKPT_TAG_BIT: u64 = 1 << 62;
/// Requests rank → root.
const REQ_TAG: u64 = CKPT_TAG_BIT | 0x10;
/// Responses root → rank.
const RSP_TAG: u64 = CKPT_TAG_BIT | 0x11;

/// Wire sentinel for "master chain" where a rank number is expected.
const MASTER_SENTINEL: u32 = 0xFFFF_FFFF;

// Request opcodes.
const OP_PUT_MASTER: u8 = 1;
const OP_PUT_SHARD: u8 = 2;
const OP_PUT_MASTER_DELTA: u8 = 3;
const OP_PUT_SHARD_DELTA: u8 = 4;
const OP_GET_MASTER: u8 = 5;
const OP_GET_SHARD: u8 = 6;
const OP_RESTART_COUNT: u8 = 7;
const OP_CLEAR_DELTAS: u8 = 8;
const OP_CLEAR_ALL_DELTAS: u8 = 9;
const OP_STOP: u8 = 10;

// Response status bytes.
const ST_OK: u8 = 0;
const ST_ERR: u8 = 1;

/// Client half: a [`CkptTransport`] whose durable medium lives on the root
/// rank, reached over the fabric. One per non-root rank process.
pub struct NetTransport {
    fabric: Arc<dyn Fabric>,
    rank: usize,
    root: usize,
}

impl NetTransport {
    /// A client for `rank`, persisting through the service on rank 0.
    pub fn client(fabric: Arc<dyn Fabric>, rank: usize) -> NetTransport {
        assert!(rank < fabric.nranks(), "rank out of range");
        NetTransport {
            fabric,
            rank,
            root: 0,
        }
    }

    /// One request/response round trip. Checkpoint operations are issued
    /// serially per rank (they run at quiesced safe points), so the single
    /// response tag cannot interleave.
    fn rpc(&self, req: Vec<u8>) -> Result<Payload> {
        self.fabric
            .send(self.rank, self.root, REQ_TAG, Arc::new(req));
        let rsp = self.fabric.recv(self.rank, self.root, RSP_TAG)?;
        match rsp.first() {
            Some(&ST_OK) => Ok(rsp),
            Some(&ST_ERR) => Err(PparError::Network(format!(
                "checkpoint service on rank {}: {}",
                self.root,
                String::from_utf8_lossy(&rsp[1..])
            ))),
            _ => Err(PparError::Network("empty checkpoint response".into())),
        }
    }

    /// Pre-size the request buffer from the fields' known lengths — a
    /// multi-MiB migration record must not pay growth reallocs on top of
    /// its wire copy.
    fn reserve_hint(fields: &[(&str, FieldSource<'_>)]) -> usize {
        fields
            .iter()
            .map(|(name, source)| {
                let body = match source {
                    FieldSource::Bytes(b) => b.len(),
                    FieldSource::Cell(cell) => cell.known_byte_len().unwrap_or(0),
                };
                name.len() + 16 + body
            })
            .sum::<usize>()
            + 128
    }

    fn put_full(
        &self,
        op: u8,
        meta: &SnapshotMeta,
        fields: &[(&str, FieldSource<'_>)],
        scratch: &mut Vec<u8>,
    ) -> Result<u64> {
        let mut req = Vec::with_capacity(1 + NetTransport::reserve_hint(fields));
        req.push(op);
        let mut w = SnapshotWriter::new(req, meta, fields.len() as u32)?;
        for (name, source) in fields {
            w.field(name, source, scratch)?;
        }
        let (written, req) = w.finish()?;
        self.rpc(req)?;
        Ok(written)
    }

    /// [`NetTransport::reserve_hint`] for delta records: sparse entries
    /// contribute their range map + carried bytes, full entries their
    /// whole body.
    fn delta_reserve_hint(fields: &[(&str, DeltaSource<'_>)]) -> usize {
        fields
            .iter()
            .map(|(name, source)| {
                let body = match source {
                    DeltaSource::Full(FieldSource::Bytes(b)) => b.len(),
                    DeltaSource::Full(FieldSource::Cell(cell)) => {
                        cell.known_byte_len().unwrap_or(0)
                    }
                    DeltaSource::DirtyCell { ranges, .. } => {
                        ranges.iter().map(|r| r.len()).sum::<usize>() + ranges.len() * 16
                    }
                    DeltaSource::DirtyBytes {
                        ranges, payload, ..
                    } => payload.len() + ranges.len() * 16,
                };
                name.len() + 32 + body
            })
            .sum::<usize>()
            + 128
    }

    fn put_delta(
        &self,
        op: u8,
        meta: &DeltaMeta,
        fields: &[(&str, DeltaSource<'_>)],
        scratch: &mut Vec<u8>,
    ) -> Result<u64> {
        let mut req = Vec::with_capacity(1 + NetTransport::delta_reserve_hint(fields));
        req.push(op);
        let mut w = SnapshotWriter::new_delta(req, meta, fields.len() as u32)?;
        for (name, source) in fields {
            w.delta_field(name, source, scratch)?;
        }
        let (written, req) = w.finish()?;
        self.rpc(req)?;
        Ok(written)
    }

    fn get_snapshot(&self, req: Vec<u8>) -> Result<Option<Snapshot>> {
        let rsp = self.rpc(req)?;
        match rsp.get(1) {
            Some(1) => Snapshot::decode(&rsp[2..]).map(Some),
            Some(0) => Ok(None),
            _ => Err(PparError::Network(
                "malformed snapshot response from checkpoint service".into(),
            )),
        }
    }
}

impl CkptTransport for NetTransport {
    fn describe(&self) -> &'static str {
        "net"
    }

    fn put_master(
        &self,
        meta: &SnapshotMeta,
        fields: &[(&str, FieldSource<'_>)],
        scratch: &mut Vec<u8>,
    ) -> Result<u64> {
        self.put_full(OP_PUT_MASTER, meta, fields, scratch)
    }

    fn put_shard(
        &self,
        meta: &SnapshotMeta,
        fields: &[(&str, FieldSource<'_>)],
        scratch: &mut Vec<u8>,
    ) -> Result<u64> {
        self.put_full(OP_PUT_SHARD, meta, fields, scratch)
    }

    fn put_master_delta(
        &self,
        meta: &DeltaMeta,
        fields: &[(&str, DeltaSource<'_>)],
        scratch: &mut Vec<u8>,
    ) -> Result<u64> {
        self.put_delta(OP_PUT_MASTER_DELTA, meta, fields, scratch)
    }

    fn put_shard_delta(
        &self,
        meta: &DeltaMeta,
        fields: &[(&str, DeltaSource<'_>)],
        scratch: &mut Vec<u8>,
    ) -> Result<u64> {
        self.put_delta(OP_PUT_SHARD_DELTA, meta, fields, scratch)
    }

    fn read_merged_master(&self) -> Result<Option<Snapshot>> {
        self.get_snapshot(vec![OP_GET_MASTER])
    }

    fn read_merged_shard(&self, rank: u32) -> Result<Option<Snapshot>> {
        let mut req = vec![OP_GET_SHARD];
        req.extend_from_slice(&rank.to_le_bytes());
        self.get_snapshot(req)
    }

    fn restart_count(&self) -> Result<Option<u64>> {
        let rsp = self.rpc(vec![OP_RESTART_COUNT])?;
        match rsp.get(1) {
            Some(1) if rsp.len() >= 10 => Ok(Some(u64::from_le_bytes(
                rsp[2..10].try_into().expect("8-byte count"),
            ))),
            Some(0) => Ok(None),
            _ => Err(PparError::Network(
                "malformed restart-count response from checkpoint service".into(),
            )),
        }
    }

    fn clear_deltas(&self, rank: Option<u32>) -> Result<()> {
        let mut req = vec![OP_CLEAR_DELTAS];
        req.extend_from_slice(&rank.unwrap_or(MASTER_SENTINEL).to_le_bytes());
        self.rpc(req).map(|_| ())
    }

    fn clear_all_deltas(&self) -> Result<()> {
        self.rpc(vec![OP_CLEAR_ALL_DELTAS]).map(|_| ())
    }
}

/// Server half: the root's checkpoint service thread. Stop it with
/// [`CkptService::stop`] once the job completes (also attempted on drop).
pub struct CkptService {
    fabric: Arc<dyn Fabric>,
    rank: usize,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl NetTransport {
    /// Start the root-side service on `fabric` as `rank` (the root),
    /// forwarding every received record into `inner` — the job's actual
    /// durable transport.
    pub fn serve(
        fabric: Arc<dyn Fabric>,
        rank: usize,
        inner: Arc<dyn CkptTransport>,
    ) -> CkptService {
        let loop_fabric = fabric.clone();
        let handle = std::thread::Builder::new()
            .name(format!("ppar-ckpt-service-{rank}"))
            .spawn(move || service_loop(loop_fabric, rank, inner))
            .expect("spawn checkpoint service thread");
        CkptService {
            fabric,
            rank,
            handle: Some(handle),
        }
    }
}

impl CkptService {
    /// Ask the service loop to exit and join it.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.fabric
                .send(self.rank, self.rank, REQ_TAG, Arc::new(vec![OP_STOP]));
            let _ = handle.join();
        }
    }
}

impl Drop for CkptService {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

fn service_loop(fabric: Arc<dyn Fabric>, rank: usize, inner: Arc<dyn CkptTransport>) {
    loop {
        // recv_any fails only when every peer is down — at which point the
        // job is lost anyway and the root's own collectives will fail too.
        let Ok((src, req)) = fabric.recv_any(rank, REQ_TAG) else {
            return;
        };
        let op = req.first().copied().unwrap_or(0);
        if op == OP_STOP {
            return;
        }
        // `get(1..)` so a zero-length request is an *answered* error (the
        // unknown-opcode branch), never a service-thread panic.
        let rsp = match handle_request(&inner, op, req.get(1..).unwrap_or(&[])) {
            Ok(mut body) => {
                body.insert(0, ST_OK);
                body
            }
            Err(e) => {
                let mut body = vec![ST_ERR];
                body.extend_from_slice(e.to_string().as_bytes());
                body
            }
        };
        fabric.send(rank, src, RSP_TAG, Arc::new(rsp));
    }
}

fn handle_request(inner: &Arc<dyn CkptTransport>, op: u8, body: &[u8]) -> Result<Vec<u8>> {
    match op {
        OP_PUT_MASTER | OP_PUT_SHARD => {
            let written = forward_full(inner, op == OP_PUT_SHARD, body)?;
            Ok(written.to_le_bytes().to_vec())
        }
        OP_PUT_MASTER_DELTA | OP_PUT_SHARD_DELTA => {
            let written = forward_delta(inner, op == OP_PUT_SHARD_DELTA, body)?;
            Ok(written.to_le_bytes().to_vec())
        }
        OP_GET_MASTER => encode_snapshot_response(inner.read_merged_master()?),
        OP_GET_SHARD => {
            let rank = read_u32(body)?;
            encode_snapshot_response(inner.read_merged_shard(rank)?)
        }
        OP_RESTART_COUNT => match inner.restart_count()? {
            Some(count) => {
                let mut out = vec![1u8];
                out.extend_from_slice(&count.to_le_bytes());
                Ok(out)
            }
            None => Ok(vec![0u8]),
        },
        OP_CLEAR_DELTAS => {
            let raw = read_u32(body)?;
            inner.clear_deltas((raw != MASTER_SENTINEL).then_some(raw))?;
            Ok(Vec::new())
        }
        OP_CLEAR_ALL_DELTAS => {
            inner.clear_all_deltas()?;
            Ok(Vec::new())
        }
        other => Err(PparError::Network(format!(
            "unknown checkpoint service opcode {other}"
        ))),
    }
}

fn read_u32(body: &[u8]) -> Result<u32> {
    body.get(0..4)
        .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
        .ok_or_else(|| PparError::Network("truncated checkpoint request".into()))
}

fn encode_snapshot_response(snap: Option<Snapshot>) -> Result<Vec<u8>> {
    match snap {
        Some(snap) => {
            let mut out = vec![1u8];
            out.extend_from_slice(&snap.encode());
            Ok(out)
        }
        None => Ok(vec![0u8]),
    }
}

/// Install a received full record into the durable transport. The record's
/// CRC is verified here — before anything touches the durable chain — and
/// the re-encode through the shared golden writer reproduces the received
/// bytes exactly (one encoder everywhere).
fn forward_full(inner: &Arc<dyn CkptTransport>, shard: bool, record: &[u8]) -> Result<u64> {
    let snap = Snapshot::decode(record)?;
    let meta = snap.meta();
    let fields: Vec<(&str, FieldSource<'_>)> = snap
        .fields
        .iter()
        .map(|(name, bytes)| (name.as_str(), FieldSource::Bytes(bytes.as_slice())))
        .collect();
    let mut scratch = Vec::new();
    if shard {
        inner.put_shard(&meta, &fields, &mut scratch)
    } else {
        inner.put_master(&meta, &fields, &mut scratch)
    }
}

/// Install a received delta record into the durable transport (sparse
/// chunk maps preserved — a near-empty delta stays near-empty on disk).
fn forward_delta(inner: &Arc<dyn CkptTransport>, shard: bool, record: &[u8]) -> Result<u64> {
    let delta = DeltaSnapshot::decode(record)?;
    struct SparseBuf {
        full_len: u64,
        ranges: Vec<Range<usize>>,
        payload: Vec<u8>,
    }
    let sparse: Vec<Option<SparseBuf>> = delta
        .fields
        .iter()
        .map(|(_, payload)| match payload {
            DeltaPayload::Full(_) => None,
            DeltaPayload::Sparse { full_len, ranges } => {
                let mut rs = Vec::with_capacity(ranges.len());
                let mut buf = Vec::with_capacity(ranges.iter().map(|(_, b)| b.len()).sum());
                for (off, bytes) in ranges {
                    rs.push(*off as usize..*off as usize + bytes.len());
                    buf.extend_from_slice(bytes);
                }
                Some(SparseBuf {
                    full_len: *full_len,
                    ranges: rs,
                    payload: buf,
                })
            }
        })
        .collect();
    let fields: Vec<(&str, DeltaSource<'_>)> = delta
        .fields
        .iter()
        .zip(&sparse)
        .map(|((name, payload), sparse)| {
            let source = match (payload, sparse) {
                (DeltaPayload::Full(bytes), _) => DeltaSource::Full(FieldSource::Bytes(bytes)),
                (DeltaPayload::Sparse { .. }, Some(s)) => DeltaSource::DirtyBytes {
                    full_len: s.full_len,
                    ranges: &s.ranges,
                    payload: &s.payload,
                },
                (DeltaPayload::Sparse { .. }, None) => unreachable!("sparse buffer prepared"),
            };
            (name.as_str(), source)
        })
        .collect();
    let mut scratch = Vec::new();
    if shard {
        inner.put_shard_delta(&delta.meta, &fields, &mut scratch)
    } else {
        inner.put_master_delta(&delta.meta, &fields, &mut scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::free_loopback_addr;
    use crate::tcp::{NetConfig, TcpFabric};
    use ppar_ckpt::MemTransport;
    use std::time::Duration;

    const DONE_TAG: u64 = (1 << 63) | 77;

    fn meta(count: u64, rank: Option<u32>, nranks: u32) -> SnapshotMeta {
        SnapshotMeta {
            mode_tag: "tcp2".into(),
            count,
            rank,
            nranks,
        }
    }

    /// Root runs the service + `root_check` after the client finishes;
    /// rank 1 runs `client_ops`. Returns what `root_check` produced.
    fn two_rank<R: Send>(
        client_ops: impl Fn(&NetTransport) + Sync,
        root_check: impl Fn(&Arc<dyn CkptTransport>) -> R + Sync,
    ) -> R {
        let root = free_loopback_addr().unwrap();
        let mut out = None;
        std::thread::scope(|scope| {
            let root2 = root.clone();
            let out_ref = &mut out;
            let root_check = &root_check;
            scope.spawn(move || {
                let mut cfg = NetConfig::new(0, 2, root2);
                cfg.recv_timeout = Duration::from_secs(20);
                let fabric = TcpFabric::connect(&cfg).unwrap();
                let dyn_fabric: Arc<dyn Fabric> = fabric.clone();
                let inner: Arc<dyn CkptTransport> = Arc::new(MemTransport::new());
                let service = NetTransport::serve(dyn_fabric.clone(), 0, inner.clone());
                // Wait for the client to finish, then stop the service.
                dyn_fabric.recv(0, 1, DONE_TAG).unwrap();
                service.stop();
                *out_ref = Some(root_check(&inner));
            });
            let client_ops = &client_ops;
            scope.spawn(move || {
                let mut cfg = NetConfig::new(1, 2, root);
                cfg.recv_timeout = Duration::from_secs(20);
                let fabric = TcpFabric::connect(&cfg).unwrap();
                let dyn_fabric: Arc<dyn Fabric> = fabric.clone();
                let transport = NetTransport::client(dyn_fabric.clone(), 1);
                client_ops(&transport);
                dyn_fabric.send(1, 0, DONE_TAG, Arc::new(Vec::new()));
            });
        });
        out.unwrap()
    }

    #[test]
    fn master_record_streams_to_root_and_back() {
        let payload: Vec<u8> = (0..2000u32).map(|i| (i * 13) as u8).collect();
        let p2 = payload.clone();
        two_rank(
            move |t| {
                assert_eq!(t.describe(), "net");
                assert_eq!(t.read_merged_master().unwrap(), None);
                assert_eq!(t.restart_count().unwrap(), None);
                t.put_master(
                    &meta(4, None, 2),
                    &[("G", FieldSource::Bytes(&p2))],
                    &mut Vec::new(),
                )
                .unwrap();
                // Root → rank streaming (the restart path).
                let snap = t.read_merged_master().unwrap().unwrap();
                assert_eq!(snap.count, 4);
                assert_eq!(snap.field("G").unwrap(), p2.as_slice());
                assert_eq!(t.restart_count().unwrap(), Some(4));
            },
            move |inner| {
                let snap = inner.read_merged_master().unwrap().unwrap();
                assert_eq!(snap.field("G").unwrap(), payload.as_slice());
            },
        );
    }

    #[test]
    fn shard_chain_with_deltas_merges_at_root() {
        two_rank(
            |t| {
                let base = vec![0u8; 64];
                t.put_shard(
                    &meta(10, Some(1), 2),
                    &[("G", FieldSource::Bytes(&base))],
                    &mut Vec::new(),
                )
                .unwrap();
                let dm = DeltaMeta {
                    mode_tag: "tcp2".into(),
                    count: 12,
                    base_count: 10,
                    seq: 1,
                    rank: Some(1),
                    nranks: 2,
                };
                let patch = vec![9u8; 8];
                let ranges: Vec<std::ops::Range<usize>> = std::iter::once(16..24).collect();
                t.put_shard_delta(
                    &dm,
                    &[(
                        "G",
                        DeltaSource::DirtyBytes {
                            full_len: 64,
                            ranges: &ranges,
                            payload: &patch,
                        },
                    )],
                    &mut Vec::new(),
                )
                .unwrap();
                let merged = t.read_merged_shard(1).unwrap().unwrap();
                assert_eq!(merged.count, 12);
                assert_eq!(&merged.field("G").unwrap()[16..24], &[9u8; 8]);
                assert_eq!(&merged.field("G").unwrap()[0..16], &[0u8; 16]);
                // GC round trip.
                t.clear_deltas(Some(1)).unwrap();
                assert_eq!(t.read_merged_shard(1).unwrap().unwrap().count, 10);
                t.clear_all_deltas().unwrap();
            },
            |inner| {
                assert_eq!(inner.read_merged_shard(1).unwrap().unwrap().count, 10);
            },
        );
    }

    #[test]
    fn service_reports_errors_without_dying() {
        two_rank(
            |t| {
                // A bogus opcode must come back as an error, and the
                // service must keep answering afterwards.
                let err = t.rpc(vec![0xEE]).unwrap_err();
                assert!(err.to_string().contains("opcode"), "{err}");
                assert_eq!(t.restart_count().unwrap(), None);
            },
            |_| (),
        );
    }
}
