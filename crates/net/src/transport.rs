//! `NetTransport`: streaming checkpoint records over the fabric.
//!
//! In a real multi-process job the ranks no longer share an address space
//! — and often no disk. This module keeps the checkpoint layer's
//! [`CkptTransport`] seam intact across that boundary, and it does so
//! **streaming end-to-end**: no hop on the rank → root path (and none on
//! the root → rank restore path) ever buffers a whole record.
//!
//! * every **non-root** rank persists through a [`NetTransport`] *client*:
//!   `put_*` drives the shared golden [`SnapshotWriter`] directly into a
//!   `StreamTx` sink, which cuts the encoded bytes into ~4 MiB chunk
//!   frames as they are produced — a gigabyte-scale record costs the
//!   client one chunk buffer, not a record-sized staging `Vec`;
//! * the **root** runs a [`CkptService`]: a dispatcher thread that routes
//!   each rank's requests to a dedicated per-rank *lane* thread, so four
//!   ranks checkpointing concurrently stream through four independent
//!   pipelines. A lane feeds arriving chunks straight into the durable
//!   transport's [`RawRecordSink`] (`CkptTransport::begin_raw`) while one
//!   running [`TrailingCrc`] pass verifies the record's own CRC — the
//!   same bytes, one verification, no decode → re-encode round trip;
//! * reads stream the merged record back root → rank through
//!   `CkptTransport::write_merged_record` and the same chunk protocol
//!   (the restart and reshape path).
//!
//! Because the record bytes are produced by the same encoder on every
//! rank, a shard streamed over TCP is byte-identical to the file a local
//! save of the same state would have produced — state migrates between
//! processes without any re-serialisation layer. This is also the
//! rank-state **migration** primitive measured by the loopback bench.
//!
//! ## Stream protocol
//!
//! A `put` is one `REQ_TAG` *begin* request (`[op][stream id][rank][seq]
//! [length hint]`) followed by chunk frames on the stream's own data tag.
//! Every chunk frame carries a one-byte marker prefix: `CH_DATA` bytes,
//! `CH_END` record complete, `CH_ABORT` sender failed mid-record
//! (message follows). The receiver grants flow-control *credits* — the
//! cumulative count of chunks it has consumed — on the stream's credit
//! tag, one per `CREDIT_BATCH` chunks plus a final credit at stream
//! end; the sender keeps at most `STREAM_WINDOW` chunks in flight, so
//! per-stream buffering is bounded on both sides regardless of record
//! size. The service answers a put with a fixed nine-byte
//! `[status][bytes written]` response once the record is committed (or
//! discarded). A `get` streams the same chunk protocol in the other
//! direction, with `CH_ABSENT` standing in for "no record".
//!
//! Data chunks ride on raw-payload frames ([`TAG_RAW_PAYLOAD_BIT`]): the
//! frame-level CRC covers the tag and the marker byte only, because the
//! record bytes are already protected end-to-end by the record's own
//! trailing CRC — one checksum pass per byte on each side, not two.
//!
//! ## Failure containment
//!
//! A lane in trouble must never wedge its peer: if the durable sink fails
//! mid-stream, the lane keeps receiving and crediting (discarding the
//! bytes) until the stream ends, then reports the failure in the
//! response. A CRC mismatch or a client abort discards the partial
//! record through [`RawRecordSink::abort`] — the previously installed
//! record for that chain is untouched. A client that dies mid-stream
//! takes only its own lane down; the other ranks' pipelines keep
//! flowing.
//!
//! ## Tag space
//!
//! Checkpoint frames run under [`CKPT_TAG_BIT`] (bit 62). User messages
//! carry bit 63 and collective tags stay far below bit 62, so checkpoint
//! traffic can never cross-match either. Stream frames additionally
//! carry a per-stream 32-bit id (drawn from a process-wide counter) in
//! the tag's low bits, so a stale frame from an aborted stream can never
//! be mistaken for part of a later one.

use std::collections::HashMap;
use std::io::{self, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};

use ppar_ckpt::delta::DeltaMeta;
use ppar_ckpt::store::{DeltaSource, FieldSource, Snapshot, SnapshotMeta, SnapshotWriter};
use ppar_ckpt::transport::{CkptTransport, RawRecordKind, RawRecordSink};
use ppar_ckpt::{ChunkDigest, ChunkRef, PutStats, TrailingCrc};
use ppar_core::error::{PparError, Result};
use ppar_core::shared::DIRTY_CHUNK_BYTES;

use crate::fabric::{Fabric, Payload};
use crate::frame::{max_frame_payload, TAG_RAW_PAYLOAD_BIT};

/// Tag-space bit reserved for checkpoint service frames.
pub const CKPT_TAG_BIT: u64 = 1 << 62;
/// Requests rank → root.
const REQ_TAG: u64 = CKPT_TAG_BIT | 0x10;
/// Responses root → rank.
const RSP_TAG: u64 = CKPT_TAG_BIT | 0x11;

/// Wire sentinel for "master chain" where a rank number is expected.
const MASTER_SENTINEL: u32 = 0xFFFF_FFFF;

// Request opcodes.
const OP_PUT_MASTER: u8 = 1;
const OP_PUT_SHARD: u8 = 2;
const OP_PUT_MASTER_DELTA: u8 = 3;
const OP_PUT_SHARD_DELTA: u8 = 4;
const OP_GET_MASTER: u8 = 5;
const OP_GET_SHARD: u8 = 6;
const OP_RESTART_COUNT: u8 = 7;
const OP_CLEAR_DELTAS: u8 = 8;
const OP_CLEAR_ALL_DELTAS: u8 = 9;
const OP_STOP: u8 = 10;
/// Count-pinned shard read (the recovery path): the reply must hold the
/// shard exactly at the requested safe point, or fail — never a newer
/// (torn) or older generation.
const OP_GET_SHARD_AT: u8 = 11;
/// Digest-negotiated full-snapshot put: the client announces the record's
/// chunk digests first; the service answers with the indices its store
/// lacks, and only those chunks ride the wire. Falls back to the plain
/// streamed put when the root's durable transport has no
/// content-addressed store behind it.
const OP_PUT_DEDUP: u8 = 12;

// Response status bytes.
const ST_OK: u8 = 0;
const ST_ERR: u8 = 1;
/// Answer to [`OP_PUT_DEDUP`] when the root's durable transport cannot
/// install by digest (flat store): the client re-sends as a plain put and
/// caches the answer so later snapshots skip the probe.
const ST_NODEDUP: u8 = 2;

/// Bytes per dedup-negotiated chunk. Matches the store's default chunk
/// size ([`DIRTY_CHUNK_BYTES`]) so wire-installed records share chunk
/// identities with locally written ones — dedup works across ranks *and*
/// across transports.
const DEDUP_CHUNK: usize = DIRTY_CHUNK_BYTES;
/// Bytes of one dedup digest-table entry on the wire (digest + length).
const DEDUP_ENTRY: usize = 20;

// Stream-frame kinds, encoded at bits 40..48 of the tag (alongside the
// stream id in bits 0..32). Data kinds ride raw-payload frames.
const KIND_DATA: u64 = 1;
const KIND_CREDIT: u64 = 2;
const KIND_RDATA: u64 = 3;
const KIND_RCREDIT: u64 = 4;

// Chunk-frame marker prefixes (first payload byte of every stream frame).
const CH_DATA: u8 = 0;
const CH_END: u8 = 1;
const CH_ABORT: u8 = 2;
const CH_ABSENT: u8 = 3;

/// Record bytes per chunk frame (capped below the configured frame bound).
/// 4 MiB quarters the per-chunk fixed costs (frame headers, mailbox
/// handoffs, thread wakeups) relative to 1 MiB; with the 8-chunk window
/// that bounds per-stream buffering at 32 MiB a side.
const STREAM_CHUNK: usize = 4 << 20;
/// Chunks in flight before the sender blocks on credits: bounds each
/// stream's buffering to `STREAM_WINDOW × STREAM_CHUNK` on either side.
const STREAM_WINDOW: u64 = 8;
/// Receivers acknowledge every `CREDIT_BATCH`th chunk (plus a final credit
/// at stream end) instead of every chunk, quartering credit-frame traffic.
/// Must stay below [`STREAM_WINDOW`] or the sender's window would wedge.
const CREDIT_BATCH: u64 = 4;
/// Receive-side CRC+copy interleave block: each chunk is fed to the
/// checksum and the sink in cache-resident blocks so the copy re-reads
/// what the CRC just pulled into L2 instead of sweeping DRAM twice.
const CRC_SINK_BLOCK: usize = 256 << 10;

/// Process-wide stream-id source; ids are unique per process far beyond
/// any plausible overlap window.
static NEXT_STREAM_ID: AtomicU64 = AtomicU64::new(1);

fn next_stream_id() -> u32 {
    NEXT_STREAM_ID.fetch_add(1, Ordering::Relaxed) as u32
}

/// The tag of one stream-frame kind for stream `id`. Data kinds set
/// [`TAG_RAW_PAYLOAD_BIT`] — their bulk bytes are covered by the record's
/// own trailing CRC, so the frame layer checks only tag + marker byte.
fn stream_tag(kind: u64, id: u32) -> u64 {
    let raw = if kind == KIND_DATA || kind == KIND_RDATA {
        TAG_RAW_PAYLOAD_BIT
    } else {
        0
    };
    CKPT_TAG_BIT | raw | (kind << 40) | id as u64
}

/// Record bytes carried per chunk: the 4 MiB default, shrunk when
/// `PPAR_NET_MAX_FRAME` configures a smaller frame bound (the marker byte
/// must still fit).
fn chunk_capacity() -> usize {
    STREAM_CHUNK.min(max_frame_payload().saturating_sub(1))
}

// ---------------------------------------------------------------------------
// chunked stream sender (both directions)
// ---------------------------------------------------------------------------

/// The sending half of one chunk stream: an [`io::Write`] sink that cuts
/// whatever is written into marker-prefixed chunk frames, blocking on the
/// receiver's credits once [`STREAM_WINDOW`] chunks are unacknowledged.
/// The client drives [`SnapshotWriter`] into one of these; the service's
/// get path drives `CkptTransport::write_merged_record` into one.
struct StreamTx<'a> {
    fabric: &'a dyn Fabric,
    me: usize,
    peer: usize,
    data_tag: u64,
    credit_tag: u64,
    /// Pending chunk; always starts with a [`CH_DATA`] marker byte.
    buf: Vec<u8>,
    cap: usize,
    sent: u64,
    acked: u64,
}

impl<'a> StreamTx<'a> {
    fn new(fabric: &'a dyn Fabric, me: usize, peer: usize, id: u32, kind: u64) -> StreamTx<'a> {
        let credit_kind = if kind == KIND_DATA {
            KIND_CREDIT
        } else {
            KIND_RCREDIT
        };
        let cap = 1 + chunk_capacity();
        let mut buf = Vec::with_capacity(cap);
        buf.push(CH_DATA);
        StreamTx {
            fabric,
            me,
            peer,
            data_tag: stream_tag(kind, id),
            credit_tag: stream_tag(credit_kind, id),
            buf,
            cap,
            sent: 0,
            acked: 0,
        }
    }

    /// Absorb one cumulative-consumed-count credit from the receiver.
    fn recv_credit(&mut self) -> Result<()> {
        let p = self.fabric.recv(self.me, self.peer, self.credit_tag)?;
        let acked = p
            .get(0..8)
            .map(|b| u64::from_le_bytes(b.try_into().expect("8-byte credit")))
            .ok_or_else(|| PparError::Network("malformed checkpoint stream credit".into()))?;
        self.acked = self.acked.max(acked);
        Ok(())
    }

    /// Ship the pending chunk (no-op when empty), waiting for window
    /// room first.
    fn flush_chunk(&mut self) -> Result<()> {
        if self.buf.len() <= 1 {
            return Ok(());
        }
        // Chaos site: a rank dying between checkpoint chunks is the
        // hardest torn-write case the recovery ladder must survive.
        crate::chaos::kill_point("ckpt-stream");
        while self.sent - self.acked >= STREAM_WINDOW {
            self.recv_credit()?;
        }
        let chunk = std::mem::replace(&mut self.buf, {
            let mut next = Vec::with_capacity(self.cap);
            next.push(CH_DATA);
            next
        });
        self.fabric
            .send(self.me, self.peer, self.data_tag, Arc::new(chunk));
        self.sent += 1;
        Ok(())
    }

    fn send_marker(&self, marker: u8, msg: &[u8]) {
        let mut p = Vec::with_capacity(1 + msg.len());
        p.push(marker);
        p.extend_from_slice(msg);
        self.fabric
            .send(self.me, self.peer, self.data_tag, Arc::new(p));
    }

    /// Flush the tail and mark the record complete.
    fn finish(&mut self) -> Result<()> {
        self.flush_chunk()?;
        self.send_marker(CH_END, &[]);
        Ok(())
    }

    /// Tell the receiver to discard the partial record.
    fn abort(&mut self, msg: &str) {
        self.send_marker(CH_ABORT, msg.as_bytes());
    }

    /// Block until the receiver has credited every sent chunk, so no
    /// credit frame of this (finished) stream is left behind in the
    /// mailbox. Terminates because the receiver counts every chunk —
    /// even ones it is discarding after a failure — and flushes a final
    /// credit at every stream end.
    fn wait_drained(&mut self) -> Result<()> {
        while self.acked < self.sent {
            self.recv_credit()?;
        }
        Ok(())
    }
}

impl Write for StreamTx<'_> {
    fn write(&mut self, bytes: &[u8]) -> io::Result<usize> {
        if bytes.is_empty() {
            return Ok(0);
        }
        let room = self.cap - self.buf.len();
        let take = bytes.len().min(room);
        self.buf.extend_from_slice(&bytes[..take]);
        if self.buf.len() == self.cap {
            self.flush_chunk().map_err(io::Error::other)?;
        }
        Ok(take)
    }

    /// Chunk boundaries are this sink's own business — the encoder's
    /// flushes must not force short frames.
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// The receiving half of one chunk stream, shared by the service's put
/// lanes and the client's get path: receives chunk frames, feeds each
/// chunk to `on_chunk`, credits it, and returns how the stream ended.
/// `on_chunk` must stay infallible-at-this-layer: a consumer that can no
/// longer use the bytes keeps accepting (and the caller keeps crediting)
/// so the sender's window never wedges.
enum StreamEnd {
    /// [`CH_END`]: record complete (verify the CRC next).
    Complete,
    /// [`CH_ABSENT`]: the service has no record for the request.
    Absent,
    /// [`CH_ABORT`]: the sender gave up; its message.
    Aborted(String),
}

fn recv_stream(
    fabric: &dyn Fabric,
    me: usize,
    peer: usize,
    id: u32,
    kind: u64,
    mut on_chunk: impl FnMut(&[u8]),
) -> Result<StreamEnd> {
    let credit_kind = if kind == KIND_DATA {
        KIND_CREDIT
    } else {
        KIND_RCREDIT
    };
    let data_tag = stream_tag(kind, id);
    let credit_tag = stream_tag(credit_kind, id);
    let mut consumed: u64 = 0;
    let mut credited: u64 = 0;
    let send_credit = |consumed: u64| {
        fabric.send(
            me,
            peer,
            credit_tag,
            Arc::new(consumed.to_le_bytes().to_vec()),
        );
    };
    // Every terminal marker flushes a final credit so the sender's
    // `wait_drained` (acked == sent) always terminates.
    loop {
        let payload = fabric.recv(me, peer, data_tag)?;
        let end = match payload.first() {
            Some(&CH_DATA) => {
                on_chunk(&payload[1..]);
                consumed += 1;
                if consumed - credited >= CREDIT_BATCH {
                    credited = consumed;
                    send_credit(consumed);
                }
                continue;
            }
            Some(&CH_END) => StreamEnd::Complete,
            Some(&CH_ABSENT) => StreamEnd::Absent,
            Some(&CH_ABORT) => {
                StreamEnd::Aborted(String::from_utf8_lossy(&payload[1..]).into_owned())
            }
            _ => {
                return Err(PparError::Network(
                    "malformed checkpoint stream frame".into(),
                ))
            }
        };
        if consumed > credited {
            send_credit(consumed);
        }
        return Ok(end);
    }
}

// ---------------------------------------------------------------------------
// client
// ---------------------------------------------------------------------------

/// Client half: a [`CkptTransport`] whose durable medium lives on the root
/// rank, reached over the fabric. One per non-root rank process.
pub struct NetTransport {
    fabric: Arc<dyn Fabric>,
    rank: usize,
    root: usize,
    /// Digest negotiation enabled (`PPAR_NET_DEDUP` ≠ `0`).
    dedup_enabled: bool,
    /// Whether the root's durable transport accepted the last dedup
    /// negotiation; flipped off on [`ST_NODEDUP`] so a flat-store root
    /// costs one probe per job, not one per snapshot.
    dedup_supported: AtomicBool,
    /// Client-side wire-dedup counters, drained by
    /// [`CkptTransport::take_put_stats`].
    stats: Mutex<PutStats>,
}

impl NetTransport {
    /// A client for `rank`, persisting through the service on rank 0.
    pub fn client(fabric: Arc<dyn Fabric>, rank: usize) -> NetTransport {
        assert!(rank < fabric.nranks(), "rank out of range");
        NetTransport {
            fabric,
            rank,
            root: 0,
            dedup_enabled: std::env::var("PPAR_NET_DEDUP").map_or(true, |v| v != "0"),
            dedup_supported: AtomicBool::new(true),
            stats: Mutex::new(PutStats::default()),
        }
    }

    /// Receive and status-check one service response.
    fn recv_response(&self) -> Result<Payload> {
        let rsp = self.fabric.recv(self.rank, self.root, RSP_TAG)?;
        match rsp.first() {
            Some(&ST_OK) => Ok(rsp),
            Some(&ST_ERR) => Err(PparError::Network(format!(
                "checkpoint service on rank {}: {}",
                self.root,
                String::from_utf8_lossy(&rsp[1..])
            ))),
            _ => Err(PparError::Network("empty checkpoint response".into())),
        }
    }

    /// One request/response round trip (control operations). Checkpoint
    /// operations are issued serially per rank (they run at quiesced safe
    /// points), so the single response tag cannot interleave.
    fn rpc(&self, req: Vec<u8>) -> Result<Payload> {
        self.fabric
            .send(self.rank, self.root, REQ_TAG, Arc::new(req));
        self.recv_response()
    }

    /// The record length announced in a put's begin request — lets the
    /// service pre-size its durable sink. A hint only, never a bound.
    fn reserve_hint(fields: &[(&str, FieldSource<'_>)]) -> usize {
        fields
            .iter()
            .map(|(name, source)| {
                let body = match source {
                    FieldSource::Bytes(b) => b.len(),
                    FieldSource::Cell(cell) => cell.known_byte_len().unwrap_or(0),
                };
                name.len() + 16 + body
            })
            .sum::<usize>()
            + 128
    }

    /// [`NetTransport::reserve_hint`] for delta records: sparse entries
    /// contribute their range map + carried bytes, full entries their
    /// whole body.
    fn delta_reserve_hint(fields: &[(&str, DeltaSource<'_>)]) -> usize {
        fields
            .iter()
            .map(|(name, source)| {
                let body = match source {
                    DeltaSource::Full(FieldSource::Bytes(b)) => b.len(),
                    DeltaSource::Full(FieldSource::Cell(cell)) => {
                        cell.known_byte_len().unwrap_or(0)
                    }
                    DeltaSource::DirtyCell { ranges, .. } => {
                        ranges.iter().map(|r| r.len()).sum::<usize>() + ranges.len() * 16
                    }
                    DeltaSource::DirtyBytes {
                        ranges, payload, ..
                    } => payload.len() + ranges.len() * 16,
                };
                name.len() + 32 + body
            })
            .sum::<usize>()
            + 128
    }

    /// Send a put's begin request and stream the record `encode` produces
    /// into chunk frames; on an encode failure the service is told to
    /// discard the partial record and its (error) response is consumed,
    /// keeping the response channel aligned for the next operation.
    fn stream_put(
        &self,
        op: u8,
        rank_wire: u32,
        seq: u32,
        len_hint: u64,
        encode: impl FnOnce(&mut StreamTx<'_>) -> Result<u64>,
    ) -> Result<u64> {
        let id = next_stream_id();
        let mut req = Vec::with_capacity(21);
        req.push(op);
        req.extend_from_slice(&id.to_le_bytes());
        req.extend_from_slice(&rank_wire.to_le_bytes());
        req.extend_from_slice(&seq.to_le_bytes());
        req.extend_from_slice(&len_hint.to_le_bytes());
        self.fabric
            .send(self.rank, self.root, REQ_TAG, Arc::new(req));
        let mut tx = StreamTx::new(self.fabric.as_ref(), self.rank, self.root, id, KIND_DATA);
        let written = match encode(&mut tx).and_then(|w| {
            tx.finish()?;
            Ok(w)
        }) {
            Ok(written) => written,
            Err(e) => {
                tx.abort(&e.to_string());
                let _ = self.recv_response();
                let _ = tx.wait_drained();
                return Err(e);
            }
        };
        // The response follows the service's last credit on the same
        // ordered channel, so draining after it never blocks for long.
        let rsp = self.recv_response();
        tx.wait_drained()?;
        rsp?;
        Ok(written)
    }

    /// Negotiate a full-snapshot put by chunk digest: send the record's
    /// digest table, receive the indices the root's store is missing, and
    /// stream only those chunks. `Ok(None)` means the negotiation is
    /// unavailable (root on a flat store, or the digest table itself
    /// would not fit a frame) — the caller falls back to the plain
    /// streamed put.
    fn put_dedup(&self, op: u8, rank_wire: u32, record: &[u8]) -> Result<Option<u64>> {
        let n = record.len().div_ceil(DEDUP_CHUNK);
        let id = next_stream_id();
        let req_len = 21 + 4 + n * DEDUP_ENTRY;
        if req_len > chunk_capacity() {
            // Digest table larger than a frame: a record this large gains
            // little from saving one round's chunks anyway.
            return Ok(None);
        }
        let mut req = Vec::with_capacity(req_len);
        req.push(op);
        req.extend_from_slice(&id.to_le_bytes());
        req.extend_from_slice(&rank_wire.to_le_bytes());
        req.extend_from_slice(&0u32.to_le_bytes()); // seq (unused: full puts)
        req.extend_from_slice(&(record.len() as u64).to_le_bytes());
        req.extend_from_slice(&(n as u32).to_le_bytes());
        for chunk in record.chunks(DEDUP_CHUNK) {
            req.extend_from_slice(&ChunkDigest::of(chunk).0);
            req.extend_from_slice(&(chunk.len() as u32).to_le_bytes());
        }
        self.fabric
            .send(self.rank, self.root, REQ_TAG, Arc::new(req));
        let rsp = self.fabric.recv(self.rank, self.root, RSP_TAG)?;
        let missing: Vec<u32> = match rsp.first() {
            Some(&ST_NODEDUP) => {
                self.dedup_supported.store(false, Ordering::Relaxed);
                return Ok(None);
            }
            Some(&ST_ERR) => {
                return Err(PparError::Network(format!(
                    "checkpoint service on rank {}: {}",
                    self.root,
                    String::from_utf8_lossy(&rsp[1..])
                )))
            }
            Some(&ST_OK) => {
                let count = rsp
                    .get(1..5)
                    .map(|b| u32::from_le_bytes(b.try_into().expect("4-byte count")) as usize)
                    .ok_or_else(|| PparError::Network("malformed dedup response".into()))?;
                let idx = rsp
                    .get(5..5 + 4 * count)
                    .ok_or_else(|| PparError::Network("malformed dedup response".into()))?;
                idx.chunks_exact(4)
                    .map(|b| u32::from_le_bytes(b.try_into().expect("4-byte index")))
                    .collect()
            }
            _ => return Err(PparError::Network("empty checkpoint response".into())),
        };
        // Stream the missing chunks (possibly none) back to back; the
        // service re-slices by the lengths it already holds.
        let mut tx = StreamTx::new(self.fabric.as_ref(), self.rank, self.root, id, KIND_DATA);
        let sent = missing.iter().try_for_each(|&mi| {
            let start = mi as usize * DEDUP_CHUNK;
            let chunk = record
                .get(start..record.len().min(start + DEDUP_CHUNK))
                .ok_or_else(|| PparError::Network("dedup index out of range".into()))?;
            tx.write_all(chunk)
                .map_err(|e| PparError::Network(e.to_string()))
        });
        let finished = sent.and_then(|()| tx.finish());
        if let Err(e) = finished {
            tx.abort(&e.to_string());
            let _ = self.recv_response();
            let _ = tx.wait_drained();
            return Err(e);
        }
        let rsp = self.recv_response();
        tx.wait_drained()?;
        rsp?;
        self.stats.lock().expect("stats lock").wire_chunks_skipped += (n - missing.len()) as u64;
        Ok(Some(record.len() as u64))
    }

    fn put_full(
        &self,
        op: u8,
        meta: &SnapshotMeta,
        fields: &[(&str, FieldSource<'_>)],
        scratch: &mut Vec<u8>,
    ) -> Result<u64> {
        let rank_wire = if op == OP_PUT_SHARD {
            meta.rank
                .ok_or_else(|| PparError::InvalidPlan("shard snapshot without a rank".into()))?
        } else {
            MASTER_SENTINEL
        };
        if self.dedup_enabled && self.dedup_supported.load(Ordering::Relaxed) {
            // Dedup negotiation needs the digest table up front, so the
            // record is encoded into a buffer first — the one path that
            // trades a record-sized staging `Vec` for shipping only the
            // chunks the root doesn't already hold.
            let mut buf = Vec::new();
            let mut w = SnapshotWriter::new(&mut buf, meta, fields.len() as u32)?;
            for (name, source) in fields {
                w.field(name, source, scratch)?;
            }
            let (written, _) = w.finish()?;
            if let Some(total) = self.put_dedup(OP_PUT_DEDUP, rank_wire, &buf)? {
                debug_assert_eq!(total, written);
                return Ok(written);
            }
            // Root can't dedup: the record is already encoded, stream it
            // through the plain put path verbatim.
            return self.stream_put(op, rank_wire, 0, buf.len() as u64, |tx| {
                tx.write_all(&buf)
                    .map_err(|e| PparError::Network(e.to_string()))?;
                Ok(written)
            });
        }
        let hint = NetTransport::reserve_hint(fields) as u64;
        self.stream_put(op, rank_wire, 0, hint, |tx| {
            let mut w = SnapshotWriter::new(tx, meta, fields.len() as u32)?;
            for (name, source) in fields {
                w.field(name, source, scratch)?;
            }
            let (written, _) = w.finish()?;
            Ok(written)
        })
    }

    fn put_delta(
        &self,
        op: u8,
        meta: &DeltaMeta,
        fields: &[(&str, DeltaSource<'_>)],
        scratch: &mut Vec<u8>,
    ) -> Result<u64> {
        let rank_wire = if op == OP_PUT_SHARD_DELTA {
            meta.rank
                .ok_or_else(|| PparError::InvalidPlan("shard delta without a rank".into()))?
        } else {
            MASTER_SENTINEL
        };
        let hint = NetTransport::delta_reserve_hint(fields) as u64;
        self.stream_put(op, rank_wire, meta.seq, hint, |tx| {
            let mut w = SnapshotWriter::new_delta(tx, meta, fields.len() as u32)?;
            for (name, source) in fields {
                w.delta_field(name, source, scratch)?;
            }
            let (written, _) = w.finish()?;
            Ok(written)
        })
    }

    /// Request a merged record and receive it as a chunk stream, verifying
    /// the record's trailing CRC on the same pass that accumulates it.
    /// `at` pins the request to one safe point ([`OP_GET_SHARD_AT`]).
    fn get_snapshot(&self, op: u8, rank_wire: u32, at: Option<u64>) -> Result<Option<Snapshot>> {
        let id = next_stream_id();
        let mut req = Vec::with_capacity(17);
        req.push(op);
        req.extend_from_slice(&id.to_le_bytes());
        req.extend_from_slice(&rank_wire.to_le_bytes());
        if let Some(count) = at {
            req.extend_from_slice(&count.to_le_bytes());
        }
        self.fabric
            .send(self.rank, self.root, REQ_TAG, Arc::new(req));
        let mut buf = Vec::new();
        let mut crc = TrailingCrc::new();
        let end = recv_stream(
            self.fabric.as_ref(),
            self.rank,
            self.root,
            id,
            KIND_RDATA,
            |chunk| {
                for block in chunk.chunks(CRC_SINK_BLOCK) {
                    crc.update(block);
                    buf.extend_from_slice(block);
                }
            },
        )?;
        match end {
            StreamEnd::Complete => match crc.finish() {
                Some((_, stored, computed)) if stored == computed => {
                    // The wire pass just verified integrity; no second
                    // checksum sweep over the record.
                    let snap = Snapshot::decode_trusted(&buf)?;
                    if let Some(count) = at {
                        if snap.count != count {
                            return Err(PparError::CorruptCheckpoint(format!(
                                "service returned shard at safe point {} but the restore \
                                 targets {count}",
                                snap.count
                            )));
                        }
                    }
                    Ok(Some(snap))
                }
                _ => Err(PparError::CorruptCheckpoint(
                    "streamed restore record failed CRC verification".into(),
                )),
            },
            StreamEnd::Absent => Ok(None),
            StreamEnd::Aborted(msg) => Err(PparError::Network(format!(
                "checkpoint service on rank {}: {msg}",
                self.root
            ))),
        }
    }
}

impl CkptTransport for NetTransport {
    fn describe(&self) -> &'static str {
        "net"
    }

    fn put_master(
        &self,
        meta: &SnapshotMeta,
        fields: &[(&str, FieldSource<'_>)],
        scratch: &mut Vec<u8>,
    ) -> Result<u64> {
        self.put_full(OP_PUT_MASTER, meta, fields, scratch)
    }

    fn put_shard(
        &self,
        meta: &SnapshotMeta,
        fields: &[(&str, FieldSource<'_>)],
        scratch: &mut Vec<u8>,
    ) -> Result<u64> {
        self.put_full(OP_PUT_SHARD, meta, fields, scratch)
    }

    fn put_master_delta(
        &self,
        meta: &DeltaMeta,
        fields: &[(&str, DeltaSource<'_>)],
        scratch: &mut Vec<u8>,
    ) -> Result<u64> {
        self.put_delta(OP_PUT_MASTER_DELTA, meta, fields, scratch)
    }

    fn put_shard_delta(
        &self,
        meta: &DeltaMeta,
        fields: &[(&str, DeltaSource<'_>)],
        scratch: &mut Vec<u8>,
    ) -> Result<u64> {
        self.put_delta(OP_PUT_SHARD_DELTA, meta, fields, scratch)
    }

    fn read_merged_master(&self) -> Result<Option<Snapshot>> {
        self.get_snapshot(OP_GET_MASTER, MASTER_SENTINEL, None)
    }

    fn read_merged_shard(&self, rank: u32) -> Result<Option<Snapshot>> {
        self.get_snapshot(OP_GET_SHARD, rank, None)
    }

    fn read_shard_at(&self, rank: u32, count: u64) -> Result<Option<Snapshot>> {
        self.get_snapshot(OP_GET_SHARD_AT, rank, Some(count))
    }

    fn restart_count(&self) -> Result<Option<u64>> {
        let rsp = self.rpc(vec![OP_RESTART_COUNT])?;
        match rsp.get(1) {
            Some(1) if rsp.len() >= 10 => Ok(Some(u64::from_le_bytes(
                rsp[2..10].try_into().expect("8-byte count"),
            ))),
            Some(0) => Ok(None),
            _ => Err(PparError::Network(
                "malformed restart-count response from checkpoint service".into(),
            )),
        }
    }

    fn clear_deltas(&self, rank: Option<u32>) -> Result<()> {
        let mut req = vec![OP_CLEAR_DELTAS];
        req.extend_from_slice(&rank.unwrap_or(MASTER_SENTINEL).to_le_bytes());
        self.rpc(req).map(|_| ())
    }

    fn clear_all_deltas(&self) -> Result<()> {
        self.rpc(vec![OP_CLEAR_ALL_DELTAS]).map(|_| ())
    }

    fn take_put_stats(&self) -> PutStats {
        std::mem::take(&mut *self.stats.lock().expect("stats lock"))
    }
}

// ---------------------------------------------------------------------------
// service
// ---------------------------------------------------------------------------

/// Server half: the root's checkpoint service (a dispatcher thread plus
/// one lane thread per active client rank). Stop it with
/// [`CkptService::stop`] once the job completes (also attempted on drop).
pub struct CkptService {
    fabric: Arc<dyn Fabric>,
    rank: usize,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl NetTransport {
    /// Start the root-side service on `fabric` as `rank` (the root),
    /// forwarding every received record into `inner` — the job's actual
    /// durable transport.
    pub fn serve(
        fabric: Arc<dyn Fabric>,
        rank: usize,
        inner: Arc<dyn CkptTransport>,
    ) -> CkptService {
        let loop_fabric = fabric.clone();
        let handle = std::thread::Builder::new()
            .name(format!("ppar-ckpt-service-{rank}"))
            .spawn(move || service_loop(loop_fabric, rank, inner))
            .expect("spawn checkpoint service thread");
        CkptService {
            fabric,
            rank,
            handle: Some(handle),
        }
    }
}

impl CkptService {
    /// Ask the service loop to exit and join it.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.fabric
                .send(self.rank, self.rank, REQ_TAG, Arc::new(vec![OP_STOP]));
            let _ = handle.join();
        }
    }
}

impl Drop for CkptService {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

/// The dispatcher: routes each rank's requests to that rank's lane
/// thread, spawning lanes on first contact. Checkpoint operations are
/// serial *within* a rank but independent *across* ranks, so N ranks
/// saving concurrently stream through N parallel install pipelines.
fn service_loop(fabric: Arc<dyn Fabric>, rank: usize, inner: Arc<dyn CkptTransport>) {
    let mut lanes: HashMap<usize, mpsc::Sender<Payload>> = HashMap::new();
    let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    // recv_any fails only when every peer is down — at which point the
    // job is lost anyway and the root's own collectives will fail too.
    while let Ok((src, req)) = fabric.recv_any(rank, REQ_TAG) {
        // Shutdown is only ever self-addressed (from `CkptService::stop`);
        // a remote OP_STOP is answered as an unknown opcode by the lane.
        if src == rank && req.first() == Some(&OP_STOP) {
            break;
        }
        let lane = lanes.entry(src).or_insert_with(|| {
            let (tx, rx) = mpsc::channel();
            let lane_fabric = fabric.clone();
            let lane_inner = inner.clone();
            let handle = std::thread::Builder::new()
                .name(format!("ppar-ckpt-lane-{rank}-{src}"))
                .spawn(move || lane_loop(lane_fabric, rank, src, lane_inner, rx))
                .expect("spawn checkpoint lane thread");
            workers.push(handle);
            tx
        });
        // Fails only if the lane thread is gone (its peer died); the
        // request is from that same dead peer, so dropping it is safe.
        let _ = lane.send(req);
    }
    drop(lanes);
    for handle in workers {
        let _ = handle.join();
    }
}

/// One rank's install pipeline: requests arrive in order from the
/// dispatcher; puts and gets run their chunk streams directly against
/// the fabric (the dispatcher never blocks on a stream).
fn lane_loop(
    fabric: Arc<dyn Fabric>,
    root: usize,
    src: usize,
    inner: Arc<dyn CkptTransport>,
    rx: mpsc::Receiver<Payload>,
) {
    while let Ok(req) = rx.recv() {
        let op = req.first().copied().unwrap_or(0);
        let body = req.get(1..).unwrap_or(&[]);
        match op {
            OP_PUT_MASTER | OP_PUT_SHARD | OP_PUT_MASTER_DELTA | OP_PUT_SHARD_DELTA => {
                if !lane_put(&fabric, root, src, &inner, op, body) {
                    // The peer died mid-stream; nothing further from it
                    // can arrive. Park until shutdown closes the channel.
                    continue;
                }
            }
            OP_PUT_DEDUP => {
                if !lane_put_dedup(&fabric, root, src, &inner, body) {
                    continue;
                }
            }
            OP_GET_MASTER | OP_GET_SHARD | OP_GET_SHARD_AT => {
                lane_get(&fabric, root, src, &inner, op, body)
            }
            _ => {
                let rsp = match control_request(&inner, op, body) {
                    Ok(rsp) => rsp,
                    Err(e) => error_reply(&e),
                };
                fabric.send(root, src, RSP_TAG, Arc::new(rsp));
            }
        }
    }
}

/// Parse a put begin request: `(stream id, rank, seq, length hint)`.
fn parse_put_begin(body: &[u8]) -> Result<(u32, u32, u32, u64)> {
    Ok((
        read_u32(body)?,
        read_u32(body.get(4..).unwrap_or(&[]))?,
        read_u32(body.get(8..).unwrap_or(&[]))?,
        read_u64(body.get(12..).unwrap_or(&[]))?,
    ))
}

/// Receive one record stream into the durable transport's raw sink,
/// verifying the record's trailing CRC on the same pass that installs
/// it, then answer with the fixed nine-byte `[status][written]` reply.
/// Returns `false` when the peer died mid-stream (no reply possible).
fn lane_put(
    fabric: &Arc<dyn Fabric>,
    root: usize,
    src: usize,
    inner: &Arc<dyn CkptTransport>,
    op: u8,
    body: &[u8],
) -> bool {
    let (id, rank_raw, seq, hint) = match parse_put_begin(body) {
        Ok(parsed) => parsed,
        Err(e) => {
            fabric.send(root, src, RSP_TAG, Arc::new(error_reply(&e)));
            return true;
        }
    };
    let kind = match op {
        OP_PUT_MASTER => RawRecordKind::Master,
        OP_PUT_SHARD => RawRecordKind::Shard(rank_raw),
        OP_PUT_MASTER_DELTA => RawRecordKind::MasterDelta { seq },
        _ => RawRecordKind::ShardDelta {
            rank: rank_raw,
            seq,
        },
    };
    // A sink failure must not wedge the sender's credit window: on error
    // the lane flips to discard mode — it keeps receiving and crediting
    // chunks, and reports the saved failure once the stream ends.
    let mut sink: Option<Box<dyn RawRecordSink + '_>> = None;
    let mut failure: Option<PparError> = None;
    match inner.begin_raw(kind, hint) {
        Ok(s) => sink = Some(s),
        Err(e) => failure = Some(e),
    }
    let mut crc = TrailingCrc::new();
    let end = recv_stream(fabric.as_ref(), root, src, id, KIND_DATA, |chunk| {
        for block in chunk.chunks(CRC_SINK_BLOCK) {
            crc.update(block);
            if failure.is_none() {
                if let Err(e) = sink.as_mut().expect("live sink").write_chunk(block) {
                    sink.take().expect("live sink").abort();
                    failure = Some(e);
                }
            }
        }
    });
    let result: Result<u64> = match (end, failure) {
        (Err(_), _) => {
            // Peer down mid-stream: discard and park — there is nobody
            // left to answer, and a partial record must never install.
            if let Some(s) = sink.take() {
                s.abort();
            }
            return false;
        }
        (Ok(StreamEnd::Complete), None) => match crc.finish() {
            Some((_, stored, computed)) if stored == computed => {
                sink.take().expect("live sink").commit()
            }
            _ => {
                sink.take().expect("live sink").abort();
                Err(PparError::CorruptCheckpoint(
                    "streamed record failed CRC verification".into(),
                ))
            }
        },
        (Ok(StreamEnd::Complete), Some(e)) => Err(e),
        (Ok(StreamEnd::Aborted(msg)), _) => {
            if let Some(s) = sink.take() {
                s.abort();
            }
            Err(PparError::Network(format!("client aborted record: {msg}")))
        }
        (Ok(StreamEnd::Absent), _) => {
            if let Some(s) = sink.take() {
                s.abort();
            }
            Err(PparError::Network(
                "malformed checkpoint stream frame".into(),
            ))
        }
    };
    let rsp = match result {
        Ok(written) => {
            // Fixed-size success reply — the old per-put response `Vec`
            // churn (`written.to_le_bytes().to_vec()` + status insert) is
            // a single exact-size allocation now.
            let mut out = Vec::with_capacity(9);
            out.push(ST_OK);
            out.extend_from_slice(&written.to_le_bytes());
            out
        }
        Err(e) => error_reply(&e),
    };
    fabric.send(root, src, RSP_TAG, Arc::new(rsp));
    true
}

/// Serve one digest-negotiated put: answer the client's digest table with
/// the indices the durable store is missing, re-slice the arriving chunk
/// stream by the announced lengths, and install through
/// [`CkptTransport::begin_raw_dedup`]. Integrity on this path rides the
/// per-chunk digests (verified by the store at supply time) instead of
/// the record's trailing CRC — the record CRC is still verified whenever
/// the record is read back. Returns `false` when the peer died
/// mid-stream.
fn lane_put_dedup(
    fabric: &Arc<dyn Fabric>,
    root: usize,
    src: usize,
    inner: &Arc<dyn CkptTransport>,
    body: &[u8],
) -> bool {
    let reply = |rsp: Vec<u8>| fabric.send(root, src, RSP_TAG, Arc::new(rsp));
    let parsed = parse_put_begin(body).and_then(|(id, rank_raw, _seq, total)| {
        let n = read_u32(body.get(20..).unwrap_or(&[]))? as usize;
        let table = body
            .get(24..24 + n * DEDUP_ENTRY)
            .ok_or_else(|| PparError::Network("truncated dedup digest table".into()))?;
        let refs: Vec<ChunkRef> = table
            .chunks_exact(DEDUP_ENTRY)
            .map(|e| ChunkRef {
                digest: ChunkDigest(e[..16].try_into().expect("16-byte digest")),
                len: u32::from_le_bytes(e[16..].try_into().expect("4-byte len")),
            })
            .collect();
        Ok((id, rank_raw, total, refs))
    });
    let (id, rank_raw, total, refs) = match parsed {
        Ok(parsed) => parsed,
        Err(e) => {
            reply(error_reply(&e));
            return true;
        }
    };
    let kind = if rank_raw == MASTER_SENTINEL {
        RawRecordKind::Master
    } else {
        RawRecordKind::Shard(rank_raw)
    };
    let mut sink = match inner.begin_raw_dedup(kind, &refs, total) {
        Ok(Some(sink)) => sink,
        Ok(None) => {
            reply(vec![ST_NODEDUP]);
            return true;
        }
        Err(e) => {
            reply(error_reply(&e));
            return true;
        }
    };
    let missing: Vec<u32> = sink.missing().to_vec();
    let mut rsp = Vec::with_capacity(5 + 4 * missing.len());
    rsp.push(ST_OK);
    rsp.extend_from_slice(&(missing.len() as u32).to_le_bytes());
    for &mi in &missing {
        rsp.extend_from_slice(&mi.to_le_bytes());
    }
    reply(rsp);

    // Re-slice the concatenated missing chunks out of the (much larger)
    // stream frames. A supply failure flips to discard mode — keep
    // crediting so the sender's window never wedges, report at the end.
    let mut failure: Option<PparError> = None;
    let mut pending: Vec<u8> = Vec::new();
    let mut next = 0usize;
    let end = recv_stream(fabric.as_ref(), root, src, id, KIND_DATA, |mut data| {
        while !data.is_empty() && failure.is_none() {
            let Some(&mi) = missing.get(next) else {
                failure = Some(PparError::Network(
                    "dedup stream carries more bytes than the missing set".into(),
                ));
                return;
            };
            let want = refs[mi as usize].len as usize;
            if pending.is_empty() && data.len() >= want {
                // Whole chunk in this frame: supply without a copy.
                if let Err(e) = sink.supply_chunk(&data[..want]) {
                    failure = Some(e);
                    return;
                }
                data = &data[want..];
                next += 1;
            } else {
                let take = (want - pending.len()).min(data.len());
                pending.extend_from_slice(&data[..take]);
                data = &data[take..];
                if pending.len() == want {
                    if let Err(e) = sink.supply_chunk(&pending) {
                        failure = Some(e);
                        return;
                    }
                    pending.clear();
                    next += 1;
                }
            }
        }
    });
    let result: Result<u64> = match (end, failure) {
        (Err(_), _) => {
            sink.abort();
            return false;
        }
        (Ok(StreamEnd::Complete), None) => {
            if next == missing.len() && pending.is_empty() {
                sink.commit()
            } else {
                sink.abort();
                Err(PparError::Network(
                    "dedup stream ended short of the missing set".into(),
                ))
            }
        }
        (Ok(StreamEnd::Complete), Some(e)) => {
            sink.abort();
            Err(e)
        }
        (Ok(StreamEnd::Aborted(msg)), _) => {
            sink.abort();
            Err(PparError::Network(format!("client aborted record: {msg}")))
        }
        (Ok(StreamEnd::Absent), _) => {
            sink.abort();
            Err(PparError::Network(
                "malformed checkpoint stream frame".into(),
            ))
        }
    };
    let rsp = match result {
        Ok(written) => {
            let mut out = Vec::with_capacity(9);
            out.push(ST_OK);
            out.extend_from_slice(&written.to_le_bytes());
            out
        }
        Err(e) => error_reply(&e),
    };
    reply(rsp);
    true
}

/// Stream the merged record for a get request back to the client,
/// straight from the durable transport (`write_merged_record` — the
/// in-memory and file stores copy through without re-encoding).
fn lane_get(
    fabric: &Arc<dyn Fabric>,
    root: usize,
    src: usize,
    inner: &Arc<dyn CkptTransport>,
    op: u8,
    body: &[u8],
) {
    let Ok(id) = read_u32(body) else {
        // Without a stream id there is no channel to answer on; only a
        // foreign client could send this, and its receive will time out.
        return;
    };
    let mut tx = StreamTx::new(fabric.as_ref(), root, src, id, KIND_RDATA);
    let outcome = read_u32(body.get(4..).unwrap_or(&[])).and_then(|rank_raw| {
        let rank = (rank_raw != MASTER_SENTINEL).then_some(rank_raw);
        if op == OP_GET_SHARD_AT {
            // Count-pinned read (rejoin restore): the reply must hold the
            // shard exactly at the requested safe point, or fail — never
            // a newer (torn) or older generation.
            let count = read_u64(body.get(8..).unwrap_or(&[]))?;
            inner.write_merged_record_at(rank, count, &mut tx)
        } else {
            inner.write_merged_record(rank, &mut tx)
        }
    });
    let finished = match outcome {
        Ok(Some(_)) => tx.finish().is_ok(),
        Ok(None) => {
            tx.send_marker(CH_ABSENT, &[]);
            true
        }
        Err(e) => {
            tx.abort(&e.to_string());
            true
        }
    };
    if finished {
        let _ = tx.wait_drained();
    }
}

/// Control-plane requests (no stream): the reply already carries its
/// status byte.
fn control_request(inner: &Arc<dyn CkptTransport>, op: u8, body: &[u8]) -> Result<Vec<u8>> {
    match op {
        OP_RESTART_COUNT => match inner.restart_count()? {
            Some(count) => {
                let mut out = Vec::with_capacity(10);
                out.push(ST_OK);
                out.push(1u8);
                out.extend_from_slice(&count.to_le_bytes());
                Ok(out)
            }
            None => Ok(vec![ST_OK, 0u8]),
        },
        OP_CLEAR_DELTAS => {
            let raw = read_u32(body)?;
            inner.clear_deltas((raw != MASTER_SENTINEL).then_some(raw))?;
            Ok(vec![ST_OK])
        }
        OP_CLEAR_ALL_DELTAS => {
            inner.clear_all_deltas()?;
            Ok(vec![ST_OK])
        }
        other => Err(PparError::Network(format!(
            "unknown checkpoint service opcode {other}"
        ))),
    }
}

fn error_reply(e: &PparError) -> Vec<u8> {
    let msg = e.to_string();
    let mut out = Vec::with_capacity(1 + msg.len());
    out.push(ST_ERR);
    out.extend_from_slice(msg.as_bytes());
    out
}

fn read_u32(body: &[u8]) -> Result<u32> {
    match body.get(0..4).and_then(|b| b.try_into().ok()) {
        Some(b) => Ok(u32::from_le_bytes(b)),
        None => Err(PparError::Network("truncated checkpoint request".into())),
    }
}

fn read_u64(body: &[u8]) -> Result<u64> {
    match body.get(0..8).and_then(|b| b.try_into().ok()) {
        Some(b) => Ok(u64::from_le_bytes(b)),
        None => Err(PparError::Network("truncated checkpoint request".into())),
    }
}

#[cfg(test)]
#[allow(clippy::single_range_in_vec_init)] // delta dirty ranges are span data
mod tests {
    use super::*;
    use crate::cluster::free_loopback_addr;
    use crate::tcp::{NetConfig, TcpFabric};
    use ppar_ckpt::MemTransport;
    use std::time::Duration;

    const DONE_TAG: u64 = (1 << 63) | 77;

    fn meta(count: u64, rank: Option<u32>, nranks: u32) -> SnapshotMeta {
        SnapshotMeta {
            mode_tag: "tcp2".into(),
            count,
            rank,
            nranks,
        }
    }

    /// Root runs the service + `root_check` after the client finishes;
    /// rank 1 runs `client_ops`. Returns what `root_check` produced.
    fn two_rank<R: Send>(
        client_ops: impl Fn(&NetTransport) + Sync,
        root_check: impl Fn(&MemTransport) -> R + Sync,
    ) -> R {
        let root = free_loopback_addr().unwrap();
        let mut out = None;
        std::thread::scope(|scope| {
            let root2 = root.clone();
            let out_ref = &mut out;
            let root_check = &root_check;
            scope.spawn(move || {
                let mut cfg = NetConfig::new(0, 2, root2);
                cfg.recv_timeout = Duration::from_secs(20);
                let fabric = TcpFabric::connect(&cfg).unwrap();
                let dyn_fabric: Arc<dyn Fabric> = fabric.clone();
                let inner = Arc::new(MemTransport::new());
                let service = NetTransport::serve(dyn_fabric.clone(), 0, inner.clone());
                // Wait for the client to finish, then stop the service.
                dyn_fabric.recv(0, 1, DONE_TAG).unwrap();
                service.stop();
                *out_ref = Some(root_check(&inner));
            });
            let client_ops = &client_ops;
            scope.spawn(move || {
                let mut cfg = NetConfig::new(1, 2, root);
                cfg.recv_timeout = Duration::from_secs(20);
                let fabric = TcpFabric::connect(&cfg).unwrap();
                let dyn_fabric: Arc<dyn Fabric> = fabric.clone();
                let transport = NetTransport::client(dyn_fabric.clone(), 1);
                client_ops(&transport);
                dyn_fabric.send(1, 0, DONE_TAG, Arc::new(Vec::new()));
            });
        });
        out.unwrap()
    }

    #[test]
    fn master_record_streams_to_root_and_back() {
        let payload: Vec<u8> = (0..2000u32).map(|i| (i * 13) as u8).collect();
        let p2 = payload.clone();
        two_rank(
            move |t| {
                assert_eq!(t.describe(), "net");
                assert_eq!(t.read_merged_master().unwrap(), None);
                assert_eq!(t.restart_count().unwrap(), None);
                t.put_master(
                    &meta(4, None, 2),
                    &[("G", FieldSource::Bytes(&p2))],
                    &mut Vec::new(),
                )
                .unwrap();
                // Root → rank streaming (the restart path).
                let snap = t.read_merged_master().unwrap().unwrap();
                assert_eq!(snap.count, 4);
                assert_eq!(snap.field("G").unwrap(), p2.as_slice());
                assert_eq!(t.restart_count().unwrap(), Some(4));
            },
            move |inner| {
                let snap = inner.read_merged_master().unwrap().unwrap();
                assert_eq!(snap.field("G").unwrap(), payload.as_slice());
            },
        );
    }

    #[test]
    fn shard_chain_with_deltas_merges_at_root() {
        two_rank(
            |t| {
                let base = vec![0u8; 64];
                t.put_shard(
                    &meta(10, Some(1), 2),
                    &[("G", FieldSource::Bytes(&base))],
                    &mut Vec::new(),
                )
                .unwrap();
                let dm = DeltaMeta {
                    mode_tag: "tcp2".into(),
                    count: 12,
                    base_count: 10,
                    seq: 1,
                    rank: Some(1),
                    nranks: 2,
                };
                let patch = vec![9u8; 8];
                let ranges: Vec<std::ops::Range<usize>> = std::iter::once(16..24).collect();
                t.put_shard_delta(
                    &dm,
                    &[(
                        "G",
                        DeltaSource::DirtyBytes {
                            full_len: 64,
                            ranges: &ranges,
                            payload: &patch,
                        },
                    )],
                    &mut Vec::new(),
                )
                .unwrap();
                let merged = t.read_merged_shard(1).unwrap().unwrap();
                assert_eq!(merged.count, 12);
                assert_eq!(&merged.field("G").unwrap()[16..24], &[9u8; 8]);
                assert_eq!(&merged.field("G").unwrap()[0..16], &[0u8; 16]);
                // GC round trip.
                t.clear_deltas(Some(1)).unwrap();
                assert_eq!(t.read_merged_shard(1).unwrap().unwrap().count, 10);
                t.clear_all_deltas().unwrap();
            },
            |inner| {
                assert_eq!(inner.read_merged_shard(1).unwrap().unwrap().count, 10);
            },
        );
    }

    #[test]
    fn service_reports_errors_without_dying() {
        two_rank(
            |t| {
                // A bogus opcode must come back as an error, and the
                // service must keep answering afterwards.
                let err = t.rpc(vec![0xEE]).unwrap_err();
                assert!(err.to_string().contains("opcode"), "{err}");
                assert_eq!(t.restart_count().unwrap(), None);
            },
            |_| (),
        );
    }

    /// A record larger than several chunk frames streams through intact
    /// and round-trips back (multi-chunk path in both directions).
    #[test]
    fn multi_chunk_record_roundtrips() {
        let len = 3 * STREAM_CHUNK + 4567;
        let payload: Vec<u8> = (0..len)
            .map(|i| (i as u32).wrapping_mul(2654435761) as u8)
            .collect();
        let p2 = payload.clone();
        two_rank(
            move |t| {
                t.put_master(
                    &meta(7, None, 2),
                    &[("big", FieldSource::Bytes(&p2))],
                    &mut Vec::new(),
                )
                .unwrap();
                let snap = t.read_merged_master().unwrap().unwrap();
                assert_eq!(snap.field("big").unwrap(), p2.as_slice());
            },
            move |inner| {
                assert_eq!(
                    inner
                        .read_merged_master()
                        .unwrap()
                        .unwrap()
                        .field("big")
                        .unwrap(),
                    payload.as_slice()
                );
            },
        );
    }

    /// A dedup-negotiated put against a content-addressed root ships only
    /// the chunks the root's store is missing: the second snapshot of a
    /// mostly unchanged state skips nearly every chunk on the wire, and
    /// the restore comes back byte-identical.
    #[test]
    fn dedup_put_ships_only_novel_chunks() {
        use ppar_ckpt::{CasConfig, CheckpointStore};
        let dir = std::env::temp_dir().join(format!("ppar_net_dedup_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let root_addr = free_loopback_addr().unwrap();
        std::thread::scope(|scope| {
            let addr = &root_addr;
            let dir2 = dir.clone();
            scope.spawn(move || {
                let mut cfg = NetConfig::new(0, 2, addr.clone());
                cfg.recv_timeout = Duration::from_secs(20);
                let fabric = TcpFabric::connect(&cfg).unwrap();
                let dyn_fabric: Arc<dyn Fabric> = fabric.clone();
                let store = CheckpointStore::new_cas_with(&dir2, CasConfig::default()).unwrap();
                let inner: Arc<dyn CkptTransport> = Arc::new(store);
                let service = NetTransport::serve(dyn_fabric.clone(), 0, inner);
                dyn_fabric.recv(0, 1, DONE_TAG).unwrap();
                service.stop();
            });
            scope.spawn(move || {
                let mut cfg = NetConfig::new(1, 2, addr.clone());
                cfg.recv_timeout = Duration::from_secs(20);
                let fabric = TcpFabric::connect(&cfg).unwrap();
                let dyn_fabric: Arc<dyn Fabric> = fabric.clone();
                let t = NetTransport::client(dyn_fabric.clone(), 1);

                // 32 store chunks of aperiodic payload.
                let mut payload: Vec<u8> = (0..32 * DEDUP_CHUNK)
                    .map(|i| (i ^ (i >> 8) ^ (i >> 16)) as u8)
                    .collect();
                t.put_master(
                    &meta(4, None, 2),
                    &[("G", FieldSource::Bytes(&payload))],
                    &mut Vec::new(),
                )
                .unwrap();
                // Empty store: nothing to skip.
                assert_eq!(t.take_put_stats().wire_chunks_skipped, 0);

                // Dirty one chunk, advance the safe point, save again:
                // only the header chunk, the dirtied chunk (straddling at
                // most two store chunks) and the CRC tail are novel.
                for b in &mut payload[5 * DEDUP_CHUNK..6 * DEDUP_CHUNK] {
                    *b ^= 0xFF;
                }
                let written = t
                    .put_master(
                        &meta(8, None, 2),
                        &[("G", FieldSource::Bytes(&payload))],
                        &mut Vec::new(),
                    )
                    .unwrap();
                let n_chunks = written.div_ceil(DEDUP_CHUNK as u64);
                let skipped = t.take_put_stats().wire_chunks_skipped;
                assert!(
                    skipped >= n_chunks - 5,
                    "expected ≥{} wire chunks skipped, got {skipped}",
                    n_chunks - 5
                );

                // Restore is byte-identical state.
                let snap = t.read_merged_master().unwrap().unwrap();
                assert_eq!(snap.count, 8);
                assert_eq!(snap.field("G").unwrap(), payload.as_slice());

                dyn_fabric.send(1, 0, DONE_TAG, Arc::new(Vec::new()));
            });
        });
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Satellite: a chunk corrupted in flight (after the frame layer —
    /// simulated by corrupting before sending, since raw frames leave
    /// bulk bytes to the record CRC) must be rejected by the service's
    /// streaming CRC check, install nothing, and leave the service
    /// serving.
    #[test]
    fn mid_stream_corruption_is_rejected_without_partial_install() {
        two_rank(
            |t| {
                // Encode a checksummed record with the golden writer, then
                // flip one byte in the middle.
                let payload = vec![0xA5u8; 40_000];
                let mut w = SnapshotWriter::new(Vec::new(), &meta(3, None, 2), 1).unwrap();
                w.field("G", &FieldSource::Bytes(&payload), &mut Vec::new())
                    .unwrap();
                let (_, mut record) = w.finish().unwrap();
                let mid = record.len() / 2;
                record[mid] ^= 0x40;

                // Hand-drive the stream protocol at the frame level.
                let id = next_stream_id();
                let mut req = Vec::with_capacity(21);
                req.push(OP_PUT_MASTER);
                req.extend_from_slice(&id.to_le_bytes());
                req.extend_from_slice(&MASTER_SENTINEL.to_le_bytes());
                req.extend_from_slice(&0u32.to_le_bytes());
                req.extend_from_slice(&(record.len() as u64).to_le_bytes());
                t.fabric.send(t.rank, t.root, REQ_TAG, Arc::new(req));
                let data_tag = stream_tag(KIND_DATA, id);
                for chunk in record.chunks(16_000) {
                    let mut p = Vec::with_capacity(1 + chunk.len());
                    p.push(CH_DATA);
                    p.extend_from_slice(chunk);
                    t.fabric.send(t.rank, t.root, data_tag, Arc::new(p));
                }
                t.fabric
                    .send(t.rank, t.root, data_tag, Arc::new(vec![CH_END]));
                let err = t.recv_response().unwrap_err();
                assert!(err.to_string().contains("CRC"), "{err}");
                // Drain this stream's credits so nothing lingers.
                let credit_tag = stream_tag(KIND_CREDIT, id);
                while t.fabric.probe(t.rank, t.root, credit_tag) {
                    t.fabric.recv(t.rank, t.root, credit_tag).unwrap();
                }

                // No partial install, and the service still works.
                assert_eq!(t.read_merged_master().unwrap(), None);
                t.put_master(
                    &meta(5, None, 2),
                    &[("G", FieldSource::Bytes(&payload))],
                    &mut Vec::new(),
                )
                .unwrap();
                assert_eq!(t.restart_count().unwrap(), Some(5));
            },
            |inner| {
                assert_eq!(inner.read_merged_master().unwrap().unwrap().count, 5);
            },
        );
    }

    proptest::proptest! {
        /// Satellite: a record streamed through the service installs
        /// byte-identically to the buffered local path (same golden
        /// encoder at both ends) — full snapshots and sparse deltas.
        #[test]
        fn prop_streamed_install_is_byte_identical_to_buffered(
            seed in proptest::prelude::any::<u64>(),
            nfields in 1usize..4,
            len in 1usize..2500,
            patch_at in 0usize..64,
        ) {
            // Deterministic field payloads from the seed.
            let mut state = seed | 1;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            let payloads: Vec<Vec<u8>> = (0..nfields)
                .map(|_| (0..len).map(|_| next() as u8).collect())
                .collect();
            let names: Vec<String> = (0..nfields).map(|i| format!("f{i}")).collect();
            let patch_at = patch_at.min(len.saturating_sub(8));
            let patch = vec![0xEEu8; 8.min(len - patch_at)];

            let (streamed_shard, streamed_delta) = two_rank(
                |t| {
                    let fields: Vec<(&str, FieldSource<'_>)> = names
                        .iter()
                        .zip(&payloads)
                        .map(|(n, p)| (n.as_str(), FieldSource::Bytes(p.as_slice())))
                        .collect();
                    t.put_shard(&meta(20, Some(1), 2), &fields, &mut Vec::new())
                        .unwrap();
                    if !patch.is_empty() {
                        let dm = DeltaMeta {
                            mode_tag: "tcp2".into(),
                            count: 21,
                            base_count: 20,
                            seq: 1,
                            rank: Some(1),
                            nranks: 2,
                        };
                        let ranges = [patch_at..patch_at + patch.len()];
                        t.put_shard_delta(
                            &dm,
                            &[(
                                names[0].as_str(),
                                DeltaSource::DirtyBytes {
                                    full_len: len as u64,
                                    ranges: &ranges,
                                    payload: &patch,
                                },
                            )],
                            &mut Vec::new(),
                        )
                        .unwrap();
                    }
                },
                |mem| {
                    (
                        mem.record_bytes(RawRecordKind::Shard(1)),
                        mem.record_bytes(RawRecordKind::ShardDelta { rank: 1, seq: 1 }),
                    )
                },
            );

            // The buffered local path: same puts against a local
            // MemTransport (the PR 5 service semantics).
            let local = MemTransport::new();
            let fields: Vec<(&str, FieldSource<'_>)> = names
                .iter()
                .zip(&payloads)
                .map(|(n, p)| (n.as_str(), FieldSource::Bytes(p.as_slice())))
                .collect();
            local
                .put_shard(&meta(20, Some(1), 2), &fields, &mut Vec::new())
                .unwrap();
            proptest::prop_assert_eq!(
                streamed_shard,
                local.record_bytes(RawRecordKind::Shard(1))
            );
            if !patch.is_empty() {
                let dm = DeltaMeta {
                    mode_tag: "tcp2".into(),
                    count: 21,
                    base_count: 20,
                    seq: 1,
                    rank: Some(1),
                    nranks: 2,
                };
                let ranges = [patch_at..patch_at + patch.len()];
                local
                    .put_shard_delta(
                        &dm,
                        &[(
                            names[0].as_str(),
                            DeltaSource::DirtyBytes {
                                full_len: len as u64,
                                ranges: &ranges,
                                payload: &patch,
                            },
                        )],
                        &mut Vec::new(),
                    )
                    .unwrap();
                proptest::prop_assert_eq!(
                    streamed_delta,
                    local.record_bytes(RawRecordKind::ShardDelta { rank: 1, seq: 1 })
                );
            }
        }
    }

    /// Satellite: four ranks checkpoint concurrently through independent
    /// lanes — interleaved bases and deltas — while a fifth dies
    /// mid-stream. Survivors' chains land intact; the dead rank installs
    /// nothing.
    #[test]
    fn concurrent_rank_pipelines_survive_mid_stream_peer_death() {
        const N: usize = 6; // root + 4 savers + 1 casualty
        let root_addr = free_loopback_addr().unwrap();
        std::thread::scope(|scope| {
            let addr = &root_addr;
            scope.spawn(move || {
                let mut cfg = NetConfig::new(0, N, addr.clone());
                cfg.recv_timeout = Duration::from_secs(20);
                let fabric = TcpFabric::connect(&cfg).unwrap();
                let dyn_fabric: Arc<dyn Fabric> = fabric.clone();
                let inner: Arc<dyn CkptTransport> = Arc::new(MemTransport::new());
                let service = NetTransport::serve(dyn_fabric.clone(), 0, inner.clone());
                for src in 1..N - 1 {
                    dyn_fabric.recv(0, src, DONE_TAG).unwrap();
                }
                service.stop();
                for r in 1..(N - 1) as u32 {
                    let snap = inner.read_merged_shard(r).unwrap().unwrap();
                    assert_eq!(snap.count, 100 + r as u64);
                    let g = snap.field("G").unwrap();
                    assert_eq!(g.len(), 200_000);
                    assert!(g[..8].iter().all(|&b| b == 0xC0 + r as u8));
                    assert!(g[8..16].iter().all(|&b| b == r as u8));
                }
                // The casualty never completed its stream: no partial
                // record may exist.
                assert!(inner.read_merged_shard((N - 1) as u32).unwrap().is_none());
            });
            for rank in 1..N - 1 {
                scope.spawn(move || {
                    let mut cfg = NetConfig::new(rank, N, addr.clone());
                    cfg.recv_timeout = Duration::from_secs(20);
                    let fabric = TcpFabric::connect(&cfg).unwrap();
                    let dyn_fabric: Arc<dyn Fabric> = fabric.clone();
                    let t = NetTransport::client(dyn_fabric.clone(), rank);
                    let r = rank as u32;
                    let base = vec![r as u8; 200_000];
                    t.put_shard(
                        &meta(99, Some(r), N as u32),
                        &[("G", FieldSource::Bytes(&base))],
                        &mut Vec::new(),
                    )
                    .unwrap();
                    let dm = DeltaMeta {
                        mode_tag: "tcp2".into(),
                        count: 100 + r as u64,
                        base_count: 99,
                        seq: 1,
                        rank: Some(r),
                        nranks: N as u32,
                    };
                    let patch = vec![0xC0 + r as u8; 8];
                    let ranges = [0usize..8];
                    t.put_shard_delta(
                        &dm,
                        &[(
                            "G",
                            DeltaSource::DirtyBytes {
                                full_len: base.len() as u64,
                                ranges: &ranges,
                                payload: &patch,
                            },
                        )],
                        &mut Vec::new(),
                    )
                    .unwrap();
                    // Concurrent restore while other lanes still stream.
                    let merged = t.read_merged_shard(r).unwrap().unwrap();
                    assert_eq!(merged.count, 100 + r as u64);
                    dyn_fabric.send(rank, 0, DONE_TAG, Arc::new(Vec::new()));
                });
            }
            scope.spawn(move || {
                // The casualty: begins a shard stream, ships one chunk,
                // and dies without an end marker.
                let rank = N - 1;
                let mut cfg = NetConfig::new(rank, N, addr.clone());
                cfg.recv_timeout = Duration::from_secs(20);
                let fabric = TcpFabric::connect(&cfg).unwrap();
                let id = next_stream_id();
                let mut req = Vec::with_capacity(21);
                req.push(OP_PUT_SHARD);
                req.extend_from_slice(&id.to_le_bytes());
                req.extend_from_slice(&(rank as u32).to_le_bytes());
                req.extend_from_slice(&0u32.to_le_bytes());
                req.extend_from_slice(&1_000_000u64.to_le_bytes());
                fabric.send(rank, 0, REQ_TAG, Arc::new(req));
                let mut chunk = vec![CH_DATA];
                chunk.extend_from_slice(&[0x77u8; 50_000]);
                fabric.send(rank, 0, stream_tag(KIND_DATA, id), Arc::new(chunk));
                // Dropping the fabric closes the connections: death.
            });
        });
    }
}
