//! # ppar-smc — parallel Sequential Monte Carlo on the task engine
//!
//! A particle filter (sequential importance resampling) for a 1-D
//! linear-Gaussian state-space model, written as pluggable base code and
//! deployed on the work-stealing task engine (`ppar-task`). Each step
//! **propagates** and **weights** particles as an overdecomposed task graph
//! (per-particle cost is deliberately imbalanced, so stealing wins over a
//! static block partition), then crosses the `"resample"` safe point, then
//! **resamples** systematically on the master.
//!
//! The workload exists to *prove* the task engine's two claims:
//!
//! * **Schedule-independence** — per-particle randomness derives from
//!   `(seed, step, particle)` counters and the weight reduction folds in
//!   task-id order, so sequential and stolen schedules of any width produce
//!   bitwise-identical particles, log-likelihood and checksum.
//! * **Quiescence checkpoints** — the resampling safe point sits between
//!   graph runs, where the task frontier is stable; the frontier is
//!   registered as announced state, so a run killed at the safe point
//!   restarts from the snapshot (frontier included) and finishes
//!   bitwise-identical to the uninterrupted run.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use ppar_core::ctx::Ctx;
use ppar_core::plan::{Plan, Plug, PointSet};
use ppar_task::{GraphRun, Policy, TaskGraph};

/// Configuration of one particle-filter run.
#[derive(Debug, Clone)]
pub struct SmcConfig {
    /// Number of particles.
    pub particles: usize,
    /// Filtering steps (observations to assimilate).
    pub steps: usize,
    /// Particles per task chunk (the overdecomposition grain).
    pub chunk: usize,
    /// Master seed; all randomness is a pure function of
    /// `(seed, step, particle, stream-tag)`.
    pub seed: u64,
    /// Busy-work iterations per *light* particle (0 in tests; the benches
    /// raise it so per-particle cost dominates scheduling overhead).
    pub work: usize,
    /// Busy-work multiplier for the *heavy* first quarter of the particle
    /// index space. The default (16) concentrates ~84% of propagation cost
    /// in the first quarter, which a static block partition piles onto
    /// worker 0 while stealing spreads it.
    pub heavy_factor: usize,
    /// Crash (leave the region) right after crossing this step's resampling
    /// safe point, *before* the resample runs — the checkpoint experiments'
    /// "killed mid-resample" scenario. 1-based, like `steps`.
    pub fail_after: Option<usize>,
    /// Task scheduling policy for the propagate/weight graph.
    pub policy: Policy,
}

impl SmcConfig {
    /// Reasonable defaults: chunked at 16 particles, stealing, no busy work.
    pub fn new(particles: usize, steps: usize) -> SmcConfig {
        SmcConfig {
            particles,
            steps,
            chunk: 16,
            seed: 0x5EC0_0FFE_E5A1_7A55,
            work: 0,
            heavy_factor: 16,
            fail_after: None,
            policy: Policy::Steal,
        }
    }
}

/// Result of a filter run, with bitwise-comparable fields.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmcResult {
    /// Accumulated log-likelihood estimate `Σ ln(Σᵢ wᵢ / n)`.
    pub loglik: f64,
    /// Steps fully assimilated (resampled).
    pub steps_done: usize,
    /// Mean of the final particle cloud.
    pub mean: f64,
    /// Order-sensitive checksum over the final particle bits.
    pub checksum: u64,
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit(state: &mut u64) -> f64 {
    (splitmix(state) as f64) / (u64::MAX as f64)
}

/// Deterministic RNG stream for `(seed, step, slot, stream-tag)`.
fn stream(seed: u64, step: usize, slot: usize, tag: u64) -> u64 {
    seed ^ (step as u64).wrapping_mul(0xA076_1D64_78BD_642F)
        ^ (slot as u64).wrapping_mul(0xE703_7ED1_A0B4_28DB)
        ^ tag.wrapping_mul(0x8EBC_6AF0_9C88_C6E3)
}

/// Standard normal draw (Box–Muller) from a counter-derived stream.
fn gauss(state: &mut u64) -> f64 {
    let u1 = unit(state).max(1e-12);
    let u2 = unit(state);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

const TAG_INIT: u64 = 0x1A17;
const TAG_PROP: u64 = 0x9209;
const TAG_OBS: u64 = 0x0B5E;
const TAG_RES: u64 = 0x2E5A;

/// The synthetic observation assimilated at `step` (1-based): a pure
/// function of `(seed, step)`, so every deployment filters the same data.
pub fn observation(seed: u64, step: usize) -> f64 {
    let mut s = stream(seed, step, 0, TAG_OBS);
    unit(&mut s) * 4.0 - 2.0
}

/// Deterministic busy-work (never influences results): models expensive
/// per-particle likelihoods.
fn busy(iters: usize) {
    let mut acc = 0.0f64;
    for k in 0..iters {
        acc += std::hint::black_box((k as f64).sqrt());
    }
    std::hint::black_box(acc);
}

fn work_for(cfg: &SmcConfig, i: usize) -> usize {
    if i * 4 < cfg.particles {
        cfg.work * cfg.heavy_factor
    } else {
        cfg.work
    }
}

/// The SMC base code: announce particles/weights/step/log-likelihood plus
/// the task frontier, filter `cfg.steps` observations with one resampling
/// safe point per step.
pub fn smc_pluggable(ctx: &Ctx, cfg: &SmcConfig) -> SmcResult {
    let n = cfg.particles;
    let xs = ctx.alloc_vec("particles", n, 0.0f64);
    let ws = ctx.alloc_vec("weights", n, 0.0f64);
    let step_done = ctx.alloc_value("step", 0u64);
    let loglik = ctx.alloc_value("loglik", 0.0f64);

    // The propagate/weight task graph: overdecomposed chunks of the
    // particle index space. Its frontier is announced state, so in-flight
    // graph progress (completion bits, cursors, weight partials) rides
    // every checkpoint.
    let run = GraphRun::new(TaskGraph::chunked(n, cfg.chunk), cfg.policy);
    ctx.register_state("task_frontier", run.frontier());

    {
        let (xs, cfg) = (xs.clone(), cfg.clone());
        ctx.call("init_particles", move |_| {
            for i in 0..cfg.particles {
                let mut rng = stream(cfg.seed, 0, i, TAG_INIT);
                xs.set(i, gauss(&mut rng));
            }
        });
    }

    {
        let (xs, ws, step_done, loglik, run, cfg) = (
            xs.clone(),
            ws.clone(),
            step_done.clone(),
            loglik.clone(),
            run.clone(),
            cfg.clone(),
        );
        ctx.region("smc", move |ctx| {
            let start = step_done.get() as usize;
            for step in start..cfg.steps {
                let epoch = (step + 1) as u64;
                let y = observation(cfg.seed, step + 1);

                // Propagate + weight as a task graph; the returned fold
                // (task-id order) is the total weight, identical on every
                // worker and under every schedule.
                {
                    let (xs2, ws2, run2, cfg2) = (xs.clone(), ws.clone(), run.clone(), cfg.clone());
                    ctx.call("propagate_weight", move |ctx| {
                        run2.run(ctx, epoch, &|_, _t, i| {
                            let mut rng = stream(cfg2.seed, step + 1, i, TAG_PROP);
                            let xp = 0.9 * xs2.get(i) + 0.35 * gauss(&mut rng);
                            busy(work_for(&cfg2, i));
                            xs2.set(i, xp);
                            let w = (-0.5 * (y - xp) * (y - xp)).exp();
                            ws2.set(i, w);
                            w
                        });
                    });
                }

                // The quiescent safe point: all deques drained, frontier
                // stable. Snapshots and adaptations happen here.
                ctx.point("resample");
                if Some(step + 1) == cfg.fail_after {
                    break;
                }

                // Systematic resampling on the master (serial, so the
                // ancestor choice is schedule-independent).
                {
                    let (xs3, ws3, cfg3) = (xs.clone(), ws.clone(), cfg.clone());
                    ctx.call("resample", move |ctx| {
                        if !ctx.is_master() {
                            return;
                        }
                        let n = cfg3.particles;
                        let mut cum = Vec::with_capacity(n);
                        let mut tot = 0.0;
                        for i in 0..n {
                            tot += ws3.get(i);
                            cum.push(tot);
                        }
                        let old: Vec<f64> = (0..n).map(|i| xs3.get(i)).collect();
                        let mut rng = stream(cfg3.seed, step + 1, 0, TAG_RES);
                        let u0 = unit(&mut rng);
                        let mut j = 0;
                        for p in 0..n {
                            let target = (u0 + p as f64) / n as f64 * tot;
                            while j < n - 1 && cum[j] < target {
                                j += 1;
                            }
                            xs3.set(p, old[j]);
                        }
                    });
                }

                // Frontier epoch gates the bookkeeping against restart
                // replay: skipped replay iterations never ran the graph, so
                // they must not touch the (about-to-be-restored) cells.
                if ctx.is_master() && run.frontier().epoch() == epoch {
                    let wsum = run.frontier().fold_partials(0.0, |a, b| a + b);
                    loglik.set(loglik.get() + (wsum / n as f64).ln());
                    step_done.set(epoch);
                }
            }
        });
    }

    let mut checksum = 0u64;
    let mut sum = 0.0;
    for i in 0..n {
        let x = xs.get(i);
        checksum = checksum.rotate_left(7) ^ x.to_bits();
        sum += x;
    }
    SmcResult {
        loglik: loglik.get(),
        steps_done: step_done.get() as usize,
        mean: sum / n as f64,
        checksum,
    }
}

/// Task-engine plan: the filter loop is a parallel method; resampling is
/// master-only with a closing barrier (workers must not start the next
/// step's graph while the master rewrites the particle cloud).
pub fn plan_task() -> Plan {
    Plan::new()
        .plug(Plug::ParallelMethod {
            method: "smc".into(),
        })
        .plug(Plug::Master {
            method: "resample".into(),
        })
        .plug(Plug::Barrier {
            method: "resample".into(),
            before: false,
            after: true,
        })
}

/// Checkpoint plan: particles, weights, counters and the task frontier are
/// safe data; the resampling point is the safe point; the heavy phases
/// replay-skip.
pub fn plan_ckpt(every: usize) -> Plan {
    Plan::new()
        .plug(Plug::SafeData {
            field: "particles".into(),
        })
        .plug(Plug::SafeData {
            field: "weights".into(),
        })
        .plug(Plug::SafeData {
            field: "step".into(),
        })
        .plug(Plug::SafeData {
            field: "loglik".into(),
        })
        .plug(Plug::SafeData {
            field: "task_frontier".into(),
        })
        .plug(Plug::SafePoints {
            points: PointSet::Named(vec!["resample".into()]),
            every,
        })
        .plug(Plug::Ignorable {
            method: "propagate_weight".into(),
        })
        .plug(Plug::Ignorable {
            method: "resample".into(),
        })
        .plug(Plug::Ignorable {
            method: "init_particles".into(),
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppar_core::ctx::run_sequential;
    use ppar_task::run_tasks;
    use std::sync::Arc;

    fn cfg() -> SmcConfig {
        SmcConfig::new(192, 10)
    }

    fn run_seq(c: &SmcConfig) -> SmcResult {
        let c = c.clone();
        run_sequential(Arc::new(Plan::new()), None, None, move |ctx| {
            smc_pluggable(ctx, &c)
        })
    }

    #[test]
    fn observations_are_reproducible() {
        assert_eq!(observation(1, 3), observation(1, 3));
        assert_ne!(observation(1, 3), observation(1, 4));
        assert_ne!(observation(1, 3), observation(2, 3));
    }

    #[test]
    fn filter_tracks_all_steps() {
        let r = run_seq(&cfg());
        assert_eq!(r.steps_done, 10);
        assert!(r.loglik.is_finite());
        assert!(r.mean.is_finite());
    }

    #[test]
    fn task_engine_matches_seq_bitwise_at_2_4_8_workers() {
        let reference = run_seq(&cfg());
        for workers in [2, 4, 8] {
            let c = cfg();
            let got = run_tasks(Arc::new(plan_task()), workers, None, None, move |ctx| {
                smc_pluggable(ctx, &c)
            });
            assert_eq!(got.checksum, reference.checksum, "workers={workers}");
            assert_eq!(
                got.loglik.to_bits(),
                reference.loglik.to_bits(),
                "workers={workers}"
            );
            assert_eq!(got.mean.to_bits(), reference.mean.to_bits());
            assert_eq!(got.steps_done, 10);
        }
    }

    #[test]
    fn static_block_policy_is_bitwise_identical_too() {
        let reference = run_seq(&cfg());
        let mut c = cfg();
        c.policy = Policy::StaticBlock;
        let got = run_tasks(Arc::new(plan_task()), 4, None, None, move |ctx| {
            smc_pluggable(ctx, &c)
        });
        assert_eq!(got.checksum, reference.checksum);
        assert_eq!(got.loglik.to_bits(), reference.loglik.to_bits());
    }
}
