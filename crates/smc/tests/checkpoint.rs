//! Checkpoint/restore of the SMC filter with its in-flight task graph:
//! kill at the resampling safe point, restart, and match the uninterrupted
//! run bitwise — over the on-disk store *and* over the in-memory
//! [`MemTransport`] hand-off of a live reshape.

use std::sync::{Arc, Mutex};

use ppar_adapt::{launch, launch_live, AdaptationController, AppStatus, Deploy, ResourceTimeline};
use ppar_core::ctx::run_sequential;
use ppar_core::mode::ExecMode;
use ppar_core::plan::Plan;
use ppar_smc::{plan_ckpt, plan_task, smc_pluggable, SmcConfig, SmcResult};

/// Safe-point crossings in these tests run the global graph-quiescence
/// check, which would observe another test's mid-flight scheduler as a
/// (correct but unwanted) violation; serialize the checkpoint tests.
static SERIAL: Mutex<()> = Mutex::new(());

fn cfg() -> SmcConfig {
    let mut c = SmcConfig::new(96, 10);
    c.chunk = 8; // 12 tasks: enough frontier structure to checkpoint
    c
}

fn reference() -> SmcResult {
    run_sequential(Arc::new(Plan::new()), None, None, |ctx| {
        smc_pluggable(ctx, &cfg())
    })
}

fn assert_bitwise(got: &SmcResult, want: &SmcResult, what: &str) {
    assert_eq!(got.steps_done, want.steps_done, "{what}: steps_done");
    assert_eq!(got.checksum, want.checksum, "{what}: particle checksum");
    assert_eq!(
        got.loglik.to_bits(),
        want.loglik.to_bits(),
        "{what}: loglik"
    );
    assert_eq!(got.mean.to_bits(), want.mean.to_bits(), "{what}: mean");
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("ppar_smc_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Sequential disk crash/restart: snapshot every 4 resampling points, kill
/// right after crossing point 7 (mid-resample), restart, bitwise-match.
#[test]
fn seq_crash_at_resample_restarts_bitwise() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let dir = tmpdir("seq");
    let want = reference();

    let plan = plan_ckpt(4);
    let report = ppar_ckpt::launch_seq(&dir, plan.clone(), |ctx| {
        let mut c = cfg();
        c.fail_after = Some(7);
        (AppStatus::Crashed, smc_pluggable(ctx, &c))
    })
    .unwrap();
    assert!(
        report.stats.snapshots_taken >= 1,
        "crashed run must have snapshotted before the kill"
    );
    assert!(report.result.steps_done < cfg().steps);

    let report = ppar_ckpt::launch_seq(&dir, plan, |ctx| {
        (AppStatus::Completed, smc_pluggable(ctx, &cfg()))
    })
    .unwrap();
    assert!(report.replayed, "restart must arm replay");
    assert_bitwise(&report.result, &want, "seq restart");

    let _ = std::fs::remove_dir_all(&dir);
}

/// Task-engine disk crash/restart: 4 stealing workers, killed mid-resample;
/// the restored frontier and particle cloud resume to a bitwise-identical
/// result under fresh (different) stolen schedules.
#[test]
fn task_engine_crash_at_resample_restarts_bitwise() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let dir = tmpdir("task");
    let want = reference();
    let deploy = Deploy::Task {
        workers: 4,
        max_workers: 4,
    };
    let plan = || plan_task().merge(plan_ckpt(4));

    let outcome = launch(&deploy, plan(), Some(&dir), None, |ctx| {
        let mut c = cfg();
        c.fail_after = Some(7);
        (AppStatus::Crashed, smc_pluggable(ctx, &c))
    })
    .unwrap();
    assert!(!outcome.completed());
    assert!(outcome.stats.as_ref().unwrap().snapshots_taken >= 1);

    let outcome = launch(&deploy, plan(), Some(&dir), None, |ctx| {
        (AppStatus::Completed, smc_pluggable(ctx, &cfg()))
    })
    .unwrap();
    assert!(outcome.completed());
    assert!(outcome.replayed, "restart must arm replay");
    assert_bitwise(&outcome.results[0].1, &want, "task-engine restart");

    let _ = std::fs::remove_dir_all(&dir);
}

/// In-memory hand-off: a task-engine session that cannot widen in place
/// (target 6 > max 3) escalates at a resampling crossing, streams the
/// frontier + particle state through a `MemTransport`, and resumes on a
/// wider task team — no disk, one relaunch, bitwise-identical.
#[test]
fn task_engine_hands_off_through_mem_transport_bitwise() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let want = reference();
    let controller =
        AdaptationController::with_timeline(ResourceTimeline::new().at(3, ExecMode::smp(6)));
    let outcome = launch_live(
        &Deploy::Task {
            workers: 2,
            max_workers: 3,
        },
        plan_task().merge(plan_ckpt(0)),
        None, // disk-free: the hand-off rides the in-memory transport
        controller,
        |ctx| (AppStatus::Completed, smc_pluggable(ctx, &cfg())),
    )
    .unwrap();
    assert!(outcome.completed());
    assert_eq!(outcome.launches, 2, "one escalated relaunch");
    assert_eq!(outcome.reshapes.len(), 1, "exactly one mode switch");
    assert_eq!(outcome.reshapes[0].0, ExecMode::smp(6));
    assert_bitwise(&outcome.results[0].1, &want, "mem hand-off");
}
