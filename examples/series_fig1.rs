//! The paper's Fig. 1, runnable: the JGF Series benchmark with the
//! distributed-memory parallelisation expressed as a plan that transcribes
//! the figure's templates (`Partitioned<TestArray,BLOCK>`,
//! `ScatterBefore<Do(),TestArray>`, `GatherAfter<Do(),TestArray>`).
//!
//! ```text
//! cargo run --release --example series_fig1
//! ```

use std::sync::Arc;

use ppar_suite::core::plan::Plan;
use ppar_suite::core::run_sequential;
use ppar_suite::dsm::{run_spmd_plain, SpmdConfig};
use ppar_suite::jgf::series::{plan_dist, plan_smp, series_pluggable, series_seq, SeriesParams};
use ppar_suite::smp::run_smp;

fn main() {
    let params = SeriesParams::new(512);
    let reference = series_seq(&params);

    let p1 = params.clone();
    let seq = run_sequential(Arc::new(Plan::new()), None, None, move |ctx| {
        series_pluggable(ctx, &p1)
    });
    let p2 = params.clone();
    let smp = run_smp(Arc::new(plan_smp()), 8, None, None, move |ctx| {
        series_pluggable(ctx, &p2)
    });
    let p3 = params.clone();
    let dist = run_spmd_plain(&SpmdConfig::paper(8), Arc::new(plan_dist()), move |ctx| {
        series_pluggable(ctx, &p3)
    });

    println!("first Fourier coefficient pairs of (x+1)^x on [0,2]:");
    for (i, (a, b)) in reference.iter().take(4).enumerate() {
        println!("  n={i}: a={a:+.6}  b={b:+.6}");
    }
    assert_eq!(seq, reference);
    assert_eq!(smp, reference);
    assert_eq!(dist[0], reference);
    println!(
        "sequential, 8-thread and 8-process runs all agree on {} coefficients ✓",
        reference.len()
    );
}
