//! Molecular dynamics with pluggable checkpointing: a Lennard-Jones
//! simulation that survives a mid-run failure and restarts *in a different
//! execution mode* (the snapshot is mode independent).
//!
//! ```text
//! cargo run --release --example md_checkpoint
//! ```

use std::sync::Arc;

use ppar_suite::adapt::{launch, AppStatus, Deploy};
use ppar_suite::core::plan::Plan;
use ppar_suite::core::run_sequential;
use ppar_suite::md::{md_pluggable, plan_ckpt, plan_smp, MdConfig};

fn main() {
    let cfg = MdConfig::new(216, 60);

    let c0 = cfg.clone();
    let reference = run_sequential(Arc::new(Plan::new()), None, None, move |ctx| {
        md_pluggable(ctx, &c0)
    });
    println!(
        "reference (seq)  : E_kin {:.4}, E_pot {:.4} after {} steps",
        reference.kinetic, reference.potential, reference.steps_done
    );

    let dir = std::env::temp_dir().join("ppar_example_md");
    let _ = std::fs::remove_dir_all(&dir);

    // Phase 1: run on a 6-thread team, snapshot every 15 steps, die at 40.
    let mut crashing = cfg.clone();
    crashing.fail_after = Some(40);
    let plan = plan_smp().merge(plan_ckpt(15));
    launch(
        &Deploy::Smp {
            threads: 6,
            max_threads: 6,
        },
        plan,
        Some(&dir),
        None,
        move |ctx| (AppStatus::Crashed, md_pluggable(ctx, &crashing)),
    )
    .expect("phase 1");
    println!("phase 1          : 6-thread run crashed at step 40 (snapshot at 30)");

    // Phase 2: restart SEQUENTIALLY from the team-taken snapshot.
    let c2 = cfg.clone();
    let outcome = launch(
        &Deploy::Seq,
        Plan::new().merge(plan_ckpt(15)),
        Some(&dir),
        None,
        move |ctx| (AppStatus::Completed, md_pluggable(ctx, &c2)),
    )
    .expect("phase 2");
    let result = &outcome.results[0].1;
    println!(
        "phase 2 (seq)    : replayed {} safe points, finished at step {}",
        outcome
            .stats
            .as_ref()
            .map(|s| s.replayed_points)
            .unwrap_or(0),
        result.steps_done
    );
    assert!(outcome.replayed);
    assert_eq!(result.checksum, reference.checksum, "trajectory must match");
    assert_eq!(result.kinetic, reference.kinetic);
    let _ = std::fs::remove_dir_all(&dir);
    println!("cross-mode restart reproduced the trajectory bit-for-bit ✓");
}
