//! The paper's headline scenario on the SOR benchmark: a run starts on a
//! small team, more resources arrive mid-run, and the application reshapes
//! *without restarting* (Fig. 7's run-time adaptation), then a second run
//! demonstrates adaptation by checkpoint/restart onto more processes
//! (Fig. 6).
//!
//! ```text
//! cargo run --release --example sor_adaptive
//! ```

use ppar_suite::adapt::{launch, AdaptationController, AppStatus, Deploy, ResourceTimeline};
use ppar_suite::core::ExecMode;
use ppar_suite::dsm::SpmdConfig;
use ppar_suite::jgf::sor::pluggable::{plan_ckpt, plan_dist, plan_smp, sor_pluggable};
use ppar_suite::jgf::sor::{sor_seq, SorParams};

fn main() {
    let params = SorParams::new(512, 40);
    let reference = sor_seq(&params);

    // --- Run-time adaptation: 2 threads -> 12 threads at safe point 10.
    let controller =
        AdaptationController::with_timeline(ResourceTimeline::new().at(10, ExecMode::smp(12)));
    let p = params.clone();
    let t0 = std::time::Instant::now();
    let outcome = launch(
        &Deploy::Smp {
            threads: 2,
            max_threads: 12,
        },
        plan_smp().merge(plan_ckpt(0)),
        None,
        Some(controller.clone()),
        move |ctx| (AppStatus::Completed, sor_pluggable(ctx, &p)),
    )
    .expect("launch");
    let runtime_secs = t0.elapsed().as_secs_f64();
    let result = &outcome.results[0].1;
    assert_eq!(
        result.checksum, reference.checksum,
        "adaptation must not corrupt"
    );
    println!(
        "run-time adaptation : 2 LE -> 12 LE at safe point 10, {:.3}s, history {:?}",
        runtime_secs,
        controller.history()
    );

    // --- Adaptation by restart: 2 processes, checkpoint at iteration 20,
    //     "resources change", restart on 8 processes from the snapshot.
    let dir = std::env::temp_dir().join("ppar_example_sor_adaptive");
    let _ = std::fs::remove_dir_all(&dir);
    let mut crash_params = params.clone();
    crash_params.fail_after = Some(20);
    let t0 = std::time::Instant::now();
    let cp = crash_params.clone();
    launch(
        &Deploy::Dist(SpmdConfig::paper(2)),
        plan_dist().merge(plan_ckpt(20)),
        Some(&dir),
        None,
        move |ctx| (AppStatus::Crashed, sor_pluggable(ctx, &cp)),
    )
    .expect("phase 1");
    let p2 = params.clone();
    let outcome = launch(
        &Deploy::Dist(SpmdConfig::paper(8)),
        plan_dist().merge(plan_ckpt(20)),
        Some(&dir),
        None,
        move |ctx| (AppStatus::Completed, sor_pluggable(ctx, &p2)),
    )
    .expect("phase 2");
    let restart_secs = t0.elapsed().as_secs_f64();
    assert!(outcome.replayed, "second launch must detect and replay");
    assert_eq!(outcome.results[0].1.checksum, reference.checksum);
    println!(
        "restart adaptation  : 2 P -> 8 P at iteration 20, {:.3}s total \
         (replayed {} safe points, load {:.4}s)",
        restart_secs,
        outcome
            .stats
            .as_ref()
            .map(|s| s.replayed_points)
            .unwrap_or(0),
        outcome
            .stats
            .as_ref()
            .map(|s| s.load_time.as_secs_f64())
            .unwrap_or(0.0),
    );
    let _ = std::fs::remove_dir_all(&dir);
    println!("results identical to the sequential reference ✓");
}
