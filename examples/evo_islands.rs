//! Evolutionary computation on pluggable parallelisation: the same GA runs
//! sequentially, on a thread team, and as a distributed island model — then
//! survives a simulated resource failure via checkpoint/restart.
//!
//! ```text
//! cargo run --release --example evo_islands
//! ```

use std::sync::Arc;

use ppar_suite::core::plan::Plan;
use ppar_suite::core::run_sequential;
use ppar_suite::dsm::{run_spmd_plain, SpmdConfig};
use ppar_suite::evo::{ga_pluggable, plan_ckpt, plan_islands, plan_smp, GaConfig};
use ppar_suite::smp::run_smp;

fn main() {
    let mut cfg = GaConfig::new(256, 16, 60);
    cfg.islands = 4;

    let c1 = cfg.clone();
    let seq = run_sequential(Arc::new(Plan::new()), None, None, move |ctx| {
        ga_pluggable(ctx, &c1)
    });
    println!(
        "sequential      : best {:.4}, mean {:.4}",
        seq.best, seq.mean
    );

    let c2 = cfg.clone();
    let smp = run_smp(Arc::new(plan_smp()), 8, None, None, move |ctx| {
        ga_pluggable(ctx, &c2)
    });
    println!(
        "8-thread team   : best {:.4}, mean {:.4}",
        smp.best, smp.mean
    );

    let c3 = cfg.clone();
    let islands = run_spmd_plain(
        &SpmdConfig::instant(4),
        Arc::new(plan_islands()),
        move |ctx| ga_pluggable(ctx, &c3),
    );
    println!(
        "4-island model  : best {:.4}, mean {:.4}",
        islands[0].best, islands[0].mean
    );

    assert_eq!(seq.best, smp.best, "team run must match sequential");
    assert_eq!(seq.best, islands[0].best, "islands must match sequential");

    // Checkpoint/restart: crash after generation 35, resume, same answer.
    let dir = std::env::temp_dir().join("ppar_example_evo");
    let _ = std::fs::remove_dir_all(&dir);
    let plan = Plan::new().merge(plan_ckpt(10));
    let mut crashing = cfg.clone();
    crashing.fail_after = Some(35);
    ppar_suite::ckpt::launch_seq(&dir, plan.clone(), |ctx| {
        (
            ppar_suite::ckpt::AppStatus::Crashed,
            ga_pluggable(ctx, &crashing),
        )
    })
    .expect("crash run");
    let report = ppar_suite::ckpt::launch_seq(&dir, plan, |ctx| {
        (
            ppar_suite::ckpt::AppStatus::Completed,
            ga_pluggable(ctx, &cfg),
        )
    })
    .expect("restart run");
    println!(
        "after crash+restart: best {:.4} (replayed {} safe points)",
        report.result.best, report.stats.replayed_points
    );
    assert_eq!(
        report.result.best, seq.best,
        "restart must not change evolution"
    );
    let _ = std::fs::remove_dir_all(&dir);
    println!("all deployments evolve identically ✓");
}
