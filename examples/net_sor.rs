//! Real multi-process distributed SOR over TCP — the `ppar-net` quickstart.
//!
//! Run the parent role with a rank count (default 2):
//!
//! ```bash
//! cargo run --release --example net_sor            # 2 processes
//! cargo run --release --example net_sor -- 4       # 4 processes
//! ```
//!
//! The parent relaunches this same binary N times through
//! `spawn_local_cluster`; each child finds the `PPAR_RANK` / `PPAR_NRANKS`
//! / `PPAR_ROOT` contract in its environment, bootstraps a `TcpFabric`
//! mesh over loopback, and runs the *unchanged* pluggable SOR with
//! checkpointing plugged — the identical plan and base code the simulated
//! and thread-backed deployments use. Rank 0 reports the checksum, which
//! the parent compares bitwise against the in-process sequential run.

use std::io::Write as _;
use std::time::Duration;

use ppar_adapt::netrun::{run_cluster_until_complete, ClusterSpec, NetConfig};
use ppar_adapt::{run_net_rank, AppStatus};
use ppar_jgf::sor::pluggable::{plan_ckpt, plan_dist, sor_pluggable};
use ppar_jgf::sor::{sor_seq, SorParams};

const OUT_ENV: &str = "PPAR_EXAMPLE_OUT";
const CKPT_ENV: &str = "PPAR_EXAMPLE_CKPT";

fn params() -> SorParams {
    SorParams::new(256, 20)
}

fn worker(cfg: NetConfig) {
    // The checkpoint directory is chosen ONCE by the parent and shared by
    // every launch attempt — keying it to a rank pid would give each
    // relaunch a fresh empty store and silently lose the recovery path.
    let ckpt_dir = std::path::PathBuf::from(std::env::var(CKPT_ENV).expect("ckpt dir"));
    let plan = plan_dist().merge(plan_ckpt(5));
    let p = params();
    let outcome = run_net_rank(&cfg, plan, Some(&ckpt_dir), |ctx| {
        (AppStatus::Completed, sor_pluggable(ctx, &p))
    })
    .expect("rank run");
    println!(
        "[rank {}/{}] checksum={:.6} traffic: {} msgs, {} bytes ({})",
        outcome.rank,
        outcome.nranks,
        outcome.result.checksum,
        outcome.traffic.msgs(),
        outcome.traffic.bytes(),
        outcome.tag(),
    );
    if outcome.rank == 0 {
        let mut f = std::fs::File::create(std::env::var(OUT_ENV).expect("out path")).unwrap();
        writeln!(f, "{:016x}", outcome.result.checksum.to_bits()).unwrap();
    }
}

fn main() {
    if let Some(cfg) = NetConfig::from_env().expect("env contract") {
        return worker(cfg);
    }
    let nranks: usize = std::env::args()
        .nth(1)
        .map(|v| v.parse().expect("rank count"))
        .unwrap_or(2);
    let out = std::env::temp_dir().join(format!("ppar_net_sor_out_{}.txt", std::process::id()));
    let ckpt = std::env::temp_dir().join(format!("ppar_net_sor_ckpt_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&ckpt);
    let spec = ClusterSpec::current_exe(nranks, Vec::new())
        .expect("current exe")
        .env(OUT_ENV, out.to_string_lossy().to_string())
        .env(CKPT_ENV, ckpt.to_string_lossy().to_string());
    println!("launching {nranks} rank processes over loopback TCP…");
    let attempts =
        run_cluster_until_complete(&spec, Duration::from_secs(120), 1).expect("cluster run");
    let bits = std::fs::read_to_string(&out).expect("rank 0 result");
    let reference = sor_seq(&params()).checksum.to_bits();
    let tcp = u64::from_str_radix(bits.trim(), 16).expect("hex bits");
    let _ = std::fs::remove_file(&out);
    let _ = std::fs::remove_dir_all(&ckpt);
    println!(
        "tcp{nranks} completed in {attempts} launch(es); bitwise vs sequential: {}",
        if tcp == reference {
            "MATCH"
        } else {
            "MISMATCH"
        }
    );
    assert_eq!(tcp, reference, "TCP run must reproduce sequential bitwise");
}
