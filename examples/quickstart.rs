//! Quickstart: one base program, four deployments.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Writes a tiny stencil program once, then runs it sequentially, on a
//! thread team, distributed, and distributed-with-checkpointing — changing
//! nothing but the plan.

use std::sync::Arc;

use ppar_suite::core::prelude::*;
use ppar_suite::core::run_sequential;
use ppar_suite::dsm::{run_spmd_plain, SpmdConfig};
use ppar_suite::smp::run_smp;

/// The base code: sequential by construction. Join points (`region`,
/// `each`, `point`) are inert without plugs.
fn smooth(ctx: &Ctx, n: usize, rounds: usize) -> f64 {
    let field = ctx.alloc_vec("field", n, 0.0f64);
    let f_init = field.clone();
    ctx.call("init", move |_| {
        f_init.copy_in_from_fn(|i| ((i * 37) % 101) as f64);
    });
    let f = field.clone();
    ctx.region("run", move |ctx| {
        for _round in 0..rounds {
            // the dist plan refreshes halo cells here
            ctx.point("pre_sweep");
            let f2 = f.clone();
            ctx.call("sweep", move |ctx| {
                ctx.each("cells", 1..n - 1, |_, i| {
                    if i % 2 == 1 {
                        f2.set(i, 0.5 * (f2.get(i - 1) + f2.get(i + 1)));
                    }
                });
            });
            ctx.point("pre_sweep");
            let f3 = f.clone();
            ctx.call("sweep2", move |ctx| {
                ctx.each("cells2", 1..n - 1, |_, i| {
                    if i % 2 == 0 {
                        f3.set(i, 0.5 * (f3.get(i - 1) + f3.get(i + 1)));
                    }
                });
            });
            ctx.point("round_end"); // safe point
        }
    });
    ctx.point("done"); // the dist plan gathers here
    field.as_slice().iter().sum()
}

fn main() {
    let n = 1024;
    let rounds = 50;

    // 1. Unplugged: strict sequential execution.
    let seq = run_sequential(Arc::new(Plan::new()), None, None, |ctx| {
        smooth(ctx, n, rounds)
    });
    println!("sequential        : {seq:.6}");

    // 2. Shared memory: two plugs.
    let smp_plan = Plan::new()
        .plug(Plug::ParallelMethod {
            method: "run".into(),
        })
        .plug(Plug::For {
            loop_name: "cells".into(),
            schedule: Schedule::Block,
        })
        .plug(Plug::For {
            loop_name: "cells2".into(),
            schedule: Schedule::Block,
        });
    let smp = run_smp(Arc::new(smp_plan), 4, None, None, |ctx| {
        smooth(ctx, n, rounds)
    });
    println!("4-thread team     : {smp:.6}");

    // 3. Distributed: partition + halo + gather plugs.
    let dist_plan = Plan::new()
        .plug(Plug::Field {
            field: "field".into(),
            dist: FieldDist::Partitioned(Partition::Block),
        })
        .plug(Plug::UpdateAt {
            point: "pre_sweep".into(),
            field: "field".into(),
            action: UpdateAction::HaloExchange { halo: 1 },
        })
        .plug(Plug::DistFor {
            loop_name: "cells".into(),
            field: "field".into(),
        })
        .plug(Plug::DistFor {
            loop_name: "cells2".into(),
            field: "field".into(),
        })
        .plug(Plug::UpdateAt {
            point: "done".into(),
            field: "field".into(),
            action: UpdateAction::Gather,
        });
    let dist = run_spmd_plain(
        &SpmdConfig::instant(4),
        Arc::new(dist_plan.clone()),
        |ctx| smooth(ctx, n, rounds),
    );
    println!("4-process SPMD    : {:.6}", dist[0]);

    // 4. Distributed + checkpointing: three more declarations.
    let ckpt_plan = dist_plan
        .plug(Plug::SafeData {
            field: "field".into(),
        })
        .plug(Plug::SafePoints {
            points: PointSet::Named(vec!["round_end".into()]),
            every: 10,
        })
        .plug(Plug::Ignorable {
            method: "sweep".into(),
        })
        .plug(Plug::Ignorable {
            method: "sweep2".into(),
        });
    let dir = std::env::temp_dir().join("ppar_quickstart_ckpt");
    let _ = std::fs::remove_dir_all(&dir);
    let outcome = ppar_suite::adapt::launch(
        &ppar_suite::adapt::Deploy::Dist(SpmdConfig::instant(4)),
        ckpt_plan,
        Some(&dir),
        None,
        |ctx| {
            (
                ppar_suite::adapt::AppStatus::Completed,
                smooth(ctx, n, rounds),
            )
        },
    )
    .expect("launch");
    println!(
        "4-process + ckpt  : {:.6}  ({} snapshots, {} bytes)",
        outcome.results[0].1,
        outcome
            .stats
            .as_ref()
            .map(|s| s.snapshots_taken)
            .unwrap_or(0),
        outcome.stats.as_ref().map(|s| s.bytes_written).unwrap_or(0),
    );
    let _ = std::fs::remove_dir_all(&dir);

    assert_eq!(seq, smp);
    assert_eq!(seq, dist[0]);
    assert_eq!(seq, outcome.results[0].1);
    println!("all deployments agree bit-for-bit ✓");
}
