//! # ppar-suite — umbrella crate
//!
//! Re-exports the whole pluggable-parallelisation family so the runnable
//! examples under `examples/` and the cross-crate integration tests under
//! `tests/` can use one dependency. Library users should depend on the
//! individual crates instead.

pub use ppar_adapt as adapt;
pub use ppar_ckpt as ckpt;
pub use ppar_core as core;
pub use ppar_dsm as dsm;
pub use ppar_evo as evo;
pub use ppar_jgf as jgf;
pub use ppar_md as md;
pub use ppar_net as net;
pub use ppar_smc as smc;
pub use ppar_smp as smp;
pub use ppar_task as task;
