//! Workspace-level integration tests: full checkpoint → kill → restart →
//! finish cycles across execution modes, cross-mode restarts, run-time
//! adaptation under load, and failure injection at every safe point.

use std::sync::Arc;

use ppar_suite::adapt::{
    launch, run_until_complete, AdaptationController, AppStatus, Deploy, ResourceTimeline,
};
use ppar_suite::core::plan::Plan;
use ppar_suite::core::run_sequential;
use ppar_suite::core::ExecMode;
use ppar_suite::dsm::SpmdConfig;
use ppar_suite::jgf::sor::pluggable::{
    plan_ckpt, plan_ckpt_incremental, plan_dist, plan_seq, plan_smp, sor_pluggable,
};
use ppar_suite::jgf::sor::{sor_seq, SorParams};

fn params() -> SorParams {
    SorParams::new(65, 12)
}

fn reference() -> f64 {
    sor_seq(&params()).checksum
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("ppar_it_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn crash_run(deploy: &Deploy, plan: Plan, dir: &std::path::Path, fail_after: usize) {
    let mut p = params();
    p.fail_after = Some(fail_after);
    launch(deploy, plan, Some(dir), None, move |ctx| {
        (AppStatus::Crashed, sor_pluggable(ctx, &p))
    })
    .expect("crash run");
}

fn finish_run(deploy: &Deploy, plan: Plan, dir: &std::path::Path) -> (f64, bool) {
    let p = params();
    let outcome = launch(deploy, plan, Some(dir), None, move |ctx| {
        (AppStatus::Completed, sor_pluggable(ctx, &p))
    })
    .expect("finish run");
    (outcome.results[0].1.checksum, outcome.replayed)
}

#[test]
fn every_mode_pair_supports_cross_mode_restart() {
    // Snapshot in mode A (master-collect), restart in mode B — all 9 pairs.
    let expected = reference();
    type Mode = (&'static str, Deploy, fn() -> Plan);
    let modes: Vec<Mode> = vec![
        ("seq", Deploy::Seq, plan_seq as fn() -> Plan),
        (
            "smp",
            Deploy::Smp {
                threads: 3,
                max_threads: 3,
            },
            plan_smp as fn() -> Plan,
        ),
        (
            "dist",
            Deploy::Dist(SpmdConfig::instant(3)),
            plan_dist as fn() -> Plan,
        ),
    ];
    for (a_name, a_deploy, a_plan) in &modes {
        for (b_name, b_deploy, b_plan) in &modes {
            let dir = tmpdir(&format!("x_{a_name}_{b_name}"));
            crash_run(a_deploy, a_plan().merge(plan_ckpt(4)), &dir, 7);
            let (checksum, replayed) = finish_run(b_deploy, b_plan().merge(plan_ckpt(4)), &dir);
            assert!(replayed, "{a_name}->{b_name}: restart must replay");
            assert_eq!(
                checksum, expected,
                "{a_name}->{b_name}: cross-mode restart must agree"
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

#[test]
fn incremental_checkpoint_cross_mode_restart() {
    // Dirty-chunk incremental snapshots compose with cross-mode restart:
    // the merged base+delta state is mode-independent like any master
    // snapshot. every=2, full_every=2 -> base at iteration 2, deltas at 4
    // and 6; crash at 7 restarts from the folded chain.
    let expected = reference();
    type Mode = (&'static str, Deploy, fn() -> Plan);
    let modes: Vec<Mode> = vec![
        ("seq", Deploy::Seq, plan_seq as fn() -> Plan),
        (
            "smp",
            Deploy::Smp {
                threads: 3,
                max_threads: 3,
            },
            plan_smp as fn() -> Plan,
        ),
        (
            "dist",
            Deploy::Dist(SpmdConfig::instant(3)),
            plan_dist as fn() -> Plan,
        ),
    ];
    for k in 0..modes.len() {
        let (a_name, a_deploy, a_plan) = &modes[k];
        let (b_name, b_deploy, b_plan) = &modes[(k + 1) % modes.len()];
        let dir = tmpdir(&format!("inc_{a_name}_{b_name}"));
        crash_run(
            a_deploy,
            a_plan().merge(plan_ckpt_incremental(2, 2)),
            &dir,
            7,
        );
        let store = ppar_suite::ckpt::CheckpointStore::new(&dir).unwrap();
        assert!(
            store.read_master_delta(1).unwrap().is_some(),
            "{a_name}: crash run must leave a delta chain"
        );
        let (checksum, replayed) =
            finish_run(b_deploy, b_plan().merge(plan_ckpt_incremental(2, 2)), &dir);
        assert!(replayed, "{a_name}->{b_name}: restart must replay");
        assert_eq!(
            checksum, expected,
            "{a_name}->{b_name}: incremental cross-mode restart must agree"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn failure_injection_at_every_safe_point() {
    // Crash after every possible iteration; each restart must converge to
    // the reference result.
    let expected = reference();
    for fail_at in 1..=12usize {
        let dir = tmpdir(&format!("inject_{fail_at}"));
        crash_run(&Deploy::Seq, plan_seq().merge(plan_ckpt(3)), &dir, fail_at);
        let (checksum, _) = finish_run(&Deploy::Seq, plan_seq().merge(plan_ckpt(3)), &dir);
        assert_eq!(checksum, expected, "failure at iteration {fail_at}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn repeated_failures_eventually_complete() {
    // Three consecutive crashes, then completion, via the restart driver.
    let dir = tmpdir("repeat");
    let expected = reference();
    let crash_points = [5usize, 8, 11];
    let outcomes = run_until_complete(
        |_attempt| Deploy::Smp {
            threads: 2,
            max_threads: 2,
        },
        &plan_smp().merge(plan_ckpt(2)),
        &dir,
        |ctx| {
            // Crash at successive points on each attempt; the 4th run
            // completes. Which attempt we are on is visible from the replay
            // state: count snapshots on disk via iterations completed.
            let attempt = std::fs::read_to_string(dir.join("attempt.txt"))
                .ok()
                .and_then(|s| s.parse::<usize>().ok())
                .unwrap_or(0);
            std::fs::write(dir.join("attempt.txt"), format!("{}", attempt + 1)).unwrap();
            let mut p = params();
            if attempt < crash_points.len() {
                p.fail_after = Some(crash_points[attempt]);
                let r = sor_pluggable(ctx, &p);
                (AppStatus::Crashed, r)
            } else {
                let r = sor_pluggable(ctx, &p);
                (AppStatus::Completed, r)
            }
        },
        10,
    )
    .expect("must complete");
    assert_eq!(outcomes.len(), 4, "three crashes + one completion");
    assert_eq!(outcomes.last().unwrap().results[0].1.checksum, expected);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn runtime_adaptation_stress_expand_contract_expand() {
    // Reshape three times during one run; the numerical result must be
    // untouched and the history must record all three.
    let expected = reference();
    let controller = AdaptationController::with_timeline(
        ResourceTimeline::new()
            .at(3, ExecMode::smp(6))
            .at(6, ExecMode::smp(2))
            .at(9, ExecMode::smp(4)),
    );
    let p = params();
    let outcome = launch(
        &Deploy::Smp {
            threads: 2,
            max_threads: 8,
        },
        plan_smp().merge(plan_ckpt(0)),
        None,
        Some(controller.clone()),
        move |ctx| (AppStatus::Completed, sor_pluggable(ctx, &p)),
    )
    .expect("launch");
    assert_eq!(outcome.results[0].1.checksum, expected);
    let history = controller.history();
    assert_eq!(history.len(), 3, "three reshapes applied: {history:?}");
    assert_eq!(history[0].1, ExecMode::smp(6));
    assert_eq!(history[1].1, ExecMode::smp(2));
    assert_eq!(history[2].1, ExecMode::smp(4));
}

#[test]
fn adaptation_and_checkpointing_compose() {
    // Snapshot while the team is mid-reshape lifecycle: expand at point 3,
    // snapshot at point 6 (on the larger team), crash at 9, restart fixed.
    let expected = reference();
    let dir = tmpdir("compose");
    {
        let controller =
            AdaptationController::with_timeline(ResourceTimeline::new().at(3, ExecMode::smp(5)));
        let mut p = params();
        p.fail_after = Some(9);
        launch(
            &Deploy::Smp {
                threads: 2,
                max_threads: 5,
            },
            plan_smp().merge(plan_ckpt(6)),
            Some(&dir),
            Some(controller),
            move |ctx| (AppStatus::Crashed, sor_pluggable(ctx, &p)),
        )
        .expect("phase 1");
    }
    let (checksum, replayed) = finish_run(
        &Deploy::Smp {
            threads: 4,
            max_threads: 4,
        },
        plan_smp().merge(plan_ckpt(6)),
        &dir,
    );
    assert!(replayed);
    assert_eq!(checksum, expected);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dist_restart_with_more_and_fewer_ranks() {
    let expected = reference();
    for (from, to) in [(2usize, 6usize), (6, 2), (4, 1), (1, 4)] {
        let dir = tmpdir(&format!("resize_{from}_{to}"));
        crash_run(
            &Deploy::Dist(SpmdConfig::instant(from)),
            plan_dist().merge(plan_ckpt(4)),
            &dir,
            7,
        );
        let (checksum, replayed) = finish_run(
            &Deploy::Dist(SpmdConfig::instant(to)),
            plan_dist().merge(plan_ckpt(4)),
            &dir,
        );
        assert!(replayed, "{from}->{to}");
        assert_eq!(checksum, expected, "{from}P -> {to}P restart");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn pluggable_unplugged_equivalence_under_tracking() {
    // Run the SMP deployment with the disjoint-write tracker enabled: any
    // construct-contract violation in the SOR kernel would panic.
    ppar_suite::core::shared::tracking::enable();
    let p = params();
    let got = ppar_suite::smp::run_smp(Arc::new(plan_smp()), 4, None, None, move |ctx| {
        sor_pluggable(ctx, &p)
    });
    ppar_suite::core::shared::tracking::disable();
    assert_eq!(got.checksum, reference());
}

#[test]
fn sequential_engine_and_team_of_one_agree() {
    let p1 = params();
    let seq = run_sequential(Arc::new(plan_seq()), None, None, move |ctx| {
        sor_pluggable(ctx, &p1)
    });
    let p2 = params();
    let smp1 = ppar_suite::smp::run_smp(Arc::new(plan_smp()), 1, None, None, move |ctx| {
        sor_pluggable(ctx, &p2)
    });
    assert_eq!(seq.checksum, smp1.checksum);
}
