//! Offline shim of the serde data model: the trait surface and std impls
//! used by this workspace's checkpoint codec and derived state types.
//!
//! API-compatible with the real `serde` for the subset exercised here
//! (fixed-width primitives, strings, bytes, options, sequences, tuples,
//! arrays, maps, structs and enums); `i128`/`u128`, borrowed zero-copy
//! deserialization of user types, and the `serde(...)` attribute family are
//! intentionally out of scope.

pub mod de;
pub mod ser;

pub use de::{Deserialize, DeserializeOwned, Deserializer};
pub use ser::{Serialize, Serializer};

// Derive macros (same names as the traits; macro and trait namespaces are
// distinct, so `use serde::{Serialize, Deserialize}` imports both).
pub use serde_derive::{Deserialize, Serialize};
