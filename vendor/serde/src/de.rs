//! Deserialization half of the shim: `Deserialize`, `Deserializer`,
//! `Visitor` and the access traits, plus impls for the std types the
//! workspace restores.

use std::fmt::{self, Display};
use std::marker::PhantomData;

/// Errors produced while deserializing.
pub trait Error: Sized + std::error::Error {
    /// Build an error from a display-able message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A data structure deserializable from any serde data format.
pub trait Deserialize<'de>: Sized {
    /// Deserialize a value with the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A value deserializable without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// Stateful deserialization entry point (the stateless blanket impl on
/// `PhantomData` powers `next_element`/`next_key`/`variant`).
pub trait DeserializeSeed<'de>: Sized {
    /// Produced value type.
    type Value;
    /// Deserialize with state.
    fn deserialize<D: Deserializer<'de>>(self, deserializer: D) -> Result<Self::Value, D::Error>;
}

impl<'de, T: Deserialize<'de>> DeserializeSeed<'de> for PhantomData<T> {
    type Value = T;
    fn deserialize<D: Deserializer<'de>>(self, deserializer: D) -> Result<T, D::Error> {
        T::deserialize(deserializer)
    }
}

/// A serde data format's deserializer.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: Error;

    /// Self-describing formats dispatch on the input; others reject this.
    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize a `bool`.
    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize an `i8`.
    fn deserialize_i8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize an `i16`.
    fn deserialize_i16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize an `i32`.
    fn deserialize_i32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize an `i64`.
    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize a `u8`.
    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize a `u16`.
    fn deserialize_u16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize a `u32`.
    fn deserialize_u32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize a `u64`.
    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize an `f32`.
    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize an `f64`.
    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize a `char`.
    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize a string slice.
    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize an owned string.
    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize a byte slice.
    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize an owned byte buffer.
    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize an `Option`.
    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize `()`.
    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize a unit struct.
    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserialize a newtype struct.
    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserialize a variable-length sequence.
    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize a fixed-length tuple.
    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserialize a tuple struct.
    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserialize a map.
    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize a struct.
    fn deserialize_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserialize an enum.
    fn deserialize_enum<V: Visitor<'de>>(
        self,
        name: &'static str,
        variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserialize a struct-field / variant identifier.
    fn deserialize_identifier<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Skip over an ignored value.
    fn deserialize_ignored_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hint whether the format is human readable.
    fn is_human_readable(&self) -> bool {
        true
    }
}

macro_rules! visit_default {
    ($($method:ident: $t:ty,)*) => {
        $(
            /// Visit a value of this primitive type (default: type error).
            fn $method<E: Error>(self, v: $t) -> Result<Self::Value, E> {
                let _ = v;
                Err(E::custom(format_args!(
                    "unexpected {}", stringify!($method)
                )))
            }
        )*
    };
}

/// Dispatch target the deserializer drives with whatever it finds.
pub trait Visitor<'de>: Sized {
    /// Produced value type.
    type Value;

    /// What this visitor expects (used in error messages).
    fn expecting(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result;

    visit_default! {
        visit_bool: bool,
        visit_i8: i8,
        visit_i16: i16,
        visit_i32: i32,
        visit_i64: i64,
        visit_u8: u8,
        visit_u16: u16,
        visit_u32: u32,
        visit_u64: u64,
        visit_f32: f32,
        visit_f64: f64,
        visit_char: char,
    }

    /// Visit a borrowed-from-somewhere string.
    fn visit_str<E: Error>(self, v: &str) -> Result<Self::Value, E> {
        let _ = v;
        Err(E::custom("unexpected string"))
    }

    /// Visit a string borrowed from the input (default: forward to
    /// `visit_str`).
    fn visit_borrowed_str<E: Error>(self, v: &'de str) -> Result<Self::Value, E> {
        self.visit_str(v)
    }

    /// Visit an owned string (default: forward to `visit_str`).
    fn visit_string<E: Error>(self, v: String) -> Result<Self::Value, E> {
        self.visit_str(&v)
    }

    /// Visit a byte slice.
    fn visit_bytes<E: Error>(self, v: &[u8]) -> Result<Self::Value, E> {
        let _ = v;
        Err(E::custom("unexpected bytes"))
    }

    /// Visit bytes borrowed from the input (default: forward to
    /// `visit_bytes`).
    fn visit_borrowed_bytes<E: Error>(self, v: &'de [u8]) -> Result<Self::Value, E> {
        self.visit_bytes(v)
    }

    /// Visit an owned byte buffer (default: forward to `visit_bytes`).
    fn visit_byte_buf<E: Error>(self, v: Vec<u8>) -> Result<Self::Value, E> {
        self.visit_bytes(&v)
    }

    /// Visit an absent optional.
    fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
        Err(E::custom("unexpected none"))
    }

    /// Visit a present optional.
    fn visit_some<D: Deserializer<'de>>(self, deserializer: D) -> Result<Self::Value, D::Error> {
        let _ = deserializer;
        Err(D::Error::custom("unexpected some"))
    }

    /// Visit a unit value.
    fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
        Err(E::custom("unexpected unit"))
    }

    /// Visit a newtype struct's inner value.
    fn visit_newtype_struct<D: Deserializer<'de>>(
        self,
        deserializer: D,
    ) -> Result<Self::Value, D::Error> {
        let _ = deserializer;
        Err(D::Error::custom("unexpected newtype struct"))
    }

    /// Visit a sequence.
    fn visit_seq<A: SeqAccess<'de>>(self, seq: A) -> Result<Self::Value, A::Error> {
        let _ = seq;
        Err(A::Error::custom("unexpected sequence"))
    }

    /// Visit a map.
    fn visit_map<A: MapAccess<'de>>(self, map: A) -> Result<Self::Value, A::Error> {
        let _ = map;
        Err(A::Error::custom("unexpected map"))
    }

    /// Visit an enum.
    fn visit_enum<A: EnumAccess<'de>>(self, data: A) -> Result<Self::Value, A::Error> {
        let _ = data;
        Err(A::Error::custom("unexpected enum"))
    }
}

/// Element-by-element access to a sequence.
pub trait SeqAccess<'de> {
    /// Error type.
    type Error: Error;
    /// Deserialize the next element with a stateful seed.
    fn next_element_seed<T: DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, Self::Error>;
    /// Deserialize the next element.
    fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, Self::Error> {
        self.next_element_seed(PhantomData)
    }
    /// Remaining-element hint.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Entry-by-entry access to a map.
pub trait MapAccess<'de> {
    /// Error type.
    type Error: Error;
    /// Deserialize the next key with a stateful seed.
    fn next_key_seed<K: DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, Self::Error>;
    /// Deserialize the next value with a stateful seed.
    fn next_value_seed<V: DeserializeSeed<'de>>(
        &mut self,
        seed: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserialize the next key.
    fn next_key<K: Deserialize<'de>>(&mut self) -> Result<Option<K>, Self::Error> {
        self.next_key_seed(PhantomData)
    }
    /// Deserialize the next value.
    fn next_value<V: Deserialize<'de>>(&mut self) -> Result<V, Self::Error> {
        self.next_value_seed(PhantomData)
    }
    /// Remaining-entry hint.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Access to the variant tag of an enum.
pub trait EnumAccess<'de>: Sized {
    /// Error type.
    type Error: Error;
    /// Access to the variant's content.
    type Variant: VariantAccess<'de, Error = Self::Error>;
    /// Deserialize the variant tag with a stateful seed.
    fn variant_seed<V: DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self::Variant), Self::Error>;
    /// Deserialize the variant tag.
    fn variant<V: Deserialize<'de>>(self) -> Result<(V, Self::Variant), Self::Error> {
        self.variant_seed(PhantomData)
    }
}

/// Access to the content of one enum variant.
pub trait VariantAccess<'de>: Sized {
    /// Error type.
    type Error: Error;
    /// The variant is a unit variant.
    fn unit_variant(self) -> Result<(), Self::Error>;
    /// Deserialize a newtype variant's value with a stateful seed.
    fn newtype_variant_seed<T: DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, Self::Error>;
    /// Deserialize a newtype variant's value.
    fn newtype_variant<T: Deserialize<'de>>(self) -> Result<T, Self::Error> {
        self.newtype_variant_seed(PhantomData)
    }
    /// Deserialize a tuple variant's fields.
    fn tuple_variant<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserialize a struct variant's fields.
    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
}

/// Convert a plain value into a deserializer yielding it (used for enum
/// variant indices).
pub trait IntoDeserializer<'de, E: Error> {
    /// The produced deserializer.
    type Deserializer: Deserializer<'de, Error = E>;
    /// Perform the conversion.
    fn into_deserializer(self) -> Self::Deserializer;
}

/// Ready-made deserializers over plain Rust values.
pub mod value {
    use super::*;

    /// Deserializer yielding one `u32` (enum variant indices).
    pub struct U32Deserializer<E> {
        value: u32,
        marker: PhantomData<E>,
    }

    impl<E> U32Deserializer<E> {
        /// Wrap `value`.
        pub fn new(value: u32) -> Self {
            U32Deserializer {
                value,
                marker: PhantomData,
            }
        }
    }

    macro_rules! forward_to_visit_u32 {
        ($($method:ident)*) => {
            $(
                fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
                    visitor.visit_u32(self.value)
                }
            )*
        };
    }

    impl<'de, E: Error> Deserializer<'de> for U32Deserializer<E> {
        type Error = E;

        forward_to_visit_u32! {
            deserialize_any deserialize_bool
            deserialize_i8 deserialize_i16 deserialize_i32 deserialize_i64
            deserialize_u8 deserialize_u16 deserialize_u32 deserialize_u64
            deserialize_f32 deserialize_f64 deserialize_char
            deserialize_str deserialize_string deserialize_bytes
            deserialize_byte_buf deserialize_option deserialize_unit
            deserialize_seq deserialize_map deserialize_identifier
            deserialize_ignored_any
        }

        fn deserialize_unit_struct<V: Visitor<'de>>(
            self,
            _name: &'static str,
            visitor: V,
        ) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }

        fn deserialize_newtype_struct<V: Visitor<'de>>(
            self,
            _name: &'static str,
            visitor: V,
        ) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }

        fn deserialize_tuple<V: Visitor<'de>>(
            self,
            _len: usize,
            visitor: V,
        ) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }

        fn deserialize_tuple_struct<V: Visitor<'de>>(
            self,
            _name: &'static str,
            _len: usize,
            visitor: V,
        ) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }

        fn deserialize_struct<V: Visitor<'de>>(
            self,
            _name: &'static str,
            _fields: &'static [&'static str],
            visitor: V,
        ) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }

        fn deserialize_enum<V: Visitor<'de>>(
            self,
            _name: &'static str,
            _variants: &'static [&'static str],
            visitor: V,
        ) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }
    }

    impl<'de, E: Error> IntoDeserializer<'de, E> for u32 {
        type Deserializer = U32Deserializer<E>;
        fn into_deserializer(self) -> U32Deserializer<E> {
            U32Deserializer::new(self)
        }
    }
}

pub use value::U32Deserializer;

// ---------------------------------------------------------------------------
// std impls
// ---------------------------------------------------------------------------

macro_rules! primitive_deserialize {
    ($($t:ty => ($method:ident, $visit:ident),)*) => {
        $(
            impl<'de> Deserialize<'de> for $t {
                fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                    struct PrimVisitor;
                    impl<'de> Visitor<'de> for PrimVisitor {
                        type Value = $t;
                        fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                            f.write_str(stringify!($t))
                        }
                        fn $visit<E: Error>(self, v: $t) -> Result<$t, E> {
                            Ok(v)
                        }
                    }
                    deserializer.$method(PrimVisitor)
                }
            }
        )*
    };
}

primitive_deserialize! {
    bool => (deserialize_bool, visit_bool),
    i8 => (deserialize_i8, visit_i8),
    i16 => (deserialize_i16, visit_i16),
    i32 => (deserialize_i32, visit_i32),
    i64 => (deserialize_i64, visit_i64),
    u8 => (deserialize_u8, visit_u8),
    u16 => (deserialize_u16, visit_u16),
    u32 => (deserialize_u32, visit_u32),
    u64 => (deserialize_u64, visit_u64),
    f32 => (deserialize_f32, visit_f32),
    f64 => (deserialize_f64, visit_f64),
    char => (deserialize_char, visit_char),
}

impl<'de> Deserialize<'de> for usize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let v = u64::deserialize(deserializer)?;
        usize::try_from(v).map_err(|_| D::Error::custom("usize overflow"))
    }
}

impl<'de> Deserialize<'de> for isize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let v = i64::deserialize(deserializer)?;
        isize::try_from(v).map_err(|_| D::Error::custom("isize overflow"))
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct UnitVisitor;
        impl<'de> Visitor<'de> for UnitVisitor {
            type Value = ();
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("unit")
            }
            fn visit_unit<E: Error>(self) -> Result<(), E> {
                Ok(())
            }
        }
        deserializer.deserialize_unit(UnitVisitor)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct StringVisitor;
        impl<'de> Visitor<'de> for StringVisitor {
            type Value = String;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a string")
            }
            fn visit_str<E: Error>(self, v: &str) -> Result<String, E> {
                Ok(v.to_owned())
            }
            fn visit_string<E: Error>(self, v: String) -> Result<String, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_string(StringVisitor)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct OptionVisitor<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for OptionVisitor<T> {
            type Value = Option<T>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("an option")
            }
            fn visit_none<E: Error>(self) -> Result<Option<T>, E> {
                Ok(None)
            }
            fn visit_some<D2: Deserializer<'de>>(
                self,
                deserializer: D2,
            ) -> Result<Option<T>, D2::Error> {
                T::deserialize(deserializer).map(Some)
            }
        }
        deserializer.deserialize_option(OptionVisitor(PhantomData))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct VecVisitor<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for VecVisitor<T> {
            type Value = Vec<T>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a sequence")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Vec<T>, A::Error> {
                let mut out = Vec::with_capacity(seq.size_hint().unwrap_or(0).min(4096));
                while let Some(item) = seq.next_element()? {
                    out.push(item);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_seq(VecVisitor(PhantomData))
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct ArrayVisitor<T, const N: usize>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>, const N: usize> Visitor<'de> for ArrayVisitor<T, N> {
            type Value = [T; N];
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "an array of length {N}")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<[T; N], A::Error> {
                let mut out = Vec::with_capacity(N);
                for _ in 0..N {
                    match seq.next_element()? {
                        Some(item) => out.push(item),
                        None => return Err(A::Error::custom("array too short")),
                    }
                }
                out.try_into()
                    .map_err(|_| A::Error::custom("array length mismatch"))
            }
        }
        deserializer.deserialize_tuple(N, ArrayVisitor::<T, N>(PhantomData))
    }
}

macro_rules! tuple_deserialize {
    ($(($len:expr => $($name:ident)+),)*) => {
        $(
            impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
                fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                    struct TupleVisitor<$($name),+>(PhantomData<($($name,)+)>);
                    impl<'de, $($name: Deserialize<'de>),+> Visitor<'de>
                        for TupleVisitor<$($name),+>
                    {
                        type Value = ($($name,)+);
                        fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                            f.write_str("a tuple")
                        }
                        #[allow(non_snake_case)]
                        fn visit_seq<Acc: SeqAccess<'de>>(
                            self,
                            mut seq: Acc,
                        ) -> Result<Self::Value, Acc::Error> {
                            $(
                                let $name = seq
                                    .next_element()?
                                    .ok_or_else(|| Acc::Error::custom("tuple too short"))?;
                            )+
                            Ok(($($name,)+))
                        }
                    }
                    deserializer.deserialize_tuple($len, TupleVisitor(PhantomData))
                }
            }
        )*
    };
}

tuple_deserialize! {
    (1 => T0),
    (2 => T0 T1),
    (3 => T0 T1 T2),
    (4 => T0 T1 T2 T3),
}

impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct MapVisitor<K, V>(PhantomData<(K, V)>);
        impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Visitor<'de> for MapVisitor<K, V> {
            type Value = std::collections::BTreeMap<K, V>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a map")
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = std::collections::BTreeMap::new();
                while let Some(key) = map.next_key()? {
                    let value = map.next_value()?;
                    out.insert(key, value);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(MapVisitor(PhantomData))
    }
}

impl<'de, K, V, H> Deserialize<'de> for std::collections::HashMap<K, V, H>
where
    K: Deserialize<'de> + std::hash::Hash + Eq,
    V: Deserialize<'de>,
    H: std::hash::BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct MapVisitor<K, V, H>(PhantomData<(K, V, H)>);
        impl<'de, K, V, H> Visitor<'de> for MapVisitor<K, V, H>
        where
            K: Deserialize<'de> + std::hash::Hash + Eq,
            V: Deserialize<'de>,
            H: std::hash::BuildHasher + Default,
        {
            type Value = std::collections::HashMap<K, V, H>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a map")
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = std::collections::HashMap::with_capacity_and_hasher(0, H::default());
                while let Some(key) = map.next_key()? {
                    let value = map.next_value()?;
                    out.insert(key, value);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(MapVisitor(PhantomData))
    }
}
