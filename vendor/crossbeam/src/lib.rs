//! Offline shim exposing the subset of `crossbeam::channel` this workspace
//! uses, implemented over `std::sync::mpsc`.

/// MPSC channels with the `crossbeam-channel` API shape.
pub mod channel {
    use std::sync::mpsc;

    /// Sending half of an unbounded channel.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Send a message; errors when all receivers hung up.
        pub fn send(&self, t: T) -> Result<(), SendError<T>> {
            self.inner.send(t).map_err(|e| SendError(e.0))
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives; errors when all senders hung up.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }

    /// All receivers disconnected.
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// All senders disconnected.
    #[derive(Debug)]
    pub struct RecvError;

    /// Non-blocking receive outcome when no message is ready.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// All senders disconnected.
        Disconnected,
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(42u32).unwrap();
            assert_eq!(rx.recv().unwrap(), 42);
            assert_eq!(rx.try_recv().unwrap_err(), TryRecvError::Empty);
            drop(tx);
            assert_eq!(rx.try_recv().unwrap_err(), TryRecvError::Disconnected);
        }

        #[test]
        fn cross_thread() {
            let (tx, rx) = unbounded();
            let t = std::thread::spawn(move || {
                for i in 0..100u64 {
                    tx.send(i).unwrap();
                }
            });
            let mut sum = 0;
            for _ in 0..100 {
                sum += rx.recv().unwrap();
            }
            t.join().unwrap();
            assert_eq!(sum, 4950);
        }
    }
}
