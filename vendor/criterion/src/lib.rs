//! Offline shim of the `criterion` API surface the workspace's `benches/`
//! targets use. Statistical machinery is reduced to honest wall-clock
//! sampling: per benchmark it warms up, sizes an iteration batch to the
//! configured measurement budget, takes `sample_size` samples, drops the
//! top and bottom ~5% as outliers (at least one sample each side once
//! there are 5+ samples — scheduler blips otherwise dominate `max` and
//! flake CI comparisons) and prints `min / median / max` nanoseconds per
//! iteration over the trimmed set.
//!
//! Bench targets must set `harness = false` (as with real criterion).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    /// Default sample count for new groups.
    default_sample_size: usize,
    /// Default measurement budget for new groups.
    default_measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
            default_measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Begin a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let group = BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            measurement_time: self.default_measurement_time,
            _criterion: self,
        };
        eprintln!("group {}", group.name);
        group
    }

    /// Benchmark a function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) {
        let mut g = self.benchmark_group("default");
        g.bench_function(id, f);
        g.finish();
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Wall-clock budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            report: None,
        };
        f(&mut bencher);
        match bencher.report {
            Some(r) => eprintln!(
                "{}/{}: min {} ns, median {} ns, max {} ns ({} samples x {} iters)",
                self.name, id, r.min_ns, r.median_ns, r.max_ns, r.samples, r.iters_per_sample
            ),
            None => eprintln!(
                "{}/{}: no measurement (Bencher::iter never called)",
                self.name, id
            ),
        }
        self
    }

    /// Finish the group (printing is incremental; this is a no-op hook).
    pub fn finish(&mut self) {}
}

struct Report {
    min_ns: u128,
    median_ns: u128,
    max_ns: u128,
    samples: usize,
    iters_per_sample: u64,
}

/// Sorted-sample outlier trimming: drop `len/20` (≥1, once there are at
/// least 5 samples) entries from each end, always keeping the middle.
fn trimmed(sorted: &[u128]) -> &[u128] {
    if sorted.len() < 5 {
        return sorted;
    }
    let cut = (sorted.len() / 20).max(1).min((sorted.len() - 1) / 2);
    &sorted[cut..sorted.len() - cut]
}

/// Timing hook handed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    report: Option<Report>,
}

impl Bencher {
    /// Measure `f`, called repeatedly in sized batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup + batch sizing: run for ~10% of the budget (at least 3
        // calls) to estimate per-iteration cost, then aim each sample at
        // measurement_time / samples.
        let warmup_budget = self.measurement_time / 10;
        let warmup_start = Instant::now();
        let mut warmup_calls = 0u32;
        while warmup_calls < 3 || warmup_start.elapsed() < warmup_budget {
            black_box(f());
            warmup_calls += 1;
            if warmup_calls >= 10_000 && warmup_start.elapsed() >= warmup_budget {
                break;
            }
        }
        let one = (warmup_start.elapsed() / warmup_calls).max(Duration::from_nanos(1));
        let per_sample = self.measurement_time.as_nanos() / self.sample_size.max(1) as u128;
        let iters = (per_sample / one.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut samples_ns: Vec<u128> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            samples_ns.push(t0.elapsed().as_nanos() / iters as u128);
        }
        samples_ns.sort_unstable();
        let kept = trimmed(&samples_ns);
        self.report = Some(Report {
            min_ns: kept[0],
            median_ns: kept[kept.len() / 2],
            max_ns: *kept.last().unwrap(),
            samples: kept.len(),
            iters_per_sample: iters,
        });
    }
}

/// Declare a benchmark group function callable from `criterion_main!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the bench binary's `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trimming_drops_five_percent_each_side() {
        // Below 5 samples: untouched.
        assert_eq!(trimmed(&[1, 2, 3, 4]), &[1, 2, 3, 4]);
        // 5..39 samples: one from each end.
        assert_eq!(trimmed(&[1, 2, 3, 4, 1000]), &[2, 3, 4]);
        let ten: Vec<u128> = (0..10).collect();
        assert_eq!(trimmed(&ten), &ten[1..9]);
        // 40+ samples: len/20 from each end.
        let forty: Vec<u128> = (0..40).collect();
        assert_eq!(trimmed(&forty), &forty[2..38]);
        // An extreme outlier no longer leaks into max.
        let mut spiky: Vec<u128> = vec![100; 9];
        spiky.push(1_000_000);
        spiky.sort_unstable();
        assert_eq!(*trimmed(&spiky).last().unwrap(), 100);
    }

    #[test]
    fn bencher_reports_sane_numbers() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim_selftest");
        g.sample_size(3);
        g.measurement_time(Duration::from_millis(30));
        let mut observed = 0u64;
        g.bench_function("sum", |b| {
            b.iter(|| {
                observed += 1;
                (0..100u64).sum::<u64>()
            })
        });
        g.finish();
        assert!(observed > 0, "closure must actually run");
    }
}
