//! Offline `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the serde
//! shim, implemented directly over `proc_macro` token trees (no syn/quote).
//!
//! Scope: non-generic structs (named, tuple, unit) and enums whose variants
//! are unit, newtype, tuple or struct-like — the shapes this workspace
//! derives. `#[serde(...)]` attributes are not supported and generic type
//! parameters produce a compile error naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// input model + parser
// ---------------------------------------------------------------------------

enum Body {
    /// Named fields: (name, type) pairs.
    Named(Vec<(String, String)>),
    /// Tuple fields: types only.
    Tuple(Vec<String>),
    Unit,
}

struct Variant {
    name: String,
    body: Body,
}

enum Input {
    Struct {
        name: String,
        body: Body,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn tokens_to_string(trees: &[TokenTree]) -> String {
    let ts: TokenStream = trees.iter().cloned().collect();
    ts.to_string()
}

/// Skip outer attributes (`#[...]`) and visibility (`pub`, `pub(...)`)
/// starting at `i`; returns the next significant index.
fn skip_attrs_and_vis(trees: &[TokenTree], mut i: usize) -> usize {
    loop {
        match trees.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` then `[...]`
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = trees.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Split `trees` on commas that sit outside any `<...>` nesting (token-tree
/// groups already nest, but angle brackets are plain puncts).
fn split_top_level_commas(trees: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0usize;
    for tree in trees {
        if let TokenTree::Punct(p) = tree {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => {
                    out.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(tree.clone());
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

fn parse_named_fields(group: &[TokenTree]) -> Result<Vec<(String, String)>, String> {
    let mut fields = Vec::new();
    for chunk in split_top_level_commas(group) {
        let i = skip_attrs_and_vis(&chunk, 0);
        if i >= chunk.len() {
            continue;
        }
        let name = match &chunk[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected field name, found `{other}`")),
        };
        match chunk.get(i + 1) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => return Err(format!("expected `:` after field `{name}`")),
        }
        let ty = tokens_to_string(&chunk[i + 2..]);
        if ty.is_empty() {
            return Err(format!("missing type for field `{name}`"));
        }
        fields.push((name, ty));
    }
    Ok(fields)
}

fn parse_tuple_fields(group: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut types = Vec::new();
    for chunk in split_top_level_commas(group) {
        let i = skip_attrs_and_vis(&chunk, 0);
        if i >= chunk.len() {
            continue;
        }
        types.push(tokens_to_string(&chunk[i..]));
    }
    Ok(types)
}

fn parse_variants(group: &[TokenTree]) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    for chunk in split_top_level_commas(group) {
        let i = skip_attrs_and_vis(&chunk, 0);
        if i >= chunk.len() {
            continue;
        }
        let name = match &chunk[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected variant name, found `{other}`")),
        };
        let body = match chunk.get(i + 1) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Body::Named(parse_named_fields(&inner)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Body::Tuple(parse_tuple_fields(&inner)?)
            }
            None => Body::Unit,
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => Body::Unit,
            Some(other) => return Err(format!("unexpected token after variant: `{other}`")),
        };
        variants.push(Variant { name, body });
    }
    Ok(variants)
}

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let trees: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&trees, 0);
    let kind = match trees.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found `{other:?}`")),
    };
    i += 1;
    let name = match trees.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found `{other:?}`")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = trees.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "the offline serde_derive shim does not support generic type `{name}`"
            ));
        }
    }
    match kind.as_str() {
        "struct" => {
            let body = match trees.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    Body::Named(parse_named_fields(&inner)?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    Body::Tuple(parse_tuple_fields(&inner)?)
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Unit,
                other => return Err(format!("unsupported struct body: `{other:?}`")),
            };
            Ok(Input::Struct { name, body })
        }
        "enum" => {
            let variants = match trees.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    parse_variants(&inner)?
                }
                other => return Err(format!("expected enum body, found `{other:?}`")),
            };
            Ok(Input::Enum { name, variants })
        }
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

// ---------------------------------------------------------------------------
// Serialize codegen
// ---------------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    match input {
        Input::Struct { name, body } => {
            let body_code = match body {
                Body::Named(fields) => {
                    let mut code = String::from("use ::serde::ser::SerializeStruct as _;\n");
                    code.push_str(&format!(
                        "let mut __st = ::serde::ser::Serializer::serialize_struct(\
                         __serializer, \"{name}\", {}usize)?;\n",
                        fields.len()
                    ));
                    for (f, _) in fields {
                        code.push_str(&format!("__st.serialize_field(\"{f}\", &self.{f})?;\n"));
                    }
                    code.push_str("__st.end()\n");
                    code
                }
                Body::Tuple(types) if types.len() == 1 => format!(
                    "::serde::ser::Serializer::serialize_newtype_struct(\
                     __serializer, \"{name}\", &self.0)\n"
                ),
                Body::Tuple(types) => {
                    let mut code = String::from("use ::serde::ser::SerializeTupleStruct as _;\n");
                    code.push_str(&format!(
                        "let mut __st = ::serde::ser::Serializer::serialize_tuple_struct(\
                         __serializer, \"{name}\", {}usize)?;\n",
                        types.len()
                    ));
                    for idx in 0..types.len() {
                        code.push_str(&format!("__st.serialize_field(&self.{idx})?;\n"));
                    }
                    code.push_str("__st.end()\n");
                    code
                }
                Body::Unit => format!(
                    "::serde::ser::Serializer::serialize_unit_struct(__serializer, \"{name}\")\n"
                ),
            };
            format!(
                "impl ::serde::ser::Serialize for {name} {{\n\
                 fn serialize<__S: ::serde::ser::Serializer>(&self, __serializer: __S)\n\
                 -> ::core::result::Result<__S::Ok, __S::Error> {{\n{body_code}}}\n}}\n"
            )
        }
        Input::Enum { name, variants } => {
            let mut arms = String::new();
            for (idx, v) in variants.iter().enumerate() {
                let vname = &v.name;
                match &v.body {
                    Body::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::ser::Serializer::serialize_unit_variant(\
                         __serializer, \"{name}\", {idx}u32, \"{vname}\"),\n"
                    )),
                    Body::Tuple(types) if types.len() == 1 => arms.push_str(&format!(
                        "{name}::{vname}(__f0) => \
                         ::serde::ser::Serializer::serialize_newtype_variant(\
                         __serializer, \"{name}\", {idx}u32, \"{vname}\", __f0),\n"
                    )),
                    Body::Tuple(types) => {
                        let binders: Vec<String> =
                            (0..types.len()).map(|k| format!("__f{k}")).collect();
                        let mut arm = format!(
                            "{name}::{vname}({}) => {{\n\
                             use ::serde::ser::SerializeTupleVariant as _;\n\
                             let mut __tv = \
                             ::serde::ser::Serializer::serialize_tuple_variant(\
                             __serializer, \"{name}\", {idx}u32, \"{vname}\", {}usize)?;\n",
                            binders.join(", "),
                            types.len()
                        );
                        for b in &binders {
                            arm.push_str(&format!("__tv.serialize_field({b})?;\n"));
                        }
                        arm.push_str("__tv.end()\n}\n");
                        arms.push_str(&arm);
                    }
                    Body::Named(fields) => {
                        let binders: Vec<&str> = fields.iter().map(|(f, _)| f.as_str()).collect();
                        let mut arm = format!(
                            "{name}::{vname} {{ {} }} => {{\n\
                             use ::serde::ser::SerializeStructVariant as _;\n\
                             let mut __sv = \
                             ::serde::ser::Serializer::serialize_struct_variant(\
                             __serializer, \"{name}\", {idx}u32, \"{vname}\", {}usize)?;\n",
                            binders.join(", "),
                            fields.len()
                        );
                        for f in &binders {
                            arm.push_str(&format!("__sv.serialize_field(\"{f}\", {f})?;\n"));
                        }
                        arm.push_str("__sv.end()\n}\n");
                        arms.push_str(&arm);
                    }
                }
            }
            format!(
                "impl ::serde::ser::Serialize for {name} {{\n\
                 fn serialize<__S: ::serde::ser::Serializer>(&self, __serializer: __S)\n\
                 -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
                 match self {{\n{arms}}}\n}}\n}}\n"
            )
        }
    }
}

// ---------------------------------------------------------------------------
// Deserialize codegen
// ---------------------------------------------------------------------------

/// `visit_seq` body reading `(binder, type)` pairs in order, finishing with
/// `construct` (an expression over the binders).
fn gen_visit_seq(value_ty: &str, fields: &[(String, String)], construct: &str) -> String {
    let mut code = format!(
        "fn visit_seq<__A: ::serde::de::SeqAccess<'de>>(self, mut __seq: __A)\n\
         -> ::core::result::Result<{value_ty}, __A::Error> {{\n"
    );
    for (binder, ty) in fields {
        code.push_str(&format!(
            "let {binder}: {ty} = match ::serde::de::SeqAccess::next_element(&mut __seq)? {{\n\
             ::core::option::Option::Some(__v) => __v,\n\
             ::core::option::Option::None => return ::core::result::Result::Err(\
             ::serde::de::Error::custom(\"missing field `{binder}`\")),\n}};\n"
        ));
    }
    code.push_str(&format!("::core::result::Result::Ok({construct})\n}}\n"));
    code
}

fn gen_deserialize(input: &Input) -> String {
    match input {
        Input::Struct { name, body } => {
            let (visitor_impl, driver) = match body {
                Body::Named(fields) => {
                    let construct = format!(
                        "{name} {{ {} }}",
                        fields
                            .iter()
                            .map(|(f, _)| f.as_str())
                            .collect::<Vec<_>>()
                            .join(", ")
                    );
                    let field_list = fields
                        .iter()
                        .map(|(f, _)| format!("\"{f}\""))
                        .collect::<Vec<_>>()
                        .join(", ");
                    (
                        gen_visit_seq(name, fields, &construct),
                        format!(
                            "::serde::de::Deserializer::deserialize_struct(\
                             __deserializer, \"{name}\", &[{field_list}], __Visitor)"
                        ),
                    )
                }
                Body::Tuple(types) if types.len() == 1 => {
                    let ty = &types[0];
                    (
                        format!(
                            "fn visit_newtype_struct<__D2: ::serde::de::Deserializer<'de>>(\
                             self, __d: __D2) -> ::core::result::Result<{name}, __D2::Error> {{\n\
                             <{ty} as ::serde::de::Deserialize>::deserialize(__d).map({name})\n}}\n"
                        ),
                        format!(
                            "::serde::de::Deserializer::deserialize_newtype_struct(\
                             __deserializer, \"{name}\", __Visitor)"
                        ),
                    )
                }
                Body::Tuple(types) => {
                    let fields: Vec<(String, String)> = types
                        .iter()
                        .enumerate()
                        .map(|(k, t)| (format!("__f{k}"), t.clone()))
                        .collect();
                    let construct = format!(
                        "{name}({})",
                        fields
                            .iter()
                            .map(|(b, _)| b.as_str())
                            .collect::<Vec<_>>()
                            .join(", ")
                    );
                    (
                        gen_visit_seq(name, &fields, &construct),
                        format!(
                            "::serde::de::Deserializer::deserialize_tuple_struct(\
                             __deserializer, \"{name}\", {}usize, __Visitor)",
                            types.len()
                        ),
                    )
                }
                Body::Unit => (
                    format!(
                        "fn visit_unit<__E: ::serde::de::Error>(self)\n\
                         -> ::core::result::Result<{name}, __E> {{\n\
                         ::core::result::Result::Ok({name})\n}}\n"
                    ),
                    format!(
                        "::serde::de::Deserializer::deserialize_unit_struct(\
                         __deserializer, \"{name}\", __Visitor)"
                    ),
                ),
            };
            format!(
                "impl<'de> ::serde::de::Deserialize<'de> for {name} {{\n\
                 fn deserialize<__D: ::serde::de::Deserializer<'de>>(__deserializer: __D)\n\
                 -> ::core::result::Result<Self, __D::Error> {{\n\
                 struct __Visitor;\n\
                 impl<'de> ::serde::de::Visitor<'de> for __Visitor {{\n\
                 type Value = {name};\n\
                 fn expecting(&self, __f: &mut ::core::fmt::Formatter<'_>)\n\
                 -> ::core::fmt::Result {{ __f.write_str(\"struct {name}\") }}\n\
                 {visitor_impl}\
                 }}\n\
                 {driver}\n\
                 }}\n}}\n"
            )
        }
        Input::Enum { name, variants } => {
            let variant_list = variants
                .iter()
                .map(|v| format!("\"{}\"", v.name))
                .collect::<Vec<_>>()
                .join(", ");
            let mut arms = String::new();
            for (idx, v) in variants.iter().enumerate() {
                let vname = &v.name;
                match &v.body {
                    Body::Unit => arms.push_str(&format!(
                        "{idx}u32 => {{\n\
                         ::serde::de::VariantAccess::unit_variant(__variant)?;\n\
                         ::core::result::Result::Ok({name}::{vname})\n}}\n"
                    )),
                    Body::Tuple(types) if types.len() == 1 => {
                        let ty = &types[0];
                        arms.push_str(&format!(
                            "{idx}u32 => \
                             ::serde::de::VariantAccess::newtype_variant::<{ty}>(__variant)\
                             .map({name}::{vname}),\n"
                        ));
                    }
                    Body::Tuple(types) => {
                        let fields: Vec<(String, String)> = types
                            .iter()
                            .enumerate()
                            .map(|(k, t)| (format!("__f{k}"), t.clone()))
                            .collect();
                        let construct = format!(
                            "{name}::{vname}({})",
                            fields
                                .iter()
                                .map(|(b, _)| b.as_str())
                                .collect::<Vec<_>>()
                                .join(", ")
                        );
                        let seq = gen_visit_seq(name, &fields, &construct);
                        arms.push_str(&format!(
                            "{idx}u32 => {{\n\
                             struct __V{idx};\n\
                             impl<'de> ::serde::de::Visitor<'de> for __V{idx} {{\n\
                             type Value = {name};\n\
                             fn expecting(&self, __f: &mut ::core::fmt::Formatter<'_>)\n\
                             -> ::core::fmt::Result {{\
                             __f.write_str(\"variant {vname}\") }}\n\
                             {seq}\
                             }}\n\
                             ::serde::de::VariantAccess::tuple_variant(\
                             __variant, {}usize, __V{idx})\n}}\n",
                            types.len()
                        ));
                    }
                    Body::Named(fields) => {
                        let construct = format!(
                            "{name}::{vname} {{ {} }}",
                            fields
                                .iter()
                                .map(|(f, _)| f.as_str())
                                .collect::<Vec<_>>()
                                .join(", ")
                        );
                        let field_list = fields
                            .iter()
                            .map(|(f, _)| format!("\"{f}\""))
                            .collect::<Vec<_>>()
                            .join(", ");
                        let seq = gen_visit_seq(name, fields, &construct);
                        arms.push_str(&format!(
                            "{idx}u32 => {{\n\
                             struct __V{idx};\n\
                             impl<'de> ::serde::de::Visitor<'de> for __V{idx} {{\n\
                             type Value = {name};\n\
                             fn expecting(&self, __f: &mut ::core::fmt::Formatter<'_>)\n\
                             -> ::core::fmt::Result {{\
                             __f.write_str(\"variant {vname}\") }}\n\
                             {seq}\
                             }}\n\
                             ::serde::de::VariantAccess::struct_variant(\
                             __variant, &[{field_list}], __V{idx})\n}}\n"
                        ));
                    }
                }
            }
            format!(
                "impl<'de> ::serde::de::Deserialize<'de> for {name} {{\n\
                 fn deserialize<__D: ::serde::de::Deserializer<'de>>(__deserializer: __D)\n\
                 -> ::core::result::Result<Self, __D::Error> {{\n\
                 struct __Visitor;\n\
                 impl<'de> ::serde::de::Visitor<'de> for __Visitor {{\n\
                 type Value = {name};\n\
                 fn expecting(&self, __f: &mut ::core::fmt::Formatter<'_>)\n\
                 -> ::core::fmt::Result {{ __f.write_str(\"enum {name}\") }}\n\
                 fn visit_enum<__A: ::serde::de::EnumAccess<'de>>(self, __data: __A)\n\
                 -> ::core::result::Result<Self::Value, __A::Error> {{\n\
                 let (__idx, __variant): (u32, _) = \
                 ::serde::de::EnumAccess::variant(__data)?;\n\
                 match __idx {{\n{arms}\
                 __other => ::core::result::Result::Err(::serde::de::Error::custom(\
                 ::core::format_args!(\"invalid {name} variant index {{__other}}\"))),\n\
                 }}\n}}\n}}\n\
                 ::serde::de::Deserializer::deserialize_enum(\
                 __deserializer, \"{name}\", &[{variant_list}], __Visitor)\n\
                 }}\n}}\n"
            )
        }
    }
}

// ---------------------------------------------------------------------------
// entry points
// ---------------------------------------------------------------------------

/// Derive `serde::Serialize` for a non-generic struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_input(input) {
        Ok(parsed) => gen_serialize(&parsed)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde_derive codegen error: {e}"))),
        Err(msg) => compile_error(&msg),
    }
}

/// Derive `serde::Deserialize` for a non-generic struct or enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_input(input) {
        Ok(parsed) => gen_deserialize(&parsed)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde_derive codegen error: {e}"))),
        Err(msg) => compile_error(&msg),
    }
}
