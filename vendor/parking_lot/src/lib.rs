//! Offline shim exposing the subset of the `parking_lot` API this workspace
//! uses (`Mutex`, `RwLock`, `Condvar`), implemented over `std::sync`.
//!
//! Semantics match parking_lot where it matters here: `lock()`/`read()`/
//! `write()` return guards directly (poisoning is swallowed — a panicked
//! holder does not poison the lock), `Mutex::new` is `const`, and
//! `Condvar::wait` takes `&mut MutexGuard`.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};

/// A mutual-exclusion primitive (parking_lot-style API over `std::sync::Mutex`).
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex holding `t`.
    pub const fn new(t: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(t),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Panics of previous
    /// holders do not poison the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard for [`Mutex`]. The `Option` indirection lets [`Condvar::wait`]
/// temporarily take the underlying std guard without unsafe code.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// A reader-writer lock (parking_lot-style API over `std::sync::RwLock`).
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new lock holding `t`.
    pub const fn new(t: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(t),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock")
            .field("data", &*self.read())
            .finish()
    }
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A condition variable working with [`Mutex`]/[`MutexGuard`].
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Atomically release the guard's lock and block until notified; the
    /// lock is re-acquired before returning (parking_lot signature: the
    /// guard is updated in place).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    /// Atomically release the guard's lock and block until notified or
    /// `timeout` elapses; the lock is re-acquired before returning.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    /// [`Condvar::wait_for`] against an absolute deadline. A deadline in
    /// the past reports an immediate timeout without releasing the lock.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: std::time::Instant,
    ) -> WaitTimeoutResult {
        let now = std::time::Instant::now();
        if deadline <= now {
            return WaitTimeoutResult(true);
        }
        self.wait_for(guard, deadline - now)
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

/// Whether a timed [`Condvar`] wait returned because the timeout elapsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic_and_const() {
        static M: Mutex<i32> = Mutex::new(5);
        *M.lock() += 1;
        assert_eq!(*M.lock(), 6);
    }

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() = 7; // must not panic
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_timed_waits() {
        use std::time::{Duration, Instant};
        let pair = (Mutex::new(()), Condvar::new());
        let mut g = pair.0.lock();
        let t0 = Instant::now();
        assert!(pair
            .1
            .wait_for(&mut g, Duration::from_millis(20))
            .timed_out());
        assert!(t0.elapsed() >= Duration::from_millis(15));
        assert!(pair
            .1
            .wait_until(&mut g, Instant::now() - Duration::from_millis(1))
            .timed_out());
    }

    #[test]
    fn condvar_wait_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let waiter = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        waiter.join().unwrap();
    }
}
