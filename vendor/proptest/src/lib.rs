//! Offline shim of the `proptest` surface this workspace uses: the
//! `proptest!` macro over range / `any::<T>()` / collection / tuple / string
//! strategies, with `prop_assert!`-style assertions.
//!
//! Each property runs [`NUM_CASES`] cases from a deterministic per-test RNG
//! (seeded from the test name), so failures reproduce without a persistence
//! file. Regex string strategies degrade to unconstrained ASCII strings —
//! fine for the `".*"` patterns used here.

/// Cases generated per property.
pub const NUM_CASES: usize = 64;

/// Deterministic RNG (SplitMix64) used to generate cases.
pub mod test_runner {
    /// Deterministic pseudo-random generator for property cases.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a test name (stable across runs).
        pub fn from_name(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h | 1 }
        }

        /// Next raw 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform float in `[0, 1)`.
        pub fn next_unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform integer in `[0, bound)` (`bound > 0`).
        pub fn next_below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Generates values of one type from random bits.
    pub trait Strategy {
        /// Generated value type.
        type Value;
        /// Generate one case.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f` (the real crate's combinator;
        /// the shim generates eagerly, so no shrinking nuance applies).
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Adapter returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {
            $(
                impl Strategy for Range<$t> {
                    type Value = $t;
                    fn generate(&self, rng: &mut TestRng) -> $t {
                        assert!(self.start < self.end, "empty range strategy");
                        let span = (self.end as i128 - self.start as i128) as u64;
                        (self.start as i128 + rng.next_below(span) as i128) as $t
                    }
                }
            )*
        };
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.next_unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            self.start + (rng.next_unit_f64() as f32) * (self.end - self.start)
        }
    }

    /// String "regex" strategy: the shim ignores the pattern and produces
    /// unconstrained ASCII strings (sufficient for `".*"`).
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let len = rng.next_below(16) as usize;
            (0..len)
                .map(|_| (b' ' + rng.next_below(95) as u8) as char)
                .collect()
        }
    }

    /// Full-range strategy for a primitive (see [`crate::prelude::any`]).
    pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Generate an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {
            $(
                impl Arbitrary for $t {
                    fn arbitrary(rng: &mut TestRng) -> $t {
                        rng.next_u64() as $t
                    }
                }
            )*
        };
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    // Raw bit patterns: exercises negative zero, subnormals, infinities and
    // NaN payloads — exactly what a byte-roundtrip codec should survive.
    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            f64::from_bits(rng.next_u64())
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            f32::from_bits(rng.next_u64() as u32)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident $idx:tt),+),)*) => {
            $(
                impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                    type Value = ($($name::Value,)+);
                    fn generate(&self, rng: &mut TestRng) -> Self::Value {
                        ($(self.$idx.generate(rng),)+)
                    }
                }
            )*
        };
    }

    tuple_strategy! {
        (A 0, B 1),
        (A 0, B 1, C 2),
        (A 0, B 1, C 2, D 3),
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeMap;
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a size range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A vector of values from `element`, with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap<K, V>` with a size range.
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    /// A map of `key`/`value` pairs, with a target entry count from `size`
    /// (duplicate generated keys may make the map smaller).
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: Range<usize>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy { key, value, size }
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.generate(rng);
            let mut out = BTreeMap::new();
            for _ in 0..target.saturating_mul(2) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.key.generate(rng), self.value.generate(rng));
            }
            out
        }
    }
}

/// The common imports property tests reach for.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Any, Arbitrary, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// The canonical full-range strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

/// Run each contained `#[test] fn name(binding in strategy, ...) { body }`
/// over [`NUM_CASES`] generated cases.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __ppar_rng =
                    $crate::test_runner::TestRng::from_name(stringify!($name));
                for __ppar_case in 0..$crate::NUM_CASES {
                    let _ = __ppar_case;
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut __ppar_rng);
                    )*
                    $body
                }
            }
        )*
    };
}

/// Assert a condition inside a property (shim: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property (shim: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property (shim: plain `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(
            a in 3usize..17,
            b in -5i64..5,
            x in 0.25f64..0.75,
        ) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-5..5).contains(&b));
            prop_assert!((0.25..0.75).contains(&x));
        }

        #[test]
        fn collections_respect_sizes(
            v in collection::vec(any::<u32>(), 2..6),
            m in collection::btree_map(".*", any::<i64>(), 0..4),
        ) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(m.len() < 4);
        }

        #[test]
        fn tuples_generate(pair in (any::<u32>(), collection::vec(any::<f32>(), 0..3))) {
            let (_n, v) = pair;
            prop_assert!(v.len() < 3);
        }

        #[test]
        fn prop_map_applies_function(masked in any::<u64>().prop_map(|v| v & 0xFF)) {
            prop_assert!(masked <= 0xFF);
        }
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::test_runner::TestRng::from_name("x");
        let mut b = crate::test_runner::TestRng::from_name("x");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
